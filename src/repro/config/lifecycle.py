"""Staged policy rollout: shadow canary, atomic promotion, rollback.

The lifecycle turns "edit the policy in place" into a guarded
deployment pipeline over :class:`~repro.config.configset.ConfigSet`
versions:

1. **stage** — validate the candidate (monotone version id, checksum
   integrity), compute the deployment delta with
   :func:`~repro.config.differ.diff_specs`, and compile the candidate's
   own :class:`~repro.kernel.PolicyKernel` *off to the side* (a shadow
   engine built from the candidate spec; the live decision plane is
   untouched).  The engine's decision tap starts mirroring live check
   traffic into a :class:`ShadowComparator`.
2. **shadow-compare** — every live decision served by the *kernel*
   path is re-decided by the candidate kernel via
   :meth:`~repro.kernel.PolicyKernel.evaluate_stateless` (the live
   session's active role set is the input; runtime state stays with
   the live engine).  Decisions either side classifies dynamic
   (context gates, privacy, interpreted-path fallbacks) are tallied
   *indeterminate*, never divergent — the canary only ever compares
   statically comparable answers.
3. **promote** — once the :class:`RolloutBudget` is satisfied (enough
   comparable samples, divergence and error counts inside budget), the
   delta is applied through the engine's own administration methods
   (so session revocation, SoD enforcement and audit all behave
   exactly as a hand-applied change would), spec-only descriptors are
   delta-patched, affected rules are regenerated incrementally
   (:func:`~repro.synthesis.regenerate.regenerate_diff` — untouched
   rule objects keep their identity and their quarantine/counter
   state), and the decision plane swaps in **one** epoch bump with an
   eagerly recompiled kernel.  The WAL carries a single
   ``config.promote`` record with the version id and the full rendered
   post-swap policy; intermediate admin-method epoch records are
   suppressed (the promotion is one logical swap).
4. **hold** — after promotion the tap keeps mirroring, now against the
   *previous* kernel, under the same budget: a promotion that starts
   changing live answers beyond budget (an operator forced past a
   failing canary) or a breaker trip reported via :meth:`note_failure`
   triggers **automatic rollback** — the promote delta is reverted
   (drift outside the delta survives), WAL-logged as
   ``config.rollback``, flight-recorded and audited.

The tap only *marks* tallies; every state transition (promote, refuse,
rollback, settle) happens in :meth:`PolicyLifecycle.poll`, which the
serving plane calls from its control path — a decision can never
re-enter the engine to mutate policy mid-check.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.clock import VirtualClock
from repro.config.configset import ConfigSet, policy_checksum
from repro.config.differ import diff_specs
from repro.config.loader import ConfigError
from repro.errors import ReproError
from repro.kernel import KERNEL_FALLBACK, KERNEL_GRANT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine import ActiveRBACEngine
    from repro.kernel import PolicyKernel
    from repro.policy.spec import PolicySpec

__all__ = ["PolicyLifecycle", "RolloutBudget", "ShadowComparator",
           "load_version"]

#: spec-only descriptor lists (no model-level op moves them); promotion
#: and rollback patch these by item delta so policy drift outside the
#: deployed change is preserved on both legs
_DESCRIPTOR_ATTRS = (
    "durations", "enabling_windows", "disabling_sod",
    "prerequisites", "post_conditions", "transactions",
    "context_constraints", "purposes", "object_policies",
    "threshold_policies", "federation_maps",
)


@dataclass(frozen=True)
class RolloutBudget:
    """What a rollout must prove (canary) and sustain (hold).

    ``max_divergence`` is a *fraction* of comparable samples; the
    default ``0.0`` means a rollout must be decision-identical on
    observed traffic — intentional semantic changes need an explicitly
    raised budget (or a forced promote, which the hold then polices).
    """

    #: comparable samples required before the canary can pass
    min_samples: int = 50
    #: tolerated diverging fraction of comparable samples
    max_divergence: float = 0.0
    #: tolerated shadow-evaluation errors
    max_errors: int = 0
    #: tapped decisions the post-promotion hold observes before the
    #: promotion settles
    hold_checks: int = 100

    def describe(self) -> dict[str, Any]:
        return {
            "min_samples": self.min_samples,
            "max_divergence": self.max_divergence,
            "max_errors": self.max_errors,
            "hold_checks": self.hold_checks,
        }


class ShadowComparator:
    """Tally live decisions against a shadow kernel.

    ``observe`` is called from the engine's decision tap (data plane):
    it only updates counters and never raises into the live check —
    any shadow-side error is itself a tallied outcome.  Verdicts are
    read on the control plane (:meth:`verdict` /
    :meth:`PolicyLifecycle.poll`).
    """

    #: divergence samples kept verbatim for the operator
    DETAIL_CAP = 16

    def __init__(self, engine: "ActiveRBACEngine", kernel: "PolicyKernel",
                 budget: RolloutBudget, label: str) -> None:
        self.engine = engine
        self.kernel = kernel
        self.budget = budget
        self.label = label
        self.observed = 0       # every tapped decision
        self.samples = 0        # statically comparable on both sides
        self.matches = 0
        self.divergences = 0
        self.indeterminate = 0  # dynamic on either side: not comparable
        self.errors = 0
        self.details: list[dict[str, Any]] = []

    def observe(self, path: str, session_id: str, user: str | None,
                operation: str, obj: str, granted: bool,
                scope: str | None = None) -> None:
        self.observed += 1
        if scope is not None:
            # scoped checks depend on assignment bounds the stateless
            # shadow evaluation cannot see — not comparable
            self.indeterminate += 1
            return
        if path != "kernel":
            # the live answer came from the interpreted pipeline —
            # something about it was dynamic, so the static shadow
            # verdict is not comparable
            self.indeterminate += 1
            return
        try:
            session = self.engine.model.sessions.get(session_id)
            if session is None or (user is not None
                                   and user in self.engine.locked_users):
                # runtime deny causes the shadow kernel cannot see
                self.indeterminate += 1
                return
            verdict, _reason = self.kernel.evaluate_stateless(
                tuple(session.active_roles), operation, obj)
        except Exception:  # noqa: BLE001 - shadow faults are tallied
            self.errors += 1
            return
        if verdict == KERNEL_FALLBACK:
            self.indeterminate += 1
            return
        self.samples += 1
        shadow = verdict == KERNEL_GRANT
        if shadow == granted:
            self.matches += 1
            return
        self.divergences += 1
        if len(self.details) < self.DETAIL_CAP:
            self.details.append({
                "session": session_id, "user": user,
                "operation": operation, "object": obj,
                "live": granted, "shadow": shadow,
            })

    @property
    def divergence_rate(self) -> float:
        return self.divergences / self.samples if self.samples else 0.0

    def over_budget(self) -> str | None:
        """Why the tallies already bust the budget, or None."""
        if self.errors > self.budget.max_errors:
            return (f"{self.errors} shadow error(s) exceed budget "
                    f"{self.budget.max_errors}")
        if self.samples and self.divergence_rate > self.budget.max_divergence:
            return (f"divergence {self.divergences}/{self.samples} "
                    f"exceeds budget {self.budget.max_divergence}")
        return None

    def verdict(self) -> str:
        """Canary state: ``refuse`` | ``insufficient`` | ``promote``."""
        if self.over_budget() is not None:
            return "refuse"
        if self.samples < self.budget.min_samples:
            return "insufficient"
        return "promote"

    def stats(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "observed": self.observed,
            "samples": self.samples,
            "matches": self.matches,
            "divergences": self.divergences,
            "divergence_rate": self.divergence_rate,
            "indeterminate": self.indeterminate,
            "errors": self.errors,
            "details": list(self.details),
        }


def load_version(state_dir: str, version: int) -> ConfigSet:
    """Load a persisted config artifact (``configs/v{N}.rbac``).

    Every staged version is persisted before its fate is decided, so
    refused and rolled-back versions remain loadable for audit and
    for :func:`~repro.config.replay.replay_wal`.
    """
    from repro.policy.dsl import parse_policy
    path = os.path.join(state_dir, "configs", f"v{int(version)}.rbac")
    if not os.path.exists(path):
        raise ConfigError(f"no persisted config version {version} "
                          f"under {state_dir!r} (expected {path})")
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return ConfigSet.from_spec(parse_policy(source), int(version),
                               origin=path)


class PolicyLifecycle:
    """Versioned rollout controller for one live engine.

    ``state_dir`` (default: the attached Durability directory) receives
    one ``configs/v{N}.rbac`` artifact per staged version plus a
    ``manifest.json`` recording each version's checksum and fate.
    ``auto_promote`` lets :meth:`poll` promote on its own once the
    canary budget is satisfied (the SIGHUP/admin ``reload`` path);
    turn it off to require an explicit :meth:`promote`.
    """

    def __init__(self, engine: "ActiveRBACEngine", *,
                 state_dir: str | None = None,
                 budget: RolloutBudget | None = None,
                 auto_promote: bool = True) -> None:
        self.engine = engine
        self.budget = budget if budget is not None else RolloutBudget()
        if state_dir is None:
            wal = getattr(engine, "wal", None)
            state_dir = wal.directory if wal is not None else None
        self.state_dir = state_dir
        self.auto_promote = auto_promote
        #: the config version currently serving (None until adopt())
        self.active: ConfigSet | None = None
        #: staged candidate under canary, if any
        self.candidate: ConfigSet | None = None
        #: shadow comparator for the staged candidate
        self.comparator: ShadowComparator | None = None
        #: post-promotion hold comparator (previous kernel as shadow)
        self.hold: ShadowComparator | None = None
        #: (pre-promote spec clone, version) — the rollback target
        self._previous: tuple["PolicySpec", int | None] | None = None
        #: the promoted config the hold is policing
        self._promoted: ConfigSet | None = None
        #: cheap data-plane flag: a stage or hold is mirroring traffic
        self.armed = False
        #: transition log (stage/refuse/promote/rollback/settle rows)
        self.history: list[dict[str, Any]] = []
        self._stage_diff: dict[str, Any] | None = None
        self._pending_failure: str | None = None
        #: wall-clock nanoseconds the last swap spent between kernel
        #: invalidation and the fresh kernel being ready (the
        #: "swap pause" benchmarks/smoke_policy.py budgets)
        self.last_swap_ns: int | None = None
        # keep the shadow engine alive while its kernel is in use
        self._shadow_engine: Any = None

    # ------------------------------------------------------------------
    # data plane: the decision tap (marks tallies, never transitions)
    # ------------------------------------------------------------------

    def _tap(self, path: str, session_id: str, user: str | None,
             operation: str, obj: str, granted: bool,
             scope: str | None = None) -> None:
        if self.hold is not None:
            self.hold.observe(path, session_id, user, operation, obj,
                              granted, scope)
        elif self.comparator is not None:
            self.comparator.observe(path, session_id, user, operation,
                                    obj, granted, scope)

    def note_failure(self, kind: str) -> None:
        """Record an out-of-band failure signal (breaker trip, guard
        rejection storm).  Applied at the next :meth:`poll`: during a
        hold it forces rollback, during a canary it refuses."""
        if self.armed:
            self._pending_failure = kind

    # ------------------------------------------------------------------
    # control plane: transitions
    # ------------------------------------------------------------------

    def adopt(self, version: int = 1, origin: str = "adopted") -> ConfigSet:
        """Bless the engine's current policy as the active config.

        The baseline every later stage/promote/rollback is versioned
        against; WAL-logged as a ``config.promote`` so recovery knows
        which version was live.
        """
        engine = self.engine
        floor = engine.config_version or 0
        if version <= floor:
            raise ConfigError(
                f"config version must advance: {version} <= live {floor}")
        config = ConfigSet.from_spec(engine.policy, version, origin=origin)
        self.active = config
        engine.config_version = config.version
        self._persist(config, "active")
        wal = engine.wal
        if wal is not None:
            wal.log("config.promote", version=config.version,
                    epoch=engine.policy_epoch, policy=config.source,
                    checksum=config.checksum, reason="adopt")
        engine.audit.record("config.adopt", version=config.version,
                            checksum=config.checksum)
        self._note("adopt", version=config.version)
        return config

    def stage(self, config: ConfigSet) -> dict[str, Any]:
        """Stage a candidate: validate, diff, compile, start the canary."""
        engine = self.engine
        if self.candidate is not None:
            raise ConfigError(
                f"candidate v{self.candidate.version} is already staged; "
                "promote, refuse or let the canary decide first")
        if self.hold is not None:
            raise ConfigError(
                f"promotion of v{self._promoted.version} is still in its "
                "hold window; wait for it to settle or roll back")
        floor = engine.config_version or 0
        if config.version <= floor:
            raise ConfigError(
                f"config version must advance: staged {config.version} "
                f"<= live {floor}")
        if policy_checksum(config.source) != config.checksum:
            raise ConfigError(
                f"config v{config.version} checksum mismatch: the "
                "artifact was modified after canonicalisation")
        base = self.active.spec if self.active is not None else engine.policy
        diff = diff_specs(base, config.spec)
        # candidate decision plane, compiled off to the side — the live
        # engine and its kernel are untouched until promotion
        from repro.engine import ActiveRBACEngine
        shadow = ActiveRBACEngine.from_policy(
            config.spec, clock=VirtualClock(start=engine.clock.now))
        kernel = shadow.kernel()
        self._shadow_engine = shadow
        self.candidate = config
        self._stage_diff = diff.summary()
        self.comparator = ShadowComparator(
            engine, kernel, self.budget, label=f"canary v{config.version}")
        engine.config_candidate = config.version
        engine.decision_tap = self._tap
        self.armed = True
        self._pending_failure = None
        self._persist(config, "staged")
        wal = engine.wal
        if wal is not None:
            wal.log("config.stage", version=config.version,
                    checksum=config.checksum, diff=self._stage_diff)
        engine.audit.record("config.stage", version=config.version,
                            checksum=config.checksum,
                            changed_roles=self._stage_diff["changed_roles"])
        self._note("stage", version=config.version, diff=self._stage_diff)
        return {"staged": config.version, "diff": self._stage_diff,
                "budget": self.budget.describe()}

    def poll(self) -> dict[str, Any] | None:
        """Apply whatever transition the tallies justify (control plane).

        The serving plane calls this between requests; tests and the
        CLI call it directly.  Returns the transition report, or None
        when nothing changed.
        """
        failure = self._pending_failure
        if self.hold is not None:
            if failure is not None:
                self._pending_failure = None
                return self.rollback(f"failure:{failure}")
            burst = self.hold.over_budget()
            if burst is not None:
                return self.rollback(f"hold {burst}")
            if self.hold.observed >= self.budget.hold_checks:
                return self._settle()
            return None
        if self.candidate is not None:
            if failure is not None:
                self._pending_failure = None
                return self.refuse(f"failure:{failure}")
            verdict = self.comparator.verdict()
            if verdict == "refuse":
                return self.refuse(
                    f"canary {self.comparator.over_budget()}")
            if verdict == "promote" and self.auto_promote:
                return self.promote()
        return None

    def promote(self, force: bool = False) -> dict[str, Any]:
        """Swap the staged candidate in (the atomic hot-swap).

        Without ``force`` the canary budget must be satisfied; a
        failing canary refuses instead.  A forced promotion past a
        failing (or unsampled) canary still enters the hold window —
        divergence there triggers automatic rollback.
        """
        if self.candidate is None:
            raise ConfigError("no candidate staged")
        engine = self.engine
        config = self.candidate
        canary = self.comparator.stats()
        if not force:
            verdict = self.comparator.verdict()
            if verdict == "refuse":
                return self.refuse(
                    f"canary {self.comparator.over_budget()}")
            if verdict == "insufficient":
                raise ConfigError(
                    f"canary has {self.comparator.samples}/"
                    f"{self.budget.min_samples} comparable samples; "
                    "keep shadowing or promote(force=True)")
        # the previous decision plane, compiled before any state moves:
        # the hold shadows it to detect live-answer drift post-swap
        prev_kernel = engine._kernel
        if prev_kernel is None or not prev_kernel.fresh(engine):
            prev_kernel = engine.kernel()
        self._previous = (engine.policy.clone(), engine.config_version)
        apply_report = self._apply_delta(engine.policy, config.spec)
        swap = self._swap("config.promote", version=config.version,
                          checksum=config.checksum, forced=force,
                          canary_samples=canary["samples"],
                          canary_divergences=canary["divergences"])
        engine.config_version = config.version
        engine.config_candidate = None
        self.active = config
        self._promoted = config
        self.candidate = None
        self.comparator = None
        self._shadow_engine = None
        # hold: keep mirroring, now against the previous kernel
        self.hold = ShadowComparator(engine, prev_kernel, self.budget,
                                     label=f"hold v{config.version}")
        self._persist(config, "active")
        engine.audit.record("config.promote", version=config.version,
                            forced=force, samples=canary["samples"],
                            divergences=canary["divergences"],
                            skipped_ops=len(apply_report["skipped"]))
        report = {"promoted": config.version, "forced": force,
                  "canary": canary, "apply": apply_report, "swap": swap,
                  "hold_checks": self.budget.hold_checks}
        self._note("promote", **{k: report[k] for k in
                                 ("promoted", "forced", "swap")})
        return report

    def refuse(self, reason: str) -> dict[str, Any]:
        """Refuse the staged candidate (never served a live decision)."""
        if self.candidate is None:
            raise ConfigError("no candidate staged")
        engine = self.engine
        config = self.candidate
        canary = self.comparator.stats() if self.comparator else None
        wal = engine.wal
        if wal is not None:
            wal.log("config.refuse", version=config.version,
                    checksum=config.checksum, reason=reason)
        engine.audit.record("config.refuse", version=config.version,
                            reason=reason)
        engine.config_candidate = None
        self.candidate = None
        self.comparator = None
        self._stage_diff = None
        self._shadow_engine = None
        self._disarm()
        self._manifest_update(config.version, "refused")
        self._note("refuse", version=config.version, reason=reason)
        return {"refused": config.version, "reason": reason,
                "canary": canary}

    def rollback(self, reason: str) -> dict[str, Any]:
        """Revert the last promotion (automatic or operator-driven).

        Only the promote *delta* is reverted: administrative changes
        made after the promotion that are outside the delta survive,
        so a rollback converges with an engine that never promoted but
        received the same concurrent administration.
        """
        if self._previous is None or self._promoted is None:
            raise ConfigError("no promotion to roll back")
        engine = self.engine
        promoted = self._promoted
        prev_spec, prev_version = self._previous
        hold_stats = self.hold.stats() if self.hold is not None else None
        apply_report = self._apply_delta(promoted.spec, prev_spec)
        swap = self._swap("config.rollback",
                          version=int(prev_version or 0),
                          from_version=promoted.version, reason=reason)
        engine.config_version = prev_version
        engine.config_candidate = None
        engine.config_last_rollback = {
            "from_version": promoted.version,
            "to_version": prev_version,
            "reason": reason,
            "at": engine.clock.now,
        }
        self.active = (ConfigSet.from_spec(prev_spec, prev_version,
                                           origin="rollback")
                       if prev_version else None)
        self.hold = None
        self._previous = None
        self._promoted = None
        self._disarm()
        # forensics: the decisions that led here are in the ring
        engine.dump_flight(f"config.rollback:{reason}")
        engine.audit.record("config.rollback", version=promoted.version,
                            to_version=prev_version, reason=reason)
        self._manifest_update(promoted.version, "rolled-back")
        report = {"rolled_back": promoted.version,
                  "restored": prev_version, "reason": reason,
                  "hold": hold_stats, "apply": apply_report,
                  "swap": swap}
        self._note("rollback", version=promoted.version, reason=reason)
        return report

    def _settle(self) -> dict[str, Any]:
        """The hold window passed clean: the promotion is final."""
        stats = self.hold.stats() if self.hold is not None else None
        version = self._promoted.version if self._promoted else None
        self.hold = None
        self._previous = None
        self._promoted = None
        self._disarm()
        self.engine.audit.record("config.settle", version=version)
        self._note("settle", version=version)
        return {"settled": version, "hold": stats}

    def _disarm(self) -> None:
        """Stop mirroring once nothing is staged or held."""
        if self.candidate is None and self.hold is None:
            self.armed = False
            self._pending_failure = None
            if self.engine.decision_tap == self._tap:
                self.engine.decision_tap = None

    # ------------------------------------------------------------------
    # the swap machinery
    # ------------------------------------------------------------------

    def _apply_delta(self, old_spec: "PolicySpec",
                     new_spec: "PolicySpec") -> dict[str, Any]:
        """Apply the old→new delta to the live engine.

        Model-level ops go through the engine's own administration
        methods (session revocation, SoD enforcement and audit behave
        exactly like a hand-applied change); an op the drifted live
        state no longer accepts is skipped and reported, never fatal.
        Per-op ``policy.epoch`` WAL records are suppressed — the caller
        logs the one swap record that carries the final policy.
        """
        engine = self.engine
        diff = diff_specs(old_spec, new_spec)
        skipped: list[dict[str, Any]] = []

        def quiet_epoch() -> None:
            engine.policy_epoch += 1

        engine._note_policy_change = quiet_epoch  # type: ignore[method-assign]
        try:
            for op in diff.model_ops:
                try:
                    self._dispatch(op)
                except (ReproError, KeyError, ValueError) as exc:
                    skipped.append({"op": op[0],
                                    "args": [repr(a) for a in op[1:]],
                                    "error": str(exc)})
            self._apply_descriptors(old_spec, new_spec)
            if diff.privacy_changed:
                self._rebuild_privacy()
            if diff.thresholds_changed:
                self._reseed_thresholds()
            from repro.synthesis.regenerate import regenerate_diff
            report = regenerate_diff(engine, diff)
        finally:
            del engine.__dict__["_note_policy_change"]
        return {"diff": diff.summary(), "skipped": skipped,
                "regenerated": sorted(report.affected_roles)}

    def _dispatch(self, op: tuple[Any, ...]) -> None:
        engine = self.engine
        name, args = op[0], op[1:]
        if name == "deassign_user":
            engine.deassign_user(*args)
        elif name == "revoke":
            engine.revoke_permission(*args)
        elif name == "delete_inheritance":
            engine.delete_inheritance(*args)
        elif name == "delete_ssd":
            engine.model.delete_ssd_set(args[0])
            engine.policy.ssd.pop(args[0], None)
        elif name == "delete_dsd":
            engine.model.delete_dsd_set(args[0])
            engine.policy.dsd.pop(args[0], None)
        elif name == "delete_role":
            engine.delete_role(args[0])
        elif name == "delete_user":
            engine.delete_user(args[0])
        elif name == "add_user":
            engine.add_user(*args)
        elif name == "set_user_max_roles":
            engine.policy.add_user(args[0], args[1])
            engine.model.users[args[0]].max_active_roles = args[1]
        elif name == "add_role":
            engine.add_role(*args)
        elif name == "set_role_cardinality":
            engine.policy.add_role(args[0], args[1])
            engine.model.roles[args[0]].max_active_users = args[1]
        elif name == "add_inheritance":
            engine.add_inheritance(*args)
        elif name == "create_ssd":
            engine.create_ssd_set(args[0], set(args[1]), args[2])
        elif name == "create_dsd":
            engine.create_dsd_set(args[0], set(args[1]), args[2])
        elif name == "add_permission":
            engine.add_permission(*args)
        elif name == "grant":
            engine.grant_permission(*args)
        elif name == "assign_user":
            engine.assign_user(*args)
        elif name == "add_scope":
            engine.add_scope(*args)
        elif name == "remove_scope":
            engine.remove_scope(args[0])
        elif name == "grant_scoped":
            engine.grant_permission(args[0], args[1], args[2],
                                    scope=args[3])
        elif name == "revoke_scoped":
            engine.revoke_permission(args[0], args[1], args[2],
                                     scope=args[3])
        elif name == "assign_scoped":
            engine.assign_user(args[0], args[1], scope=args[2])
        elif name == "deassign_scoped":
            engine.deassign_scope(*args)
        else:  # differ and lifecycle grew apart — fail loudly
            raise ConfigError(f"unknown model op {name!r}")

    def _apply_descriptors(self, old_spec: "PolicySpec",
                           new_spec: "PolicySpec") -> None:
        """Patch spec-only descriptor lists by item delta.

        All descriptors are frozen dataclasses (or plain tuples), so
        equality-based removal is reliable; items the live policy
        already dropped are simply absent.
        """
        policy = self.engine.policy
        for attr in _DESCRIPTOR_ATTRS:
            old_items = getattr(old_spec, attr)
            new_items = getattr(new_spec, attr)
            live = getattr(policy, attr)
            for item in old_items:
                if item not in new_items:
                    try:
                        live.remove(item)
                    except ValueError:
                        pass
            for item in new_items:
                if item not in old_items and item not in live:
                    live.append(item)

    def _rebuild_privacy(self) -> None:
        from repro.extensions.privacy import PrivacyRegistry
        engine = self.engine
        engine.privacy = PrivacyRegistry()
        for purpose, parent in engine.policy.purposes:
            engine.privacy.purposes.add(purpose, parent)
        for object_policy in engine.policy.object_policies:
            engine.privacy.add_policy(object_policy)

    def _reseed_thresholds(self) -> None:
        monitor = self.engine.monitor
        monitor._policies.clear()
        monitor._windows.clear()
        for threshold in self.engine.policy.threshold_policies:
            monitor.add_policy(threshold)

    def _swap(self, op: str, **data: Any) -> dict[str, Any]:
        """The atomic decision-plane swap: one epoch bump, one WAL
        record carrying the final rendered policy, eager recompile.

        Readers keep the old kernel until the fresh one is published
        (RCU discipline: the engine swaps ``_kernel`` in one
        assignment); ``last_swap_ns`` is the recompile pause the
        benchmark budgets."""
        from repro.policy.dsl import render_policy
        engine = self.engine
        engine.policy_epoch += 1
        wal = engine.wal
        if wal is not None:
            wal.log(op, epoch=engine.policy_epoch,
                    policy=render_policy(engine.policy), **data)
        start = time.perf_counter_ns()
        engine.invalidate_kernel()
        rebuilt = False
        if engine.kernel_enabled:
            engine.kernel()
            rebuilt = True
        self.last_swap_ns = time.perf_counter_ns() - start
        return {"epoch": engine.policy_epoch,
                "kernel_rebuilt": rebuilt,
                "pause_ns": self.last_swap_ns}

    # ------------------------------------------------------------------
    # persistence + status
    # ------------------------------------------------------------------

    def _configs_dir(self) -> str | None:
        if self.state_dir is None:
            return None
        path = os.path.join(self.state_dir, "configs")
        os.makedirs(path, exist_ok=True)
        return path

    def _persist(self, config: ConfigSet, status: str) -> str | None:
        directory = self._configs_dir()
        if directory is None:
            return None
        path = os.path.join(directory, f"v{config.version}.rbac")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(config.source)
        self._manifest_update(config.version, status,
                              row=config.describe())
        return path

    def _manifest_update(self, version: int, status: str,
                         row: dict[str, Any] | None = None) -> None:
        directory = self._configs_dir()
        if directory is None:
            return
        path = os.path.join(directory, "manifest.json")
        manifest: dict[str, Any] = {"versions": {}}
        if os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                manifest = {"versions": {}}
        versions = manifest.setdefault("versions", {})
        entry = versions.setdefault(str(version), {})
        if row is not None:
            entry.update(row)
        entry["status"] = status
        entry["at"] = self.engine.clock.now
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)

    def _note(self, event: str, **data: Any) -> None:
        self.history.append({"event": event, "t": self.engine.clock.now,
                             **data})

    def status(self) -> dict[str, Any]:
        if self.hold is not None:
            phase = "hold"
        elif self.candidate is not None:
            phase = "canary"
        else:
            phase = "idle"
        return {
            "phase": phase,
            "active_version": self.engine.config_version,
            "candidate_version": self.engine.config_candidate,
            "budget": self.budget.describe(),
            "auto_promote": self.auto_promote,
            "canary": (self.comparator.stats()
                       if self.comparator is not None else None),
            "hold": self.hold.stats() if self.hold is not None else None,
            "last_rollback": self.engine.config_last_rollback,
            "last_swap_ns": self.last_swap_ns,
            "state_dir": self.state_dir,
            "history": self.history[-10:],
        }
