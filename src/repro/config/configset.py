"""ConfigSet: one immutable, versioned policy deployment unit.

A config set pins four things together: a **monotone version id** (the
lifecycle refuses to stage a version that does not advance), the parsed
:class:`~repro.policy.spec.PolicySpec`, the **canonical source** (the
DSL re-rendering of the spec, so two documents that mean the same
policy canonicalise identically regardless of input format), and a
sha256 **checksum** of that canonical source.  The checksum — not the
input file — is what the WAL records and what replay verifies, so an
edited-in-place config file cannot silently masquerade as the version
that was actually deployed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.policy.spec import PolicySpec


def policy_checksum(source: str) -> str:
    """sha256 hex digest of a canonical policy rendering."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ConfigSet:
    """One versioned policy configuration (immutable)."""

    version: int
    spec: PolicySpec
    #: canonical DSL rendering of ``spec`` — the deployment artifact
    source: str
    checksum: str
    #: where the document came from (file path, "inline", "adopted")
    origin: str = "inline"
    name: str = field(default="policy")

    @classmethod
    def from_spec(cls, spec: PolicySpec, version: int,
                  origin: str = "inline") -> "ConfigSet":
        """Canonicalise a spec into a config set.

        The spec is cloned so later engine-side mutation of the live
        policy can never retroactively change what this version means.
        """
        from repro.policy.dsl import render_policy
        if version < 1:
            raise ValueError(f"config version must be >= 1, got {version}")
        frozen = spec.clone()
        source = render_policy(frozen)
        return cls(version=int(version), spec=frozen, source=source,
                   checksum=policy_checksum(source), origin=origin,
                   name=frozen.name)

    def describe(self) -> dict[str, object]:
        """Flat manifest row for status surfaces and the CLI."""
        return {
            "version": self.version,
            "name": self.name,
            "checksum": self.checksum,
            "origin": self.origin,
            "roles": len(self.spec.roles),
            "users": len(self.spec.users),
            "grants": len(self.spec.grants),
        }
