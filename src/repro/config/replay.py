"""Deterministic WAL replay under a pinned config version.

The engine's opt-in decision journal (``engine.decision_journal``)
appends one ``decision.check`` record per served decision, so a WAL
carries both the *mutation stream* (sessions, activations, context,
locks, clock) and the *decision stream* interleaved in commit order.
Replay rebuilds a fresh engine from a chosen
:class:`~repro.config.configset.ConfigSet` and walks the log once:

* mutation records are **folded as facts** through the model's
  record-level methods (no events fire, no rules run — the same
  never-re-fire discipline as :func:`repro.wal.recover`), so the
  session state at each decision point is exactly what the live run
  had committed;
* policy-swap records (``policy.epoch``, ``config.promote``,
  ``config.rollback``) are *skipped* — the whole stream is re-decided
  under the pinned config, which is the point: "what would this
  traffic have looked like under version N?";
* each ``decision.check`` is re-decided read-only via
  :meth:`~repro.engine.ActiveRBACEngine.explain` and appended to the
  result's decision stream, hashed into a running sha256.

Determinism contract: the same WAL replayed under the same config
yields a byte-identical digest (CI asserts this across seeds); two
different versions yield a structured per-decision diff via
:func:`diff_streams`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Any

from repro.clock import VirtualClock
from repro.config.configset import ConfigSet
from repro.config.loader import ConfigError

__all__ = ["ReplayResult", "diff_streams", "replay_wal"]

#: records replay folds as facts (everything else is either a policy
#: swap — skipped under a pinned config — or a decision to re-run)
_FOLD_OPS = frozenset({
    "session.create", "session.delete",
    "activation.add", "activation.drop",
    "role.status", "user.lock", "user.unlock",
    "context.set", "clock.advance",
})

_SWAP_OPS = frozenset({"policy.epoch", "config.promote",
                       "config.rollback"})


@dataclass
class ReplayResult:
    """One replay run: the re-decided stream plus its fingerprint."""

    config_version: int
    checksum: str
    wal_path: str
    records: int = 0
    #: one row per ``decision.check``: lsn, subject triple, the live
    #: verdict the journal recorded, and the replayed verdict
    decisions: list[dict[str, Any]] = field(default_factory=list)
    #: sha256 over the replayed decision stream
    digest: str = ""
    #: decisions whose replayed verdict differs from the journaled
    #: live verdict (meaningful when replaying the deployed version)
    mismatches: list[dict[str, Any]] = field(default_factory=list)
    #: records replay could not fold (unknown entity under this
    #: config, fold error) — surfaced, never silently dropped
    gaps: list[dict[str, Any]] = field(default_factory=list)
    #: policy-swap records skipped because the config is pinned
    pinned_swaps: int = 0
    torn: int = 0

    def summary(self) -> dict[str, Any]:
        return {
            "config_version": self.config_version,
            "checksum": self.checksum,
            "wal": self.wal_path,
            "records": self.records,
            "decisions": len(self.decisions),
            "digest": self.digest,
            "mismatches": len(self.mismatches),
            "gaps": len(self.gaps),
            "pinned_swaps": self.pinned_swaps,
            "torn": self.torn,
        }


def _resolve_wal(path: str) -> str:
    from repro.wal import WAL_FILE
    if os.path.isdir(path):
        return os.path.join(path, WAL_FILE)
    return path


def _fold(engine: Any, op: str, data: dict[str, Any]) -> str | None:
    """Fold one mutation record as a fact; returns a gap reason or
    None.  Record-level model methods are event-silent, so folding can
    never fire a rule or cascade."""
    model = engine.model
    if op == "session.create":
        if data["user"] not in model.users:
            return f"unknown user {data['user']!r} under this config"
        if data["id"] not in model.sessions:
            model.create_session_record(data["id"], data["user"])
    elif op == "session.delete":
        if data["id"] in model.sessions:
            model.delete_session_record(data["id"])
    elif op == "activation.add":
        if data["session"] not in model.sessions:
            return f"activation for unknown session {data['session']!r}"
        if data["role"] not in model.roles:
            return f"unknown role {data['role']!r} under this config"
        model.add_session_role_record(data["session"], data["role"])
    elif op == "activation.drop":
        if (data["session"] in model.sessions
                and data["role"] in model.roles):
            model.drop_session_role_record(data["session"], data["role"])
    elif op == "role.status":
        if data["role"] not in model.roles:
            return f"status for unknown role {data['role']!r}"
        model.set_role_enabled(data["role"], bool(data["enabled"]))
    elif op == "user.lock":
        engine.locked_users.add(data["user"])
    elif op == "user.unlock":
        engine.locked_users.discard(data["user"])
    elif op == "context.set":
        # ContextProvider.set stores silently (no event), so folding
        # context history is safe during replay
        engine.context.set(data["key"], data["value"])
    elif op == "clock.advance":
        engine.clock.advance_to(float(data["to"]))
    return None


def replay_wal(path: str, config: ConfigSet) -> ReplayResult:
    """Re-run a WAL's decision stream under ``config``.

    ``path`` is a Durability directory or a WAL file.  The WAL is read
    with torn-tail repair (read-only: the file is never rewritten).
    """
    from repro.engine import ActiveRBACEngine
    from repro.wal import read_wal

    wal_path = _resolve_wal(path)
    if not os.path.exists(wal_path):
        raise ConfigError(f"no WAL at {wal_path!r}")
    records, report = read_wal(wal_path, repair=False)

    engine = ActiveRBACEngine.from_policy(
        config.spec, clock=VirtualClock(start=0.0))
    result = ReplayResult(config_version=config.version,
                          checksum=config.checksum, wal_path=wal_path,
                          records=len(records), torn=report["torn"])
    digest = hashlib.sha256()

    for record in records:
        op = record["op"]
        data = record.get("data", {})
        lsn = record["lsn"]
        # virtual time moves with the log so temporal reads (context
        # windows folded via role.status, explain-time clock) line up
        engine.clock.advance_to(float(record.get("t", 0.0)))
        if op in _SWAP_OPS:
            result.pinned_swaps += 1
            continue
        if op in _FOLD_OPS:
            try:
                gap = _fold(engine, op, data)
            except Exception as exc:  # noqa: BLE001 - gap, not crash
                gap = f"fold error: {exc}"
            if gap is not None:
                result.gaps.append({"lsn": lsn, "op": op, "reason": gap})
            continue
        if op != "decision.check":
            continue  # audit-only records (config.stage/refuse, ...)
        session = data.get("session")
        operation = data.get("operation")
        obj = data.get("object")
        purpose = data.get("purpose")
        live = data.get("granted")
        try:
            replayed: bool | None = bool(
                engine.explain(session, operation, obj,
                               purpose=purpose).allowed)
        except Exception as exc:  # noqa: BLE001 - deterministic gap
            replayed = None
            result.gaps.append({"lsn": lsn, "op": op,
                                "reason": f"explain error: {exc}"})
        row = {"lsn": lsn, "session": session, "operation": operation,
               "object": obj, "purpose": purpose, "live": live,
               "replayed": replayed}
        result.decisions.append(row)
        token = "err" if replayed is None else str(int(replayed))
        digest.update(f"{lsn}|{session}|{operation}|{obj}|{purpose}|"
                      f"{token}\n".encode("utf-8"))
        if replayed is not None and live is not None \
                and bool(live) != replayed:
            result.mismatches.append(row)

    result.digest = digest.hexdigest()
    return result


def diff_streams(a: ReplayResult, b: ReplayResult) -> dict[str, Any]:
    """Structured diff between two replays of the *same* WAL.

    Aligns decisions by LSN (same log ⇒ same decision sequence) and
    reports every point where the two config versions answer
    differently.
    """
    b_by_lsn = {row["lsn"]: row for row in b.decisions}
    differing = []
    compared = 0
    for row in a.decisions:
        other = b_by_lsn.get(row["lsn"])
        if other is None:
            continue
        compared += 1
        if row["replayed"] != other["replayed"]:
            differing.append({
                "lsn": row["lsn"],
                "session": row["session"],
                "operation": row["operation"],
                "object": row["object"],
                f"v{a.config_version}": row["replayed"],
                f"v{b.config_version}": other["replayed"],
            })
    return {
        "identical": not differing and a.digest == b.digest,
        "compared": compared,
        "differing": differing,
        "digests": {f"v{a.config_version}": a.digest,
                    f"v{b.config_version}": b.digest},
    }
