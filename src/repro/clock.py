"""Virtual clock and timer scheduling for temporal events.

Sentinel+ detects temporal events — absolute calendar points, relative
``PLUS(E, delta)`` offsets, and ``PERIODIC`` ticks — against the system
clock.  For a deterministic, testable reproduction we replace the wall
clock with a :class:`VirtualClock`: a monotonically advancing simulated
timeline measured in seconds since a simulated epoch.

A :class:`TimerService` sits on top of the clock and fires callbacks when
the clock is advanced past their deadlines, in deadline order.  All
temporal event operators in :mod:`repro.events` schedule through it, so a
test can write::

    clock = VirtualClock(start=0.0)
    timers = TimerService(clock)
    ...
    clock.advance(7200)          # two simulated hours elapse
    timers.run_due()             # PLUS(E1, 2h) fires here (paper Rule 2)

The clock also exposes a broken-down calendar view (:meth:`VirtualClock.now_fields`)
so calendar expressions like ``10:00:00/*/*/*`` (paper Rule 6, footnote 10)
can be matched against the current simulated instant.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from datetime import datetime, timedelta, timezone
from typing import Callable

#: Simulated epoch: calendar expressions are interpreted relative to this
#: instant.  Midnight, Jan 1 2005 UTC — the year the paper was published —
#: so a fresh clock starts at 00:00:00/01/01/2005.
SIMULATED_EPOCH = datetime(2005, 1, 1, tzinfo=timezone.utc)

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400


@dataclass(frozen=True, order=True)
class Timestamp:
    """An instant on the simulated timeline (seconds since the epoch).

    Ordered, hashable and cheap; every event occurrence carries one.  The
    SnoopIB interval-based semantics need a total order on occurrence
    times, which ``seconds`` (a float) plus a tie-breaking ``sequence``
    number provides: two events raised at the same simulated instant are
    still ordered by raise order.
    """

    seconds: float
    sequence: int = 0

    def __add__(self, delta: float) -> "Timestamp":
        return Timestamp(self.seconds + delta, self.sequence)

    def to_datetime(self) -> datetime:
        """Broken-down calendar view of this instant."""
        return SIMULATED_EPOCH + timedelta(seconds=self.seconds)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_datetime().strftime("%H:%M:%S/%m/%d/%Y")


class VirtualClock:
    """A deterministic simulated clock.

    Time only moves via :meth:`advance` (relative) or :meth:`advance_to`
    (absolute), and never moves backwards.  :meth:`stamp` mints a unique,
    totally ordered :class:`Timestamp` for event occurrences.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the simulated epoch")
        self._now = float(start)
        self._counter = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch."""
        return self._now

    def stamp(self) -> Timestamp:
        """Mint a unique timestamp for the current instant."""
        stamped = Timestamp(self._now, self._counter)
        self._counter += 1
        return stamped

    @property
    def tiebreak(self) -> int:
        """The next timestamp sequence number (persistence peeks this)."""
        return self._counter

    def resume_tiebreak(self, value: int) -> None:
        """Fast-forward the tie-break counter past a restored state's
        high-water mark, so fresh stamps order *after* every restored
        in-flight occurrence at the same instant."""
        self._counter = max(self._counter, int(value))

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, seconds: float) -> float:
        """Move the clock forward to an absolute instant (must be >= now)."""
        if seconds < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, to={seconds}"
            )
        self._now = float(seconds)
        return self._now

    def now_datetime(self) -> datetime:
        """The current instant as a calendar datetime."""
        return SIMULATED_EPOCH + timedelta(seconds=self._now)

    def now_fields(self) -> tuple[int, int, int, int, int, int]:
        """``(hour, minute, second, month, day, year)`` of the current instant.

        Field order mirrors the paper's ``24h:mi:ss/mm/dd/yyyy`` calendar
        expression format so matching is positional.
        """
        dt = self.now_datetime()
        return (dt.hour, dt.minute, dt.second, dt.month, dt.day, dt.year)


class Deadline:
    """A per-operation time budget over the virtual and/or wall clock.

    An access check (or any pipeline stage) carries one of these so a
    pathological rule condition cannot stall enforcement indefinitely:
    the rule manager probes :meth:`check` before each firing, and the
    engine probes once more after dispatch, denying the whole check
    (:class:`~repro.errors.DeadlineExceeded`) when either budget is
    exhausted.

    * the **virtual** budget is measured on a :class:`VirtualClock`, so
      simulated stalls (a fault-injected "hang" that advances the
      clock) are detected deterministically;
    * the **wall** budget is measured on a monotonic real-time source
      (injectable for tests), catching genuine CPU stalls.

    Either budget may be ``None`` (unbounded on that axis).
    """

    __slots__ = ("clock", "expires_at", "wall_expires_at", "_wall")

    def __init__(self, clock: VirtualClock | None = None,
                 virtual_budget: float | None = None,
                 wall_budget: float | None = None,
                 wall: Callable[[], float] = time.monotonic) -> None:
        if virtual_budget is not None and clock is None:
            raise ValueError("a virtual budget needs a VirtualClock")
        self.clock = clock
        self._wall = wall
        self.expires_at = (None if virtual_budget is None
                           else clock.now + virtual_budget)
        self.wall_expires_at = (None if wall_budget is None
                                else wall() + wall_budget)

    def exceeded(self) -> str | None:
        """The budget axis that tripped (``virtual``/``wall``), or None."""
        if (self.expires_at is not None
                and self.clock.now > self.expires_at):
            return "virtual"
        if (self.wall_expires_at is not None
                and self._wall() > self.wall_expires_at):
            return "wall"
        return None

    def remaining(self) -> float | None:
        """Tightest remaining budget in seconds (None when unbounded)."""
        candidates = []
        if self.expires_at is not None:
            candidates.append(self.expires_at - self.clock.now)
        if self.wall_expires_at is not None:
            candidates.append(self.wall_expires_at - self._wall())
        return min(candidates) if candidates else None

    def check(self, what: str = "") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired."""
        reason = self.exceeded()
        if reason is not None:
            from repro.errors import DeadlineExceeded
            suffix = f" before {what!r}" if what else ""
            raise DeadlineExceeded(
                f"deadline exceeded ({reason} budget){suffix}",
                reason=reason)


@dataclass(order=True)
class _Timer:
    """A scheduled callback, ordered by (deadline, insertion sequence)."""

    deadline: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    timer_id: int = field(default=0, compare=False)


class TimerService:
    """Deadline-ordered timer queue driven by a :class:`VirtualClock`.

    Timers fire when :meth:`run_due` (or :meth:`advance`) observes the
    clock at/after their deadline.  Callbacks may schedule further timers
    (e.g. a PERIODIC event re-arming its next tick); those are honoured
    within the same :meth:`run_due` call if already due.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._heap: list[_Timer] = []
        self._sequence = itertools.count()
        self._by_id: dict[int, _Timer] = {}
        #: optional observability hook invoked once per fired callback
        #: (the engine wires ``ObsHub.timer_fired`` here)
        self.on_fire: Callable[[], None] | None = None

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    def __len__(self) -> int:
        return sum(1 for t in self._heap if not t.cancelled)

    def schedule_at(self, deadline: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute simulated time ``deadline``.

        Deadlines in the past fire on the next :meth:`run_due`.  Returns a
        timer id usable with :meth:`cancel`.
        """
        timer = _Timer(deadline, next(self._sequence), callback)
        timer.timer_id = timer.sequence
        heapq.heappush(self._heap, timer)
        self._by_id[timer.timer_id] = timer
        return timer.timer_id

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` ``delay`` seconds from now (delay >= 0)."""
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        return self.schedule_at(self._clock.now + delay, callback)

    def cancel(self, timer_id: int) -> bool:
        """Cancel a pending timer. Returns False if already fired/cancelled."""
        timer = self._by_id.pop(timer_id, None)
        if timer is None or timer.cancelled:
            return False
        timer.cancelled = True
        return True

    def next_deadline(self) -> float | None:
        """Deadline of the earliest pending timer, or None when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].deadline if self._heap else None

    def run_due(self) -> int:
        """Fire every timer whose deadline is <= the clock's now.

        Fires in deadline order (ties broken by scheduling order) and
        returns the number of callbacks invoked.
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.deadline > self._clock.now:
                break
            heapq.heappop(self._heap)
            self._by_id.pop(head.timer_id, None)
            if self.on_fire is not None:
                self.on_fire()
            head.callback()
            fired += 1
        return fired

    def advance(self, seconds: float) -> int:
        """Advance the clock by ``seconds``, firing timers as they come due.

        Unlike ``clock.advance(s); timers.run_due()``, this steps the clock
        *through* each intermediate deadline so that a timer callback that
        reads ``clock.now`` observes its own deadline — exactly how PLUS and
        PERIODIC events must see their detection instant (paper §3).
        Returns the number of callbacks fired.
        """
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        target = self._clock.now + seconds
        fired = 0
        while True:
            deadline = self.next_deadline()
            if deadline is None or deadline > target:
                break
            if deadline > self._clock.now:
                self._clock.advance_to(deadline)
            fired += self.run_due()
        self._clock.advance_to(target)
        fired += self.run_due()
        return fired
