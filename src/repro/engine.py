"""The active enforcement engine: RBAC operations become events,
generated OWTE rules enforce.

This is the paper's architecture end-to-end (Sections 4 and 5):

1. every externally visible operation (``create_session``,
   ``add_active_role``, ``check_access``, assignment, role
   enable/disable) **raises a primitive event** into the Sentinel+-style
   detector;
2. the OWTE rules generated from the enterprise policy are subscribed to
   those events; their W clauses evaluate the constraints, their THEN
   branches commit the state change (and cascade further events, e.g.
   ``addSessionRole.R`` -> cardinality rule -> ``roleActivated.R``),
   their ELSE branches deny by raising typed
   :class:`~repro.errors.AccessDenied` errors and a denial event for the
   active-security monitor;
3. temporal constraints ride composite events (PLUS countdowns,
   calendar-window timers) on the shared virtual clock.

If active security disables the rules for an operation, the engine
**fails closed**: with no rule committing the change (or granting the
access decision), the operation is denied — the paper's "block access
requests" countermeasure.

Use :func:`ActiveRBACEngine.from_policy` for the full pipeline (policy
-> validation -> model -> generated rule pool), or construct an empty
engine and administer it imperatively.
"""

from __future__ import annotations

import time

from repro.clock import Deadline, TimerService, VirtualClock
from repro.containment import FailurePolicy
from repro.enforcement import EnforcementHelpers
from repro.errors import (
    ActivationDenied,
    AdministrationError,
    DeadlineExceeded,
    DeactivationDenied,
    OperationDenied,
    ReproError,
    RuleExecutionError,
    UnknownRoleError,
)
from repro.events.detector import EventDetector
from repro.extensions.context import ContextProvider
from repro.extensions.privacy import PrivacyRegistry
from repro.kernel import KERNEL_GRANT, PolicyKernel
from repro.obs import FlightRecorder, ObsHub
from repro.policy.spec import PolicySpec, build_model
from repro.rbac.scopes import SCOPE_ROOT
from repro.rules.manager import RuleManager
from repro.rules.rule import RuleOutcome
from repro.security.audit import AuditLog
from repro.security.monitor import ActiveSecurityMonitor


class MonotonicSequence:
    """A monotone id allocator that can be *peeked* without consuming.

    Replaces ``itertools.count`` for the engine's session/activation id
    sequences: persistence snapshots the high-water mark via
    :attr:`peek` (an ``itertools.count`` can only be read by draining
    it, which skipped an id per snapshot of a running engine), and the
    write-ahead log records it so recovered counters resume monotone.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = int(start)

    def __next__(self) -> int:
        value = self._next
        self._next += 1
        return value

    @property
    def peek(self) -> int:
        """The next id that will be allocated (not consumed)."""
        return self._next


class ActiveRBACEngine(EnforcementHelpers):
    """RBAC enforcement through generated active authorization rules."""

    def __init__(self, policy: PolicySpec | None = None,
                 clock: VirtualClock | None = None,
                 max_cascade_depth: int = 64,
                 audit_capacity: int = 100_000,
                 obs: ObsHub | None = None,
                 failure_policy: FailurePolicy | None = None,
                 check_deadline: float | None = None) -> None:
        self.clock = clock or VirtualClock()
        self.timers = TimerService(self.clock)
        self.detector = EventDetector(self.timers)
        self.rules = RuleManager(self.detector, engine=self,
                                 max_cascade_depth=max_cascade_depth,
                                 failure_policy=failure_policy)
        #: default per-check virtual-clock deadline budget in simulated
        #: seconds (None = unbounded); callers can still pass an
        #: explicit :class:`~repro.clock.Deadline` to require_access.
        self.check_deadline = check_deadline
        self.audit = AuditLog(self.clock, capacity=audit_capacity)
        # Observability hub: metrics default-on, tracer off until
        # enabled (``engine.obs.tracer.enabled = True``).  Wired through
        # every pipeline hook point; see docs/ARCHITECTURE.md.
        self.obs = obs if obs is not None else ObsHub()
        self.detector.obs = self.obs
        self.rules.obs = self.obs
        self.timers.on_fire = self.obs.timer_fired
        self.obs.attach_detector(self.detector)
        self.obs.attach_rules(self.rules)
        self.obs.attach_audit_log(self.audit)
        self.context = ContextProvider()
        #: decision plane: a per-epoch compiled PolicyKernel answers the
        #: static majority of checkAccess requests without firing rules;
        #: compiled lazily (see :meth:`kernel`), never persisted.
        self.kernel_enabled = True
        self._kernel = None
        #: decision provenance: an always-on ring of the most recent
        #: decisions and rule firings, auto-dumped on quarantine trips,
        #: security lockouts and WAL recovery (see
        #: :mod:`repro.obs.provenance` and :meth:`dump_flight`)
        self.flight = FlightRecorder()
        self.context.attach(self.detector)
        self.privacy = PrivacyRegistry()
        self.monitor = ActiveSecurityMonitor(self)
        self.policy = policy.clone() if policy is not None else PolicySpec()
        self.model = build_model(self.policy)
        self.obs.attach_hierarchy(self.model.hierarchy)
        self.locked_users: set[str] = set()
        #: optional :class:`~repro.wal.Durability` write-ahead log; when
        #: attached, every state-mutating commit appends a WAL record so
        #: enforcement state survives a crash (see repro/wal.py)
        self.wal = None
        #: bumped on every policy mutation; the WAL records the epoch
        #: (with the re-rendered policy) so recovery replays session
        #: state against the policy that was actually in force
        self.policy_epoch = 0
        #: policy lifecycle surface (see repro/config/lifecycle.py):
        #: the active config version id, the candidate being staged
        #: (None outside a rollout), and the last automatic/manual
        #: rollback summary — all reported by health()/healthz
        self.config_version: int | None = None
        self.config_candidate: int | None = None
        self.config_last_rollback: dict[str, object] | None = None
        #: decision tap: when set, called after *every* decision (both
        #: paths) as tap(path, session_id, user, operation, obj,
        #: granted, scope).  Exceptions are swallowed — mirroring
        #: traffic for a shadow-compare canary must never change a
        #: live answer.
        self.decision_tap = None
        #: opt-in decision journal: with a WAL attached, append one
        #: ``decision.check`` record per decision so the log carries a
        #: replayable decision stream (see repro/config/replay.py)
        self.decision_journal = False

        self._session_seq = MonotonicSequence(1)
        self._activation_seq = MonotonicSequence(1)
        #: (session_id, role) -> activation id of the *current* activation;
        #: duration-expiry rules compare against it so a stale PLUS timer
        #: never deactivates a later re-activation.
        self.current_activation: dict[tuple[str, str], int] = {}
        #: (session_id, role) -> simulated start time of the current
        #: activation (persistence re-arms remaining durations from it)
        self.activation_started: dict[tuple[str, str], float] = {}
        #: decision slot for checkAccess (None outside a check)
        self._decision: bool | None = None

        # privacy registry from the policy
        for purpose, parent in self.policy.purposes:
            self.privacy.purposes.add(purpose, parent)
        for object_policy in self.policy.object_policies:
            self.privacy.add_policy(object_policy)

        # generate the rule pool from the policy
        from repro.synthesis.generator import RuleGenerator
        self.generator = RuleGenerator(self)
        self.generator.generate_all()

        # threshold policies -> active security monitor
        for threshold in self.policy.threshold_policies:
            self.monitor.add_policy(threshold)

        self.rules.observe(self._record_rule_firing)

    @classmethod
    def from_policy(cls, policy: PolicySpec,
                    clock: VirtualClock | None = None,
                    validate: bool = True,
                    **kwargs: Any) -> "ActiveRBACEngine":
        """Validate a policy and build the engine from it.

        Extra keyword arguments (``failure_policy``, ``check_deadline``,
        ...) are forwarded to the constructor.
        """
        if validate:
            from repro.policy.validator import validate_policy
            validate_policy(policy, raise_on_error=True)
        return cls(policy=policy, clock=clock, **kwargs)

    # ======================================================================
    # time
    # ======================================================================

    def advance_time(self, seconds: float) -> int:
        """Advance the simulated clock, firing temporal events/rules.

        Denials raised by timer-driven rules (e.g. a window-close
        disable vetoed by a disabling-time SoD) are audited and
        swallowed — a timer has no requester to report the error to.
        Returns timer callbacks fired.
        """
        self.obs.clock_advanced()
        fired = self.timers.advance(seconds)
        wal = self.wal
        if wal is not None:
            # logged *after* the timers ran: replay folds the target
            # time into the snapshot clock, and restore re-arms (or
            # immediately expires) whatever the timers owed
            wal.log("clock.advance", to=self.clock.now)
        return fired

    # ======================================================================
    # administration (direct model edits + audit; assignments go via rules)
    # ======================================================================

    def _note_policy_change(self) -> None:
        """Bump the policy epoch and WAL-log the re-rendered policy.

        Replaying a session-level WAL record only makes sense against
        the policy in force when it was appended; the epoch record
        carries the full canonical DSL text (policies are small, admin
        changes rare) so recovery can swap policies mid-replay.
        """
        self.policy_epoch += 1
        wal = self.wal
        if wal is not None:
            from repro.policy.dsl import render_policy
            wal.log("policy.epoch", epoch=self.policy_epoch,
                    policy=render_policy(self.policy))

    def add_user(self, name: str, max_active_roles: int | None = None) -> None:
        self.model.add_user(name, max_active_roles)
        self.policy.add_user(name, max_active_roles)
        self.audit.record("admin.add_user", user=name)
        self._note_policy_change()

    def delete_user(self, name: str) -> None:
        self.model.delete_user(name)
        self.policy.users.pop(name, None)
        self.policy.assignments = [
            (u, r) for u, r in self.policy.assignments if u != name
        ]
        self.policy.scoped_assignments = [
            t for t in self.policy.scoped_assignments if t[0] != name
        ]
        self.locked_users.discard(name)
        self.audit.record("admin.delete_user", user=name)
        self._note_policy_change()

    def add_role(self, name: str, max_active_users: int | None = None) -> None:
        """Add a role and generate its localized rule set."""
        self.model.add_role(name, max_active_users)
        self.policy.add_role(name, max_active_users)
        self.generator.generate_role_rules(name)
        self.audit.record("admin.add_role", role=name)
        self._note_policy_change()

    def delete_role(self, name: str) -> None:
        """Delete a role everywhere.

        Constraints mentioning the role are scrubbed from the policy;
        cross-role rules that involved it (disabling-time SoD partners,
        CFD pairs, transaction anchors) are retired together with the
        role's own rules, and the *partner* roles' rules are
        regenerated from the scrubbed policy — otherwise a partner
        would silently lose its DR/ER/AAR rule.
        """
        from repro.synthesis.regenerate import (
            affected_roles,
            regenerate_roles,
        )
        partners = affected_roles(self, {name}) - {name}
        self.model.delete_role(name)
        policy = self.policy
        policy.roles.pop(name, None)
        policy.hierarchy = [e for e in policy.hierarchy if name not in e]
        policy.assignments = [
            (u, r) for u, r in policy.assignments if r != name
        ]
        policy.grants = [g for g in policy.grants if g[0] != name]
        policy.scoped_grants = [
            g for g in policy.scoped_grants if g[0] != name
        ]
        policy.scoped_assignments = [
            t for t in policy.scoped_assignments if t[1] != name
        ]
        policy.federation_maps = [
            m for m in policy.federation_maps if m[0] != name
        ]
        policy.prerequisites = [
            p for p in policy.prerequisites
            if name not in (p.role, p.prerequisite)
        ]
        policy.post_conditions = [
            p for p in policy.post_conditions
            if name not in (p.trigger_role, p.required_role)
        ]
        policy.transactions = [
            t for t in policy.transactions
            if name not in (t.dependent_role, t.anchor_role)
        ]
        policy.durations = [d for d in policy.durations if d.role != name]
        policy.enabling_windows = [
            w for w in policy.enabling_windows if w.role != name
        ]
        policy.context_constraints = [
            c for c in policy.context_constraints if c.role != name
        ]
        from repro.gtrbac.constraints import DisablingTimeSoD
        scrubbed_sod = []
        for constraint in policy.disabling_sod:
            if name not in constraint.roles:
                scrubbed_sod.append(constraint)
                continue
            remaining = constraint.roles - {name}
            if len(remaining) >= 2:
                scrubbed_sod.append(DisablingTimeSoD(
                    constraint.name, remaining, constraint.interval))
        policy.disabling_sod = scrubbed_sod
        from repro.policy.spec import SodSetSpec
        for family in (policy.ssd, policy.dsd):
            for sod_name in list(family):
                sod = family[sod_name]
                if name not in sod.roles:
                    continue
                remaining = sod.roles - {name}
                if len(remaining) >= sod.cardinality:
                    family[sod_name] = SodSetSpec(
                        sod.name, remaining, sod.cardinality)
                else:
                    del family[sod_name]

        self.generator.remove_role_rules(name)
        self.generator.remove_role_events(name)
        regenerate_roles(self, partners & set(policy.roles))
        self.audit.record("admin.delete_role", role=name)
        self._note_policy_change()

    def add_permission(self, operation: str, obj: str) -> None:
        self.model.add_permission(operation, obj)
        if (operation, obj) not in self.policy.permissions:
            self.policy.permissions.append((operation, obj))
        self.audit.record("admin.add_permission", operation=operation,
                          object=obj)
        self._note_policy_change()

    def grant_permission(self, role: str, operation: str, obj: str,
                         scope: str | None = None) -> None:
        self.model.grant_permission(role, operation, obj, scope=scope)
        if scope is None or scope == SCOPE_ROOT:
            self.policy.grants.append((role, operation, obj))
            self.audit.record("admin.grant", role=role,
                              operation=operation, object=obj)
        else:
            self.policy.scoped_grants.append((role, operation, obj, scope))
            self.audit.record("admin.grant", role=role,
                              operation=operation, object=obj, scope=scope)
        self._note_policy_change()

    def revoke_permission(self, role: str, operation: str, obj: str,
                          scope: str | None = None) -> None:
        self.model.revoke_permission(role, operation, obj, scope=scope)
        if scope is None or scope == SCOPE_ROOT:
            try:
                self.policy.grants.remove((role, operation, obj))
            except ValueError:
                pass
            self.audit.record("admin.revoke", role=role,
                              operation=operation, object=obj)
        else:
            try:
                self.policy.scoped_grants.remove(
                    (role, operation, obj, scope))
            except ValueError:
                pass
            self.audit.record("admin.revoke", role=role,
                              operation=operation, object=obj, scope=scope)
        self._note_policy_change()

    # -- scope administration (S-A-O-C context tree) -----------------------

    def add_scope(self, name: str, parent: str | None = None) -> None:
        """Declare a scope under ``parent`` (root when None).

        Bumps the policy epoch (and the scope tree's own version),
        so the next kernel consult recompiles the scope closure.
        """
        self.model.add_scope(name, parent)
        self.policy.add_scope(name, parent)
        self.audit.record("admin.add_scope", scope=name, parent=parent)
        self._note_policy_change()

    def remove_scope(self, name: str) -> None:
        """Remove a leaf scope; the model refuses while any grant or
        assignment bound still references it (fail closed)."""
        self.model.remove_scope(name)
        self.policy.scopes = [
            (n, p) for n, p in self.policy.scopes if n != name
        ]
        self.audit.record("admin.remove_scope", scope=name)
        self._note_policy_change()

    def deassign_scope(self, user: str, role: str, scope: str) -> None:
        """Drop one scope bound from UA(user, role).

        Removing the *last* bound deassigns the pair entirely through
        the administrative rule — a scoped assignment never silently
        widens into an unbounded one (fail closed).
        """
        bounds = self.model.assignment_scopes(user, role)
        if scope not in bounds:
            raise AdministrationError(
                f"assignment ({user!r}, {role!r}) is not bounded to "
                f"scope {scope!r}"
            )
        if len(bounds) == 1:
            self.deassign_user(user, role)
            return
        self.model.remove_assignment_scope(user, role, scope)
        try:
            self.policy.scoped_assignments.remove((user, role, scope))
        except ValueError:
            pass
        self.audit.record("admin.deassign_scope", user=user, role=role,
                          scope=scope)
        self._note_policy_change()

    def _regenerate(self, roles: set[str]) -> None:
        """Regenerate the rules of roles whose relationship flags may
        have changed (hierarchy participation selects the AAR variant,
        DSD membership adds the checkDynamicSoDSet condition)."""
        from repro.synthesis.regenerate import regenerate_roles
        regenerate_roles(self, roles & set(self.policy.roles))

    def add_inheritance(self, senior: str, junior: str) -> None:
        self.model.add_inheritance(senior, junior)
        self.policy.add_hierarchy(senior, junior)
        self.audit.record("admin.add_inheritance", senior=senior,
                          junior=junior)
        self._regenerate({senior, junior})
        self._note_policy_change()

    def delete_inheritance(self, senior: str, junior: str) -> None:
        self.model.delete_inheritance(senior, junior)
        try:
            self.policy.hierarchy.remove((senior, junior))
        except ValueError:
            pass
        self.audit.record("admin.delete_inheritance", senior=senior,
                          junior=junior)
        self._regenerate({senior, junior})
        self.revalidate_activations()
        self._note_policy_change()

    def create_ssd_set(self, name: str, roles: set[str],
                       cardinality: int = 2) -> None:
        self.model.create_ssd_set(name, roles, cardinality)
        self.policy.add_ssd(name, roles, cardinality)
        self.audit.record("admin.create_ssd", name=name)
        self._note_policy_change()

    def create_dsd_set(self, name: str, roles: set[str],
                       cardinality: int = 2) -> None:
        self.model.create_dsd_set(name, roles, cardinality)
        self.policy.add_dsd(name, roles, cardinality)
        self.audit.record("admin.create_dsd", name=name)
        self._regenerate(set(roles))
        self._note_policy_change()

    def assign_user(self, user: str, role: str,
                    scope: str | None = None) -> None:
        """User-role assignment via the globalized administrative rule
        (paper scenario 3).

        With ``scope`` the assignment is *bounded*: the pair only
        serves checks inside the scope's subtree (repeat with another
        scope to widen the bound).  Narrowing a pre-existing unbounded
        assignment is refused — revoke-and-reassign makes the intent
        explicit in the audit trail.
        """
        if scope is None or scope == SCOPE_ROOT:
            self.detector.raise_event("assignUser", user=user, role=role)
            self.policy.add_assignment(user, role)
            self._note_policy_change()
            return
        already = self.model.is_assigned(user, role)
        if already and not self.model.assignment_scopes(user, role):
            raise AdministrationError(
                f"user {user!r} already holds role {role!r} unbounded; "
                f"deassign before narrowing to scope {scope!r}"
            )
        if not already:
            self.detector.raise_event("assignUser", user=user, role=role)
        if self.model.is_assigned(user, role):
            self.model.limit_assignment_scope(user, role, scope)
        self.policy.add_scoped_assignment(user, role, scope)
        self.audit.record("admin.assign_scope", user=user, role=role,
                          scope=scope)
        self._note_policy_change()

    def deassign_user(self, user: str, role: str) -> None:
        self.detector.raise_event("deassignUser", user=user, role=role)
        try:
            self.policy.assignments.remove((user, role))
        except ValueError:
            pass
        self.policy.scoped_assignments = [
            t for t in self.policy.scoped_assignments
            if (t[0], t[1]) != (user, role)
        ]
        self._note_policy_change()

    # ======================================================================
    # sessions and activations (system functions, rule-enforced)
    # ======================================================================

    def create_session(self, user: str, session_id: str | None = None,
                       roles: tuple[str, ...] = ()) -> str:
        """Create a session for ``user``; returns the session id.

        ``roles`` is the ANSI CreateSession initial active role set:
        each is activated through the generated rules; if any
        activation is denied the session is torn down and the denial
        propagates (all-or-nothing, matching the standard's "active
        role set" precondition).

        Raises :class:`~repro.errors.AccessDenied` when the globalized
        session rule denies (unknown or locked user, duplicate id).
        """
        sid = session_id or f"s{next(self._session_seq)}"
        self.detector.raise_event("createSession", user=user, sessionId=sid)
        if sid not in self.model.sessions:
            raise OperationDenied(
                "session creation not committed (rules disabled?)"
            )
        try:
            for role in roles:
                self.add_active_role(sid, role)
        except ReproError:
            self.commit_session_delete(sid)
            raise
        return sid

    def delete_session(self, session_id: str) -> None:
        self.detector.raise_event("deleteSession", sessionId=session_id)

    def add_active_role(self, session_id: str, role: str) -> None:
        """Activate ``role`` in the session (paper Rule 3).

        Raises a typed :class:`~repro.errors.ActivationDenied` from the
        generated rule's ELSE branch when any constraint fails.
        """
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        session = self.model.sessions.get(session_id)
        user = session.user if session is not None else None
        activation_id = next(self._activation_seq)
        self.detector.raise_event(
            f"addActiveRole.{role}", user=user, sessionId=session_id,
            role=role, activationId=activation_id,
        )
        if not self.model.is_active_in_session(session_id, role):
            raise ActivationDenied(
                "activation not committed (rules disabled?)"
            )

    def drop_active_role(self, session_id: str, role: str) -> None:
        """Deactivate ``role`` in the session."""
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        session = self.model.sessions.get(session_id)
        user = session.user if session is not None else None
        self.detector.raise_event(
            f"dropActiveRole.{role}", user=user, sessionId=session_id,
            role=role,
        )

    def check_access(self, session_id: str, operation: str, obj: str,
                     purpose: str | None = None,
                     deadline: Deadline | None = None,
                     scope: str | None = None) -> bool:
        """The boolean form of paper Rule 5's checkAccess.

        All three deny shapes — no rule granted, a fail-closed rule
        fault, a blown deadline budget — come back as False; other
        typed errors (e.g. a SecurityLockout countermeasure) still
        propagate.
        """
        try:
            self.require_access(session_id, operation, obj, purpose,
                                deadline=deadline, scope=scope)
            return True
        except (OperationDenied, RuleExecutionError, DeadlineExceeded):
            return False

    def require_access(self, session_id: str, operation: str, obj: str,
                       purpose: str | None = None,
                       deadline: Deadline | None = None,
                       scope: str | None = None) -> None:
        """Raise :class:`~repro.errors.OperationDenied` unless some
        active role of the session may perform the operation.

        ``scope`` is the C of the normalized S-A-O-C tuple: the check
        runs *at* that node of the scope tree, served by flat grants or
        scoped grants at any ancestor, through assignments whose bounds
        cover it.  ``scope=None`` is the root-scope (flat) check and is
        byte-compatible with the pre-scope API.  Unknown scopes deny —
        fail closed — on both serving paths.

        The compiled decision plane answers first when it can: a fresh
        :class:`~repro.kernel.PolicyKernel` resolves the static
        majority of checks from interned bitsets, falling back to the
        full interpreted OWTE pipeline for anything the compiler
        classified dynamic (context-gated roles, privacy-regulated
        objects, deadlines, diagnostics).  Either path produces the
        same answers, audit records, and counters.

        ``deadline`` (or the engine-wide ``check_deadline`` budget)
        bounds the whole check: the rule manager probes it before each
        firing, and it is probed once more after dispatch — a check
        that stalled past its budget is denied
        (:class:`~repro.errors.DeadlineExceeded`) even if a rule
        granted, so a pathological condition cannot stall the pipeline
        into an unbounded grant.
        """
        session = self.model.sessions.get(session_id)
        user = session.user if session is not None else None
        if deadline is None and self.check_deadline is not None:
            deadline = Deadline(self.clock,
                                virtual_budget=self.check_deadline)
        obs = self.obs
        observers = self.rules._observers
        fallback_reason = None
        if not self.kernel_enabled:
            fallback_reason = "disabled"
        elif (deadline is None
                # full-fidelity diagnostics (trace spans, time-every-
                # firing sampling) need the interpreted pipeline
                and not (obs.enabled and (obs.tracer.enabled
                                          or obs.timing_interval == 1))
                # extra firing observers see things the kernel skips
                and len(observers) == 1
                and observers[0] == self._record_rule_firing):
            kernel = self._kernel
            if kernel is None or not kernel.fresh(self):
                kernel = self.kernel()
            verdict = kernel.evaluate(session_id, operation, obj, scope)
            if verdict >= 0:
                self._commit_kernel_decision(
                    kernel, verdict == KERNEL_GRANT, session_id,
                    operation, obj, user, scope)
                return
            fallback_reason = kernel.last_fallback
            if obs.enabled:
                obs._kernel_fallback._value += 1
        elif deadline is not None:
            # pre-consult bypasses, classified for the reason taxonomy
            fallback_reason = "deadline"
        elif obs.enabled and (obs.tracer.enabled
                              or obs.timing_interval == 1):
            fallback_reason = "diagnostics"
        else:
            fallback_reason = "observers"
        if obs.enabled:
            obs.kernel_fallback(fallback_reason)
        previous = self._decision
        previous_deadline = self.rules.deadline
        granted = False
        denial = None
        start = time.perf_counter_ns()
        try:
            # the decision slot and dispatch deadline are armed inside
            # the try so a fault between here and dispatch can never
            # leak a stale decision/deadline into the next check
            self._decision = False
            self.rules.deadline = deadline
            if deadline is not None:
                # a budget exhausted before dispatch (the request sat in
                # an overloaded server's queue) is denied without paying
                # for the dispatch it can no longer afford
                reason = deadline.exceeded()
                if reason is not None:
                    raise DeadlineExceeded(
                        f"checkAccess {reason} deadline budget exhausted "
                        f"before dispatch; denied", reason=reason)
            if scope is None:
                self.detector.raise_event(
                    "checkAccess", sessionId=session_id,
                    operation=operation, object=obj, purpose=purpose,
                    user=user,
                )
            else:
                self.detector.raise_event(
                    "checkAccess", sessionId=session_id,
                    operation=operation, object=obj, purpose=purpose,
                    user=user, scope=scope,
                )
            if deadline is not None:
                reason = deadline.exceeded()
                if reason is not None:
                    raise DeadlineExceeded(
                        f"checkAccess exceeded its {reason} deadline "
                        f"budget; denied", reason=reason)
            granted = bool(self._decision)
            if not granted:
                # fail closed: no rule granted (e.g. CA rule disabled)
                raise OperationDenied(
                    "Permission Denied (no rule granted the request)"
                )
        except DeadlineExceeded as exc:
            denial = exc
            self.obs.deadline_hit(exc.reason)
            self.audit.record("deadline.exceeded", operation=operation,
                              object=obj, session=session_id,
                              reason=exc.reason)
            raise
        except ReproError as exc:
            denial = exc  # captured for the flight-recorder entry
            raise
        finally:
            self._decision = previous
            self.rules.deadline = previous_deadline
            flight = self.flight
            if flight.enabled:
                cause = None
                if denial is not None:
                    cause = type(denial).__name__
                    detail = getattr(denial, "reason", None)
                    if detail:
                        cause = f"{cause}:{detail}"
                seq = flight._seq = flight._seq + 1
                flight._buf[seq % flight.capacity] = (
                    "decision", seq, self.clock.now, "interpreted",
                    session_id, user, operation, obj,
                    "grant" if granted else "deny",
                    getattr(denial, "rule", None), fallback_reason,
                    cause, scope)
            self._after_decision("interpreted", session_id, user,
                                 operation, obj, granted, purpose, scope)
            self.obs.access_decision(granted,
                                     time.perf_counter_ns() - start)

    # ======================================================================
    # decision plane (PolicyKernel)
    # ======================================================================

    def kernel(self) -> "PolicyKernel":
        """The compiled decision plane for the current policy epoch.

        Compiles lazily and recompiles whenever the validity triple
        (policy epoch, rule-pool version, detector version) moved —
        i.e. after any control-plane mutation.  Always returns a fresh
        kernel; works even with ``kernel_enabled`` off (inspection,
        CLI stats) since compilation never mutates anything.
        """
        kernel = self._kernel
        if kernel is not None and kernel.fresh(self):
            return kernel
        reason = "cold" if kernel is None else kernel.stale_reason(self)
        kernel = self._kernel = PolicyKernel(self)
        self.obs.kernel_built(reason, kernel.build_ns)
        return kernel

    def invalidate_kernel(self) -> None:
        """Drop the compiled kernel; the next consult recompiles.

        The version triple already catches every mutation that flows
        through the engine/manager/detector APIs — this is the
        belt-and-braces hook for callers (regeneration, tests) that
        rewire things behind those counters.
        """
        self._kernel = None

    # ======================================================================
    # decision provenance (explain API + flight recorder)
    # ======================================================================

    def explain(self, session_id: str, operation: str, obj: str,
                purpose: str | None = None, scope: str | None = None):
        """Re-run one access decision in explanation mode (read-only).

        Returns a :class:`~repro.obs.provenance.DecisionExplanation`
        whose verdict matches what :meth:`require_access` would decide
        right now, with the full derivation: the path that would serve
        the request (kernel or interpreted, with the fallback-reason
        taxonomy), the permission → role → hierarchy-edge chain
        reconstructed from the kernel's interning tables, context
        gates, privacy compliance, and the first deny cause in the CA
        rule's clause order.  No events fire, no audit records are
        written, and no decision counters move.
        """
        from repro.obs.provenance import explain_decision
        return explain_decision(self, session_id, operation, obj,
                                purpose=purpose, scope=scope)

    def dump_flight(self, cause: str,
                    directory: str | None = None) -> str | None:
        """Dump the flight recorder: JSON file + audit entry.

        Called automatically on quarantine trips, security lockouts
        and WAL recovery; safe to call manually.  Returns the dump
        path, or None when the recorder is disabled or the write
        failed (a forensics dump must never take enforcement down).
        """
        flight = self.flight
        if not flight.enabled:
            return None
        try:
            path = flight.dump(cause, directory,
                               context={"health": self.health()})
        except OSError:
            return None
        self.audit.record("flightrec.dump", cause=cause, path=path,
                          records=len(flight), seq=flight.seq)
        return path

    def _after_decision(self, path: str, session_id: str,
                        user: str | None, operation: str, obj: str,
                        granted: bool, purpose: str | None,
                        scope: str | None = None) -> None:
        """Post-decision hooks shared by both serving paths.

        Feeds the shadow-compare tap (swallowing anything it raises:
        mirrored traffic must never change, delay, or fail a live
        answer) and, when the decision journal is on, appends one
        ``decision.check`` WAL record so the log carries a replayable
        decision stream.  Both hooks are off (one attribute check
        each) in the default configuration.
        """
        tap = self.decision_tap
        if tap is not None:
            try:
                tap(path, session_id, user, operation, obj, granted,
                    scope)
            except Exception:  # noqa: BLE001 - see docstring
                pass
        if self.decision_journal:
            wal = self.wal
            if wal is not None:
                wal.log("decision.check", session=session_id, user=user,
                        operation=operation, object=obj,
                        purpose=purpose, granted=granted, path=path,
                        scope=scope)

    def _commit_kernel_decision(self, kernel: "PolicyKernel", granted: bool,
                                session_id: str, operation: str, obj: str,
                                user: str | None,
                                scope: str | None = None) -> None:
        """Apply a kernel verdict with interpreted-pipeline parity.

        Mirrors exactly what one checkAccess dispatch through the CA
        rule would have done: event/dispatch counters, rule branch
        counters (the collect-time ``repro_rule_firings_total`` mirror
        reads them), audit records in firing order, the *real*
        ``accessDenied`` event on deny (active-security counter-
        measures must see denials and may propagate instead), and the
        end-to-end decision histogram.
        """
        obs = self.obs
        detector = self.detector
        ca = kernel._ca
        start = time.perf_counter_ns()
        try:
            # event-substrate parity: one raise, one primitive dispatch
            detector._raised_count += 1
            detector._detected_count += 1
            if obs.enabled:
                node = kernel._node
                pair = node.obs_pair
                if pair is None:
                    pair = obs.bind_node(node)
                pair[0]._value += 1
                pair[1]._value += 1
                obs._cascade_shallow += 1
            ca.fired_count += 1
            flight = self.flight
            if flight.enabled:
                # provenance: inlined FlightRecorder.note_decision —
                # this is the kernel hot path, bounded <3% by the
                # smoke job's provenance budget
                seq = flight._seq = flight._seq + 1
                flight._buf[seq % flight.capacity] = (
                    "decision", seq, self.clock.now, "kernel",
                    session_id, user, operation, obj,
                    "grant" if granted else "deny", ca.name, None,
                    None if granted else "OperationDenied", scope)
            if granted:
                ca.then_count += 1
                if obs.enabled:
                    obs._kernel_grant._value += 1
                if scope is None:
                    self.audit.record("decision.allow", category="access",
                                      user=user, operation=operation,
                                      object=obj)
                else:
                    self.audit.record("decision.allow", category="access",
                                      user=user, operation=operation,
                                      object=obj, scope=scope)
                return
            ca.else_count += 1
            if obs.enabled:
                obs._kernel_deny._value += 1
            # E-branch order matters: the denial event fires before the
            # audit record and the typed error, exactly as the rule's
            # alt_actions do — a SecurityLockout countermeasure raised
            # by the cascade propagates instead of OperationDenied
            if scope is None:
                detector.raise_event("accessDenied", user=user,
                                     sessionId=session_id,
                                     operation=operation, object=obj)
                self.audit.record("decision.deny", category="access",
                                  user=user, operation=operation,
                                  object=obj)
            else:
                detector.raise_event("accessDenied", user=user,
                                     sessionId=session_id,
                                     operation=operation, object=obj,
                                     scope=scope)
                self.audit.record("decision.deny", category="access",
                                  user=user, operation=operation,
                                  object=obj, scope=scope)
            error = OperationDenied("Permission Denied", rule=ca.name)
            if obs.enabled:
                child = obs._error_cache.get((ca.name, OperationDenied))
                if child is None:
                    child = obs.bind_error(ca.name, error)
                child._value += 1
            # firing-observer parity (engine._record_rule_firing)
            self.audit.record("rule.else", rule=ca.name,
                              event="checkAccess", error="OperationDenied")
            raise error
        finally:
            self._after_decision("kernel", session_id, user,
                                 operation, obj, granted, None, scope)
            self.obs.access_decision(granted,
                                     time.perf_counter_ns() - start)

    # ======================================================================
    # GTRBAC role status
    # ======================================================================

    def enable_role(self, role: str) -> None:
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        self.detector.raise_event(f"enableRole.{role}", role=role)

    def disable_role(self, role: str) -> None:
        """Disable a role; time-based SoD on disabling may deny."""
        if role not in self.model.roles:
            raise UnknownRoleError(role)
        self.detector.raise_event(f"disableRole.{role}", role=role)
        if self.model.roles[role].enabled:
            raise DeactivationDenied(
                "disable not committed (rules disabled?)"
            )

    # ======================================================================
    # commit helpers — called ONLY from generated rule actions
    # ======================================================================

    def grant_decision(self) -> None:
        """THEN action of the checkAccess rule: allow."""
        self._decision = True

    def commit_session(self, session_id: str, user: str) -> None:
        self.model.create_session_record(session_id, user)
        self.obs.session_changed("create")
        self.audit.record("session.create", session=session_id, user=user)
        wal = self.wal
        if wal is not None:
            wal.log("session.create", id=session_id, user=user,
                    seq=self._session_seq.peek)

    def commit_session_delete(self, session_id: str) -> None:
        session = self.model.sessions.get(session_id)
        if session is None:
            return
        # deactivate everything first so per-role cleanup rules observe it
        for role in list(session.active_roles):
            self.commit_deactivation(session_id, role)
        self.model.delete_session_record(session_id)
        self.obs.session_changed("delete")
        self.audit.record("session.delete", session=session_id)
        wal = self.wal
        if wal is not None:
            wal.log("session.delete", id=session_id)

    def commit_activation(self, session_id: str, role: str,
                          activation_id: int) -> None:
        self.model.add_session_role_record(session_id, role)
        self.current_activation[(session_id, role)] = activation_id
        self.activation_started[(session_id, role)] = self.clock.now
        self.obs.activation_changed("add")
        self.audit.record("activation.add", session=session_id, role=role)
        wal = self.wal
        if wal is not None:
            wal.log("activation.add", session=session_id, role=role,
                    activation_id=activation_id, started=self.clock.now,
                    seq=self._activation_seq.peek)

    def commit_deactivation(self, session_id: str, role: str) -> None:
        user = self.model.session_user(session_id)
        self.model.drop_session_role_record(session_id, role)
        self.current_activation.pop((session_id, role), None)
        self.activation_started.pop((session_id, role), None)
        self.obs.activation_changed("drop")
        self.audit.record("activation.drop", session=session_id, role=role)
        wal = self.wal
        if wal is not None:
            wal.log("activation.drop", session=session_id, role=role)
        self.detector.raise_event(
            f"roleDeactivated.{role}", sessionId=session_id, role=role,
            user=user,
        )

    def commit_assignment(self, user: str, role: str) -> None:
        self.model.add_assignment_record(user, role)
        self.audit.record("admin.assign_user", user=user, role=role)

    def commit_deassignment(self, user: str, role: str) -> None:
        self.model.remove_assignment_record(user, role)
        self.audit.record("admin.deassign_user", user=user, role=role)
        self.revalidate_activations(user)

    def revalidate_activations(self, user: str | None = None) -> int:
        """Deactivate every activation that lost its authorization
        (after deassignment or hierarchy edits). Returns how many."""
        stale = self.unauthorized_activations(user)
        for session_id, role in stale:
            self.commit_deactivation(session_id, role)
        return len(stale)

    def commit_role_enabled(self, role: str, enabled: bool) -> None:
        if not enabled:
            # Deactivate through commit_deactivation so roleDeactivated
            # events fire (anchor cleanup, audit) before the flag flips.
            self.force_deactivate_role(role)
        self.model.set_role_enabled(role, enabled)
        self.audit.record("role.enable" if enabled else "role.disable",
                          role=role)
        wal = self.wal
        if wal is not None:
            wal.log("role.status", role=role, enabled=enabled)

    # ======================================================================
    # active-security reactions
    # ======================================================================

    def force_deactivate_role(self, role: str) -> int:
        """Drop ``role`` from every session (countermeasure). Returns
        the number of sessions affected."""
        if role not in self.model.roles:
            return 0
        affected = 0
        for session_id, session in list(self.model.sessions.items()):
            if role in session.active_roles:
                self.commit_deactivation(session_id, role)
                affected += 1
        return affected

    def lock_user(self, user: str) -> None:
        """Lock a user out: sessions destroyed, further requests denied."""
        self.locked_users.add(user)
        for session_id in list(self.model.user_sessions(user)) \
                if user in self.model.users else []:
            self.commit_session_delete(session_id)
        self.audit.record("security.lock_user", user=user)
        wal = self.wal
        if wal is not None:
            wal.log("user.lock", user=user)
        # a lockout is a health-degradation event: preserve the run-up
        self.dump_flight(f"security.lockout.{user}")

    def unlock_user(self, user: str) -> None:
        self.locked_users.discard(user)
        self.audit.record("security.unlock_user", user=user)
        wal = self.wal
        if wal is not None:
            wal.log("user.unlock", user=user)

    # ======================================================================
    # internals
    # ======================================================================

    def _record_rule_firing(self, rule, occurrence, outcome, error) -> None:
        flight = self.flight
        if flight.enabled:
            seq = flight._seq = flight._seq + 1
            flight._buf[seq % flight.capacity] = (
                "firing", seq, self.clock.now, rule.name,
                occurrence.event,
                outcome.value if outcome is not None else "error",
                type(error).__name__ if error is not None else None)
        if outcome is RuleOutcome.ELSE or error is not None:
            self.audit.record(
                "rule.else", rule=rule.name, event=occurrence.event,
                error=type(error).__name__ if error else None,
            )

    def safe_raise(self, event: str, **params) -> None:
        """Raise an event from a timer callback, auditing (not
        propagating) access-control denials — timers have no requester."""
        try:
            self.detector.raise_event(event, **params)
        except ReproError as exc:
            self.audit.record("timer.denied", event=event,
                              error=type(exc).__name__, message=str(exc))

    def health(self) -> dict[str, object]:
        """Degradation summary for operators (and `repro-rbac health`).

        ``status`` is ``degraded`` while any rule sits in quarantine —
        a persistent loss of enforcement/advisory coverage — and ``ok``
        otherwise; the counters surface transient fault activity
        (contained clause faults, observer faults, blown deadlines,
        transient-I/O retries) so a fleet can alert on them.
        """
        quarantined = sorted(r.name for r in self.rules.quarantined_rules())
        kernel = self._kernel
        return {
            "status": "degraded" if quarantined else "ok",
            "rules": len(self.rules),
            "rules_enabled": sum(1 for r in self.rules if r.enabled),
            "quarantined": quarantined,
            "rule_faults": sum(r.fault_count for r in self.rules),
            "observer_faults": self.rules.observer_faults,
            "deadline_exceeded": int(self.obs.deadline_exceeded.total()),
            "transient_retries": int(self.obs.transient_retries.total()),
            "audit_dropped": self.audit.dropped,
            "locked_users": sorted(self.locked_users),
            "kernel": ("off" if not self.kernel_enabled
                       else "cold" if kernel is None
                       else "fresh" if kernel.fresh(self)
                       else "stale"),
            # decision-plane readiness: what /healthz reports without
            # forcing a recompile.  The staleness triple pairs each
            # compiled version with the engine's live one, so an
            # operator can see *which* axis drifted (policy edit, rule
            # quarantine, detector change) before the next publish.
            "kernel_epoch": None if kernel is None else kernel.epoch,
            "policy_epoch": self.policy_epoch,
            "kernel_stale_reason": (None if kernel is None
                                    else kernel.stale_reason(self)),
            "kernel_staleness": None if kernel is None else {
                "epoch": {"kernel": kernel.epoch,
                          "engine": self.policy_epoch},
                "rules": {"kernel": kernel.rules_version,
                          "engine": self.rules.version},
                "detector": {"kernel": kernel.detector_version,
                             "engine": self.detector.version},
                "scopes": {"kernel": kernel.scopes_version,
                           "engine": self.model.scopes.version},
            },
            "kernel_last_fallback": (None if kernel is None
                                     else kernel.last_fallback),
            # policy lifecycle: which config version is live, what (if
            # anything) is staged, and why the last rollback happened
            "config_version": self.config_version,
            "config_candidate": self.config_candidate,
            "config_last_rollback": self.config_last_rollback,
            "flightrec_dumps": self.flight.dumps,
            "flightrec_dir": self.flight.resolved_dir(),
        }

    def stats(self) -> dict[str, int | float]:
        """Combined model/detector/rule-pool counters, merged with the
        observability registry snapshot.

        Metric-registry series keep their own namespace: every merged
        key starts with ``obs.`` (histograms contribute ``.count`` /
        ``.sum`` / ``.mean`` sub-keys), so existing consumers of the
        legacy keys are unaffected while CLI/examples surface the
        richer counters without any API change.
        """
        combined: dict[str, int | float] = dict(self.model.stats())
        combined.update({f"events_{k}": v
                         for k, v in self.detector.stats().items()})
        combined["rules"] = len(self.rules)
        combined["audit_entries"] = len(self.audit)
        kernel = self._kernel
        combined["kernel_enabled"] = int(self.kernel_enabled)
        combined["kernel_compiled"] = int(
            kernel is not None and kernel.fresh(self))
        combined.update(self.obs.metrics.snapshot_flat(prefix="obs."))
        return combined
