"""Unit tests for small public surfaces not covered elsewhere."""

import pytest

from repro.clock import SIMULATED_EPOCH, Timestamp, TimerService, VirtualClock
from repro.errors import EventError, SoDError
from repro.events import EventDetector
from repro.rbac.model import RBACModel


@pytest.fixture
def det():
    detector = EventDetector(TimerService(VirtualClock()))
    for name in ("E1", "E2", "E3"):
        detector.define_primitive(name)
    return detector


class TestDefineComposite:
    """The generic by-operator-name factory (used by power users)."""

    def test_or_by_name(self, det):
        det.define_composite("O", "OR", "E1", "E2")
        hits = []
        det.subscribe("O", hits.append)
        det.raise_event("E1")
        assert len(hits) == 1

    def test_seq_alias(self, det):
        det.define_composite("S", "seq", "E1", "E2")
        hits = []
        det.subscribe("S", hits.append)
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(hits) == 1

    def test_ternary_operators(self, det):
        det.define_composite("N", "NOT", "E1", "E2", "E3")
        det.define_composite("AP", "APERIODIC", "E1", "E2", "E3",
                             mode="chronicle")
        not_hits, ap_hits = [], []
        det.subscribe("N", not_hits.append)
        det.subscribe("AP", ap_hits.append)
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E3")
        assert len(ap_hits) == 1
        assert not_hits == []  # contaminated by E2

    def test_unknown_operator_rejected(self, det):
        with pytest.raises(EventError, match="unknown operator"):
            det.define_composite("X", "ZIGZAG", "E1", "E2")


class TestTimestamp:
    def test_to_datetime(self):
        stamp = Timestamp(86400.0)
        assert stamp.to_datetime().day == 2
        assert Timestamp(0.0).to_datetime() == SIMULATED_EPOCH


class TestModelLeftovers:
    @pytest.fixture
    def model(self):
        m = RBACModel()
        m.add_role("A")
        m.add_role("B")
        m.add_user("u")
        return m

    def test_add_operation_and_object(self, model):
        model.add_operation("execute")
        model.add_object("binary")
        assert "execute" in model.operations
        assert "binary" in model.objects

    def test_delete_ssd_set(self, model):
        model.create_ssd_set("s", {"A", "B"}, 2)
        model.delete_ssd_set("s")
        assert model.sod.ssd_ok({"A"}, "B")
        with pytest.raises(SoDError):
            model.delete_ssd_set("s")

    def test_delete_dsd_set(self, model):
        model.create_dsd_set("d", {"A", "B"}, 2)
        model.delete_dsd_set("d")
        assert model.sod.dsd_ok({"A"}, "B")

    def test_create_ssd_rejected_when_already_violated(self, model):
        model.assign_user("u", "A")
        model.assign_user("u", "B")
        from repro.errors import SsdViolationError
        with pytest.raises(SsdViolationError):
            model.create_ssd_set("s", {"A", "B"}, 2)
        # the failed set must not linger
        assert not list(model.sod.ssd_sets())


class TestEngineDirectSurfaces:
    def test_force_deactivate_unknown_role_is_zero(self):
        from repro import ActiveRBACEngine
        engine = ActiveRBACEngine()
        assert engine.force_deactivate_role("ghost") == 0

    def test_revalidate_activations_noop_when_consistent(self):
        from repro import ActiveRBACEngine, parse_policy
        engine = ActiveRBACEngine.from_policy(parse_policy(
            "policy p { role A; user u; assign u to A; }"))
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        assert engine.revalidate_activations() == 0
        assert "A" in engine.model.session_roles(sid)

    def test_rules_for_event_ordering(self):
        from repro import ActiveRBACEngine
        from repro.rules.rule import OWTERule
        engine = ActiveRBACEngine()
        engine.detector.define_primitive("ping")
        engine.rules.add(OWTERule(name="low", event="ping", priority=0))
        engine.rules.add(OWTERule(name="high", event="ping", priority=5))
        names = [r.name for r in engine.rules.rules_for_event("ping")]
        assert names == ["high", "low"]


class TestFederationQueries:
    def test_mappings_for(self):
        from repro import ActiveRBACEngine, parse_policy
        from repro.federation import Federation, RoleMapping
        fed = Federation()
        fed.add_domain("a", ActiveRBACEngine.from_policy(
            parse_policy("policy a { role X; }")))
        fed.add_domain("b", ActiveRBACEngine.from_policy(
            parse_policy("policy b { role Y; }")))
        mapping = RoleMapping("a", "X", "b", "Y")
        fed.add_mapping(mapping)
        assert fed.mappings_for("a", "b") == [mapping]
        assert fed.mappings_for("b", "a") == []
        assert sorted(fed.domains()) == ["a", "b"]
