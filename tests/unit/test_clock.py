"""Unit tests for the virtual clock and timer service."""

import pytest

from repro.clock import SIMULATED_EPOCH, Timestamp, TimerService, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_offset(self):
        assert VirtualClock(start=100.0).now == 100.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.advance(2.5)
        assert clock.now == 7.5

    def test_advance_rejects_negative(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = VirtualClock()
        clock.advance_to(42.0)
        assert clock.now == 42.0

    def test_advance_to_rejects_past(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_stamps_are_unique_and_ordered(self):
        clock = VirtualClock()
        first = clock.stamp()
        second = clock.stamp()
        assert first < second
        assert first.seconds == second.seconds
        clock.advance(1.0)
        third = clock.stamp()
        assert second < third

    def test_now_datetime_at_epoch(self):
        assert VirtualClock().now_datetime() == SIMULATED_EPOCH

    def test_now_fields_order_matches_calendar_notation(self):
        clock = VirtualClock()
        clock.advance(10 * 3600 + 30 * 60 + 15)  # 10:30:15 on Jan 1 2005
        assert clock.now_fields() == (10, 30, 15, 1, 1, 2005)


class TestTimestamp:
    def test_addition_shifts_seconds(self):
        stamp = Timestamp(10.0, 3)
        shifted = stamp + 5.0
        assert shifted.seconds == 15.0
        assert shifted.sequence == 3

    def test_rendering_matches_paper_notation(self):
        stamp = Timestamp(10 * 3600)  # 10:00:00 on Jan 1 2005
        assert str(stamp) == "10:00:00/01/01/2005"


class TestTimerService:
    def test_fires_in_deadline_order(self):
        timers = TimerService(VirtualClock())
        fired = []
        timers.schedule_after(10.0, lambda: fired.append("late"))
        timers.schedule_after(5.0, lambda: fired.append("early"))
        timers.advance(20.0)
        assert fired == ["early", "late"]

    def test_tie_broken_by_scheduling_order(self):
        timers = TimerService(VirtualClock())
        fired = []
        timers.schedule_after(5.0, lambda: fired.append("first"))
        timers.schedule_after(5.0, lambda: fired.append("second"))
        timers.advance(5.0)
        assert fired == ["first", "second"]

    def test_does_not_fire_before_deadline(self):
        timers = TimerService(VirtualClock())
        fired = []
        timers.schedule_after(10.0, lambda: fired.append(1))
        timers.advance(9.999)
        assert fired == []
        timers.advance(0.001)
        assert fired == [1]

    def test_cancel_prevents_firing(self):
        timers = TimerService(VirtualClock())
        fired = []
        timer_id = timers.schedule_after(5.0, lambda: fired.append(1))
        assert timers.cancel(timer_id) is True
        timers.advance(10.0)
        assert fired == []

    def test_cancel_twice_returns_false(self):
        timers = TimerService(VirtualClock())
        timer_id = timers.schedule_after(5.0, lambda: None)
        assert timers.cancel(timer_id) is True
        assert timers.cancel(timer_id) is False

    def test_cancel_after_firing_returns_false(self):
        timers = TimerService(VirtualClock())
        timer_id = timers.schedule_after(1.0, lambda: None)
        timers.advance(2.0)
        assert timers.cancel(timer_id) is False

    def test_callback_observes_its_own_deadline(self):
        clock = VirtualClock()
        timers = TimerService(clock)
        seen = []
        timers.schedule_after(7.0, lambda: seen.append(clock.now))
        timers.advance(100.0)
        assert seen == [7.0]
        assert clock.now == 100.0

    def test_callback_may_reschedule_within_advance(self):
        clock = VirtualClock()
        timers = TimerService(clock)
        ticks = []

        def tick():
            ticks.append(clock.now)
            if len(ticks) < 4:
                timers.schedule_after(10.0, tick)

        timers.schedule_after(10.0, tick)
        timers.advance(35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_negative_delay_rejected(self):
        timers = TimerService(VirtualClock())
        with pytest.raises(ValueError):
            timers.schedule_after(-1.0, lambda: None)

    def test_len_counts_pending_only(self):
        timers = TimerService(VirtualClock())
        timers.schedule_after(5.0, lambda: None)
        cancelled = timers.schedule_after(6.0, lambda: None)
        timers.cancel(cancelled)
        assert len(timers) == 1

    def test_next_deadline_skips_cancelled(self):
        timers = TimerService(VirtualClock())
        first = timers.schedule_after(1.0, lambda: None)
        timers.schedule_after(2.0, lambda: None)
        timers.cancel(first)
        assert timers.next_deadline() == 2.0

    def test_past_deadline_fires_on_run_due(self):
        clock = VirtualClock(start=100.0)
        timers = TimerService(clock)
        fired = []
        timers.schedule_at(50.0, lambda: fired.append(1))
        assert timers.run_due() == 1
        assert fired == [1]
