"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("error_cls", [
        errors.AdministrationError,
        errors.AccessDenied,
        errors.EventError,
        errors.RuleError,
        errors.PolicyError,
        errors.SynthesisError,
    ])
    def test_all_families_derive_from_repro_error(self, error_cls):
        assert issubclass(error_cls, errors.ReproError)

    @pytest.mark.parametrize("error_cls", [
        errors.ActivationDenied,
        errors.DeactivationDenied,
        errors.OperationDenied,
        errors.DsdViolationError,
        errors.CardinalityExceeded,
        errors.RoleNotEnabledError,
        errors.PrerequisiteNotMetError,
        errors.SecurityLockout,
    ])
    def test_denials_are_access_denied(self, error_cls):
        assert issubclass(error_cls, errors.AccessDenied)

    def test_dsd_and_cardinality_are_activation_denials(self):
        assert issubclass(errors.DsdViolationError,
                          errors.ActivationDenied)
        assert issubclass(errors.CardinalityExceeded,
                          errors.ActivationDenied)

    def test_ssd_violation_is_administrative(self):
        assert issubclass(errors.SsdViolationError,
                          errors.AdministrationError)
        assert not issubclass(errors.SsdViolationError,
                              errors.AccessDenied)


class TestPayloads:
    def test_access_denied_carries_rule(self):
        error = errors.AccessDenied("no", rule="CA.checkAccess")
        assert error.rule == "CA.checkAccess"
        assert str(error) == "no"

    def test_unknown_entity_errors_carry_names(self):
        assert errors.UnknownUserError("bob").user == "bob"
        assert errors.UnknownRoleError("PC").role == "PC"
        assert errors.UnknownSessionError("s1").session_id == "s1"
        assert errors.UnknownEventError("E1").name == "E1"
        assert errors.UnknownRuleError("R1").name == "R1"

    def test_hierarchy_cycle_carries_edge(self):
        error = errors.HierarchyCycleError("a", "b")
        assert (error.senior, error.junior) == ("a", "b")
        assert "cycle" in str(error)

    def test_ssd_violation_payload(self):
        error = errors.SsdViolationError(
            "bad", constraint="s1", user="bob",
            roles=frozenset({"PC", "AC"}))
        assert error.constraint == "s1"
        assert error.user == "bob"
        assert error.roles == frozenset({"PC", "AC"})

    def test_policy_syntax_error_location(self):
        error = errors.PolicySyntaxError("bad token", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)

    def test_policy_syntax_error_without_location(self):
        error = errors.PolicySyntaxError("bad")
        assert "line" not in str(error)

    def test_policy_validation_error_aggregates(self):
        error = errors.PolicyValidationError(["first", "second"])
        assert error.issues == ["first", "second"]
        assert "first" in str(error) and "second" in str(error)

    def test_unknown_permission_reprs_permission(self):
        from repro.rbac.model import Permission
        error = errors.UnknownPermissionError(Permission("read", "doc"))
        assert "read" in str(error)


class TestCatchability:
    def test_one_base_catches_everything(self):
        for error in (
            errors.ActivationDenied("x"),
            errors.HierarchyCycleError("a", "b"),
            errors.PolicySyntaxError("x"),
            errors.RuleCascadeError("x"),
            errors.CalendarExpressionError("x"),
        ):
            with pytest.raises(errors.ReproError):
                raise error
