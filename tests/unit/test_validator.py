"""Unit tests for policy consistency checking."""

import pytest

from repro.errors import PolicyValidationError
from repro.extensions.cfd import (
    PostConditionDependency,
    PrerequisiteRole,
    TransactionActivation,
)
from repro.extensions.context import ContextConstraint, ContextOp
from repro.extensions.privacy import ObjectPolicy
from repro.gtrbac.constraints import (
    DisablingTimeSoD,
    DurationConstraint,
    EnablingWindow,
)
from repro.gtrbac.periodic import PeriodicInterval
from repro.policy.spec import PolicySpec, SodSetSpec
from repro.policy.validator import validate_policy


def base_spec():
    spec = PolicySpec(name="t")
    for role in ("A", "B", "C"):
        spec.add_role(role)
    spec.add_user("u")
    return spec


class TestCleanPolicies:
    def test_empty_policy_valid(self):
        assert validate_policy(PolicySpec()) == []

    def test_well_formed_policy_valid(self):
        spec = base_spec()
        spec.add_hierarchy("A", "B")
        spec.add_ssd("s", {"B", "C"})
        spec.add_grant("A", "read", "x")
        spec.add_assignment("u", "A")
        assert validate_policy(spec) == []


class TestReferentialIntegrity:
    def test_hierarchy_unknown_role(self):
        spec = base_spec()
        spec.add_hierarchy("A", "Ghost")
        issues = validate_policy(spec)
        assert any("Ghost" in issue for issue in issues)

    def test_assignment_unknown_user(self):
        spec = base_spec()
        spec.add_assignment("ghost", "A")
        assert any("ghost" in issue for issue in validate_policy(spec))

    def test_grant_undeclared_permission(self):
        spec = base_spec()
        spec.grants.append(("A", "read", "x"))  # bypass add_grant
        assert any("undeclared permission" in issue
                   for issue in validate_policy(spec))

    def test_constraints_unknown_roles(self):
        spec = base_spec()
        spec.prerequisites.append(PrerequisiteRole("A", "Ghost"))
        spec.post_conditions.append(PostConditionDependency("Ghost2", "A"))
        spec.transactions.append(TransactionActivation("A", "Ghost3"))
        spec.durations.append(DurationConstraint("Ghost4", 10.0))
        spec.context_constraints.append(ContextConstraint(
            "Ghost5", "v", ContextOp.EQ, 1))
        issues = validate_policy(spec)
        for ghost in ("Ghost", "Ghost2", "Ghost3", "Ghost4", "Ghost5"):
            assert any(ghost in issue for issue in issues)


class TestHierarchyChecks:
    def test_cycle_detected(self):
        spec = base_spec()
        spec.add_hierarchy("A", "B")
        spec.add_hierarchy("B", "C")
        spec.add_hierarchy("C", "A")
        issues = validate_policy(spec)
        assert any("cycle" in issue for issue in issues)

    def test_self_loop_detected(self):
        spec = base_spec()
        spec.add_hierarchy("A", "A")
        assert any("self-loop" in issue for issue in validate_policy(spec))

    def test_limited_mode_fanout(self):
        spec = base_spec()
        spec.hierarchy_limited = True
        spec.add_hierarchy("A", "B")
        spec.add_hierarchy("A", "C")
        assert any("limited hierarchy" in issue
                   for issue in validate_policy(spec))


class TestSodChecks:
    def test_bad_cardinality(self):
        spec = base_spec()
        spec.ssd["s"] = SodSetSpec("s", frozenset({"A", "B"}), 3)
        assert any("cardinality" in issue for issue in validate_policy(spec))

    def test_ssd_hierarchy_conflict(self):
        # A >> B and SSD {A, B}: anyone assigned A is authorized for
        # both members -> unsatisfiable.
        spec = base_spec()
        spec.add_hierarchy("A", "B")
        spec.add_ssd("s", {"A", "B"})
        issues = validate_policy(spec)
        assert any("conflicts with the hierarchy" in issue
                   for issue in issues)

    def test_assignment_ssd_violation(self):
        spec = base_spec()
        spec.add_ssd("s", {"A", "B"})
        spec.add_assignment("u", "A")
        spec.add_assignment("u", "B")
        assert any("violate SSD" in issue for issue in validate_policy(spec))

    def test_inherited_assignment_violation(self):
        spec = base_spec()
        spec.add_hierarchy("A", "B")      # assigning A authorizes B
        spec.add_ssd("s", {"B", "C"})
        spec.add_assignment("u", "A")
        spec.add_assignment("u", "C")
        assert any("violate SSD" in issue for issue in validate_policy(spec))


class TestCfdChecks:
    def test_prerequisite_cycle(self):
        spec = base_spec()
        spec.prerequisites.append(PrerequisiteRole("A", "B"))
        spec.prerequisites.append(PrerequisiteRole("B", "A"))
        assert any("prerequisite roles form a cycle" in issue
                   for issue in validate_policy(spec))

    def test_transaction_cycle(self):
        spec = base_spec()
        spec.transactions.append(TransactionActivation("A", "B"))
        spec.transactions.append(TransactionActivation("B", "A"))
        assert any("anchors form a cycle" in issue
                   for issue in validate_policy(spec))


class TestTemporalChecks:
    def test_duplicate_enabling_windows_flagged(self):
        spec = base_spec()
        interval = PeriodicInterval.daily("08:00", "16:00")
        spec.enabling_windows.append(EnablingWindow("A", interval))
        spec.enabling_windows.append(EnablingWindow("A", interval))
        assert any("multiple enabling windows" in issue
                   for issue in validate_policy(spec))

    def test_disabling_sod_unknown_role(self):
        spec = base_spec()
        spec.disabling_sod.append(DisablingTimeSoD(
            "d", frozenset({"A", "Ghost"}), PeriodicInterval.always()))
        assert any("Ghost" in issue for issue in validate_policy(spec))


class TestPrivacyChecks:
    def test_undeclared_parent_purpose(self):
        spec = base_spec()
        spec.purposes.append(("child", "ghost-parent"))
        assert any("ghost-parent" in issue
                   for issue in validate_policy(spec))

    def test_object_policy_unknown_purpose(self):
        spec = base_spec()
        spec.object_policies.append(ObjectPolicy("x", "read", "ghost"))
        assert any("ghost" in issue for issue in validate_policy(spec))


class TestRaiseMode:
    def test_raises_aggregated(self):
        spec = base_spec()
        spec.add_hierarchy("A", "A")
        spec.add_assignment("ghost", "A")
        with pytest.raises(PolicyValidationError) as excinfo:
            validate_policy(spec, raise_on_error=True)
        assert len(excinfo.value.issues) >= 2

    def test_no_raise_when_clean(self):
        assert validate_policy(base_spec(), raise_on_error=True) == []

    def test_cardinality_sanity(self):
        spec = base_spec()
        spec.add_role("Bad", max_active_users=0)
        spec.add_user("bad", max_active_roles=0)
        issues = validate_policy(spec)
        assert any("max_active_users" in issue for issue in issues)
        assert any("max_active_roles" in issue for issue in issues)
