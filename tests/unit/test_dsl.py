"""Unit tests for the policy DSL: lexer, parser, renderer."""

import pytest

from repro.errors import PolicySyntaxError
from repro.extensions.context import ContextOp
from repro.policy.dsl import parse_policy, render_policy, tokenize


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize('policy X { role A; duration A 7.5; } # end')
        kinds = [t.kind for t in tokens]
        assert kinds[-1] == "eof"
        assert "number" in kinds
        assert "op" in kinds

    def test_comments_and_whitespace_skipped(self):
        tokens = tokenize("# comment only\n   \n")
        assert [t.kind for t in tokens] == ["eof"]

    def test_line_and_column_tracked(self):
        tokens = tokenize("policy X {\n  role A;\n}")
        role_token = next(t for t in tokens if t.text == "role")
        assert role_token.line == 2
        assert role_token.column == 3

    def test_time_literal(self):
        tokens = tokenize("10:30")
        assert tokens[0].kind == "time"

    def test_string_literal(self):
        tokens = tokenize('"hello world"')
        assert tokens[0].kind == "string"

    def test_unexpected_character(self):
        with pytest.raises(PolicySyntaxError):
            tokenize("policy @ {}")

    def test_dotted_identifiers(self):
        tokens = tokenize("patient.dat")
        assert tokens[0].kind == "word"
        assert tokens[0].text == "patient.dat"


class TestParserBasics:
    def test_minimal_policy(self):
        spec = parse_policy("policy P { }")
        assert spec.name == "P"
        assert spec.roles == {}

    def test_roles_users(self):
        spec = parse_policy("""
        policy P {
          role Programmer max_active_users 5;
          role Clerk;
          user jane max_active_roles 5;
          user bob;
        }""")
        assert spec.roles["Programmer"].max_active_users == 5
        assert spec.roles["Clerk"].max_active_users is None
        assert spec.users["jane"].max_active_roles == 5

    def test_hierarchy_chain(self):
        spec = parse_policy("""
        policy P { role A; role B; role C; hierarchy A > B > C; }""")
        assert spec.hierarchy == [("A", "B"), ("B", "C")]

    def test_sod_sets(self):
        spec = parse_policy("""
        policy P {
          role A; role B; role C;
          ssd s1 roles A, B;
          dsd d1 roles A, B, C cardinality 3;
        }""")
        assert spec.ssd["s1"].roles == frozenset({"A", "B"})
        assert spec.ssd["s1"].cardinality == 2
        assert spec.dsd["d1"].cardinality == 3

    def test_permissions_grants_assignments(self):
        spec = parse_policy("""
        policy P {
          role A; user u;
          permission read on patient.dat;
          grant read on patient.dat to A;
          assign u to A;
        }""")
        assert ("read", "patient.dat") in spec.permissions
        assert ("A", "read", "patient.dat") in spec.grants
        assert ("u", "A") in spec.assignments

    def test_limited_hierarchy_flag(self):
        spec = parse_policy("policy P { limited_hierarchy; }")
        assert spec.hierarchy_limited


class TestParserConstraints:
    def test_cfd_statements(self):
        spec = parse_policy("""
        policy P {
          role Doctor; role Nurse; role SysAdmin; role SysAudit;
          role Manager; role JuniorEmp;
          prerequisite Doctor requires Nurse;
          require SysAudit when enabling SysAdmin;
          transaction JuniorEmp during Manager;
        }""")
        assert spec.prerequisites[0].role == "Doctor"
        assert spec.post_conditions[0].trigger_role == "SysAdmin"
        assert spec.post_conditions[0].required_role == "SysAudit"
        assert spec.transactions[0].anchor_role == "Manager"

    def test_duration_statements(self):
        spec = parse_policy("""
        policy P {
          role R3; user bob;
          duration R3 7200;
          duration R3 3600 for bob;
        }""")
        role_wide, per_user = spec.durations
        assert role_wide.delta == 7200 and role_wide.user is None
        assert per_user.user == "bob" and per_user.delta == 3600

    def test_enable_window(self):
        spec = parse_policy("""
        policy P { role DayDoctor; enable DayDoctor daily 08:00 to 16:00; }
        """)
        window = spec.enabling_windows[0]
        assert window.interval.start_tod == 8 * 3600
        assert window.interval.end_tod == 16 * 3600

    def test_disabling_sod(self):
        spec = parse_policy("""
        policy P {
          role Nurse; role Doctor;
          disabling_sod Coverage roles Nurse, Doctor daily 10:00 to 17:00;
        }""")
        constraint = spec.disabling_sod[0]
        assert constraint.roles == frozenset({"Nurse", "Doctor"})
        assert constraint.interval.start_tod == 10 * 3600

    def test_context_constraint(self):
        spec = parse_policy("""
        policy P {
          role FileUser;
          context FileUser requires network == "secure" for access;
          context FileUser requires clearance >= 3;
        }""")
        access, activate = spec.context_constraints
        assert access.applies_to == "access"
        assert access.op is ContextOp.EQ and access.value == "secure"
        assert activate.applies_to == "activate"
        assert activate.value == 3.0

    def test_privacy_statements(self):
        spec = parse_policy("""
        policy P {
          purpose healthcare;
          purpose treatment under healthcare;
          object_policy read on patient.dat for treatment obliges notify-owner;
        }""")
        assert ("treatment", "healthcare") in spec.purposes
        policy = spec.object_policies[0]
        assert policy.obligations == ("notify-owner",)

    def test_threshold_statement(self):
        spec = parse_policy("""
        policy P {
          role Guard;
          threshold probe event accessDenied group_by user count 5
                    window 60 lock_user deactivate Guard lockout 300;
        }""")
        threshold = spec.threshold_policies[0]
        assert threshold.threshold == 5
        assert threshold.window == 60.0
        assert threshold.lock_users
        assert threshold.deactivate_roles == ("Guard",)
        assert threshold.lockout_duration == 300.0

    def test_threshold_global_grouping(self):
        spec = parse_policy("""
        policy P { threshold t group_by global count 2 window 10; }""")
        assert spec.threshold_policies[0].group_by is None


class TestParserErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("role A;", "policy"),                       # missing header
        ("policy P { role A }", "expected"),         # missing semicolon
        ("policy P { frobnicate A; }", "unknown statement"),
        ("policy P { hierarchy A; }", "senior > junior"),
        ("policy P { role A; } trailing", "unexpected input"),
        ("policy P { role A;", "missing '}'"),
        ("policy P { context R requires v , 3; }", "comparison"),
        ("policy P { threshold t bogus; }", "unknown threshold option"),
    ])
    def test_syntax_errors(self, source, fragment):
        with pytest.raises(PolicySyntaxError) as excinfo:
            parse_policy(source)
        assert fragment.lower() in str(excinfo.value).lower()

    def test_error_carries_location(self):
        with pytest.raises(PolicySyntaxError) as excinfo:
            parse_policy("policy P {\n  bogus_stmt X;\n}")
        assert excinfo.value.line == 2


class TestRoundTrip:
    FULL = """
    policy full {
      limited_hierarchy;
      role A max_active_users 3; role B; role C;
      user u max_active_roles 2; user v;
      hierarchy A > B;
      ssd s roles B, C cardinality 2;
      dsd d roles A, C cardinality 2;
      permission read on obj1;
      grant read on obj1 to A;
      assign u to A;
      prerequisite C requires B;
      require C when enabling A;
      transaction B during A;
      duration A 100 for u;
      enable B daily 08:00 to 16:00;
      disabling_sod cov roles A, C daily 10:00 to 17:00;
      context A requires network == "secure" for access;
      purpose p1; purpose p2 under p1;
      object_policy read on obj1 for p2 obliges notify;
      threshold t event activationDenied group_by role count 3 window 30;
    }
    """

    def test_parse_render_parse_fixpoint(self):
        first = parse_policy(self.FULL)
        rendered = render_policy(first)
        second = parse_policy(rendered)
        assert second.name == first.name
        assert second.roles == first.roles
        assert second.users == first.users
        assert second.hierarchy == first.hierarchy
        assert second.ssd == first.ssd
        assert second.dsd == first.dsd
        assert second.permissions == first.permissions
        assert second.grants == first.grants
        assert second.assignments == first.assignments
        assert second.prerequisites == first.prerequisites
        assert second.post_conditions == first.post_conditions
        assert second.transactions == first.transactions
        assert second.durations == first.durations
        assert second.enabling_windows == first.enabling_windows
        assert second.disabling_sod == first.disabling_sod
        assert second.context_constraints == first.context_constraints
        assert second.purposes == first.purposes
        assert second.object_policies == first.object_policies
        assert second.threshold_policies == first.threshold_policies
        assert second.hierarchy_limited == first.hierarchy_limited
