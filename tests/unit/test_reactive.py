"""Unit tests for reactive objects (Sentinel's event interface)."""

import pytest

from repro.clock import TimerService, VirtualClock
from repro.errors import AccessDenied
from repro.events import EventDetector, ReactiveObject, primitive_event
from repro.events.reactive import NotifiableObject


class FileServer(ReactiveObject):
    """Example reactive object: opening a file raises an event."""

    def __init__(self, detector):
        super().__init__(detector, event_prefix="fs")
        self.opened = []

    @primitive_event()
    def open_file(self, user, filename):
        self.opened.append((user, filename))
        return f"{user}:{filename}"

    @primitive_event(name="vi")
    def edit(self, user, filename="scratch.txt"):
        return "edited"

    def plain_method(self):
        return "no event"


@pytest.fixture
def det():
    return EventDetector(TimerService(VirtualClock()))


class TestReactiveObject:
    def test_events_registered_at_construction(self, det):
        server = FileServer(det)
        assert "fs.open_file" in det
        assert "vi" in det
        assert server.event_names() == ["fs.open_file", "vi"]

    def test_invocation_raises_event_with_bound_args(self, det):
        server = FileServer(det)
        hits = []
        det.subscribe("fs.open_file", hits.append)
        result = server.open_file("Bob", "patient.dat")
        assert result == "Bob:patient.dat"
        assert hits[0].params == {"user": "Bob", "filename": "patient.dat"}

    def test_defaults_are_bound(self, det):
        server = FileServer(det)
        hits = []
        det.subscribe("vi", hits.append)
        server.edit("Bob")
        assert hits[0].params == {"user": "Bob",
                                  "filename": "scratch.txt"}

    def test_event_raised_before_body_so_rules_can_veto(self, det):
        server = FileServer(det)

        def veto(occurrence):
            raise AccessDenied("insufficient privileges")

        det.subscribe("fs.open_file", veto)
        with pytest.raises(AccessDenied):
            server.open_file("Mallory", "patient.dat")
        assert server.opened == []  # method body never ran

    def test_plain_methods_generate_no_events(self, det):
        server = FileServer(det)
        seen = []
        det.subscribe_all(lambda occurrence: seen.append(occurrence.event))
        server.plain_method()
        assert seen == []

    def test_two_instances_share_event_definitions(self, det):
        FileServer(det)
        FileServer(det)  # ensure_primitive keeps this idempotent
        assert "fs.open_file" in det

    def test_default_prefix_is_class_name(self, det):
        class Printer(ReactiveObject):
            @primitive_event()
            def print_doc(self, doc):
                return doc

        printer = Printer(det)
        assert "Printer.print_doc" in det
        hits = []
        det.subscribe("Printer.print_doc", hits.append)
        printer.print_doc("report")
        assert hits[0].params == {"doc": "report"}


class TestNotifiableObject:
    def test_notify_receives_occurrences(self, det):
        det.define_primitive("E1")

        class Recorder(NotifiableObject):
            def __init__(self, detector):
                super().__init__(detector)
                self.seen = []

            def notify(self, occurrence):
                self.seen.append(occurrence.event)

        recorder = Recorder(det)
        recorder.listen_to("E1")
        det.raise_event("E1")
        assert recorder.seen == ["E1"]
