"""Unit tests for static/dynamic separation-of-duty constraints."""

import pytest

from repro.errors import SoDError
from repro.rbac.sod import DsdConstraint, SodRegistry, SsdConstraint


class TestConstraintShapes:
    def test_ssd_violated_at_cardinality(self):
        constraint = SsdConstraint("s", frozenset({"a", "b", "c"}), 2)
        assert not constraint.violated_by({"a"})
        assert constraint.violated_by({"a", "b"})
        assert constraint.violated_by({"a", "b", "c"})
        assert not constraint.violated_by({"x", "y"})

    def test_dsd_n_of_m_semantics(self):
        # paper §2: assigned to M mutually exclusive roles, active in
        # fewer than N at once (2 <= N <= M)
        constraint = DsdConstraint("d", frozenset({"a", "b", "c"}), 3)
        assert not constraint.violated_by({"a", "b"})
        assert constraint.violated_by({"a", "b", "c"})

    @pytest.mark.parametrize("cardinality", [0, 1])
    def test_cardinality_below_two_rejected(self, cardinality):
        with pytest.raises(SoDError):
            SsdConstraint("s", frozenset({"a", "b"}), cardinality)
        with pytest.raises(SoDError):
            DsdConstraint("d", frozenset({"a", "b"}), cardinality)

    def test_cardinality_above_set_size_rejected(self):
        with pytest.raises(SoDError):
            SsdConstraint("s", frozenset({"a", "b"}), 3)


@pytest.fixture
def registry():
    reg = SodRegistry()
    reg.create_ssd("ssd1", {"PC", "AC"}, 2)
    reg.create_dsd("dsd1", {"Teller", "Auditor"}, 2)
    return reg


class TestRegistryAdministration:
    def test_duplicate_names_rejected(self, registry):
        with pytest.raises(SoDError):
            registry.create_ssd("ssd1", {"x", "y"}, 2)
        with pytest.raises(SoDError):
            registry.create_dsd("dsd1", {"x", "y"}, 2)

    def test_delete_unknown_rejected(self, registry):
        with pytest.raises(SoDError):
            registry.delete_ssd("ghost")
        with pytest.raises(SoDError):
            registry.delete_dsd("ghost")

    def test_named_lookup(self, registry):
        assert registry.ssd_named("ssd1").cardinality == 2
        with pytest.raises(SoDError):
            registry.ssd_named("ghost")
        assert registry.dsd_named("dsd1").roles == frozenset(
            {"Teller", "Auditor"})

    def test_replace_ssd(self, registry):
        registry.replace_ssd("ssd1", {"PC", "AC", "PM"}, 3)
        assert registry.ssd_named("ssd1").cardinality == 3

    def test_delete_clears_role_index(self, registry):
        registry.delete_ssd("ssd1")
        assert registry.ssd_ok({"AC"}, "PC")  # no constraint anymore


class TestChecks:
    def test_ssd_ok_boundary(self, registry):
        assert registry.ssd_ok(set(), "PC")
        assert registry.ssd_ok({"PM"}, "PC")
        assert not registry.ssd_ok({"AC"}, "PC")

    def test_ssd_violations_lists_constraints(self, registry):
        violations = registry.ssd_violations({"PC", "AC"})
        assert [v.name for v in violations] == ["ssd1"]
        assert registry.ssd_violations({"PC"}) == []

    def test_dsd_ok_boundary(self, registry):
        assert registry.dsd_ok(set(), "Teller")
        assert not registry.dsd_ok({"Auditor"}, "Teller")

    def test_dsd_violations(self, registry):
        assert [v.name for v in
                registry.dsd_violations({"Teller", "Auditor"})] == ["dsd1"]

    def test_unrelated_role_never_blocked(self, registry):
        assert registry.ssd_ok({"PC", "Teller"}, "Unrelated")

    def test_three_of_five_constraint(self):
        registry = SodRegistry()
        registry.create_dsd("big", {"a", "b", "c", "d", "e"}, 3)
        assert registry.dsd_ok({"a"}, "b")          # 2 of 5: fine
        assert not registry.dsd_ok({"a", "b"}, "c")  # would be 3


class TestRoleRemoval:
    def test_set_shrinks_with_removed_role(self):
        registry = SodRegistry()
        registry.create_ssd("s", {"a", "b", "c"}, 2)
        registry.remove_role("c")
        remaining = registry.ssd_named("s")
        assert remaining.roles == frozenset({"a", "b"})

    def test_constraint_dropped_when_unsatisfiable(self):
        registry = SodRegistry()
        registry.create_ssd("s", {"a", "b"}, 2)
        registry.remove_role("b")
        with pytest.raises(SoDError):
            registry.ssd_named("s")

    def test_dsd_role_removal(self):
        registry = SodRegistry()
        registry.create_dsd("d", {"a", "b", "c"}, 3)
        registry.remove_role("a")
        with pytest.raises(SoDError):
            registry.dsd_named("d")  # 2 roles < cardinality 3: dropped


class TestConsistencyAudit:
    def test_reports_each_user_violation(self):
        registry = SodRegistry()
        registry.create_ssd("s", {"PC", "AC"}, 2)
        authorized = {
            "good": {"PC"},
            "bad": {"PC", "AC"},
        }
        problems = registry.check_consistency(
            lambda user: authorized[user], ["good", "bad"])
        assert len(problems) == 1
        assert "bad" in problems[0]
        assert "s" in problems[0]
