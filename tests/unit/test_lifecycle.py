"""Unit tests for the staged rollout controller: budget arithmetic,
shadow-compare tallies, stage/promote/refuse/rollback transitions and
their persistence artifacts."""

import json
import os

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.config import ConfigSet, PolicyLifecycle, RolloutBudget
from repro.config.lifecycle import ShadowComparator, load_version
from repro.config.loader import ConfigError

BASE = """
policy p {
  role doctor;
  role nurse;
  user alice;
  user bob;
  permission read on chart;
  permission write on chart;
  grant read on chart to nurse;
  grant write on chart to doctor;
  assign alice to doctor;
  assign bob to nurse;
}
"""


def base_spec():
    return parse_policy(BASE)


def candidate_spec(extra_grant=None, drop_grant=None):
    spec = base_spec()
    if extra_grant:
        spec.grants.append(extra_grant)
    if drop_grant:
        spec.grants.remove(drop_grant)
    return spec


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(base_spec())


def serve_some_traffic(engine, sid, count=60, operation="read",
                       obj="chart"):
    for _ in range(count):
        engine.check_access(sid, operation, obj)


class TestRolloutBudget:
    def test_defaults_require_identical_decisions(self):
        budget = RolloutBudget()
        assert budget.max_divergence == 0.0
        assert budget.describe()["min_samples"] == budget.min_samples


class TestShadowComparator:
    def test_interpreted_path_is_indeterminate(self, engine):
        comparator = ShadowComparator(engine, engine.kernel(),
                                      RolloutBudget(), "t")
        comparator.observe("interpreted", "s1", "bob", "read", "chart",
                           True)
        assert comparator.indeterminate == 1
        assert comparator.samples == 0

    def test_missing_session_is_indeterminate(self, engine):
        comparator = ShadowComparator(engine, engine.kernel(),
                                      RolloutBudget(), "t")
        comparator.observe("kernel", "ghost", "bob", "read", "chart",
                           True)
        assert comparator.indeterminate == 1

    def test_divergence_fails_fast_before_min_samples(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "nurse")
        # shadow kernel from a candidate that revoked nurse read
        shadow = ActiveRBACEngine.from_policy(
            candidate_spec(drop_grant=("nurse", "read", "chart")))
        comparator = ShadowComparator(engine, shadow.kernel(),
                                      RolloutBudget(), "t")
        comparator.observe("kernel", sid, "bob", "read", "chart", True)
        assert comparator.divergences == 1
        assert comparator.verdict() == "refuse"
        assert "divergence" in comparator.over_budget()

    def test_matching_samples_promote_after_min(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "nurse")
        shadow = ActiveRBACEngine.from_policy(base_spec())
        comparator = ShadowComparator(engine, shadow.kernel(),
                                      RolloutBudget(min_samples=3), "t")
        for _ in range(2):
            comparator.observe("kernel", sid, "bob", "read", "chart",
                               True)
        assert comparator.verdict() == "insufficient"
        comparator.observe("kernel", sid, "bob", "read", "chart", True)
        assert comparator.verdict() == "promote"
        assert comparator.divergence_rate == 0.0


class TestTransitions:
    def test_adopt_then_stage_monotone(self, engine, tmp_path):
        lifecycle = PolicyLifecycle(engine, state_dir=str(tmp_path))
        lifecycle.adopt(1)
        assert engine.config_version == 1
        with pytest.raises(ConfigError, match="advance"):
            lifecycle.adopt(1)
        config = ConfigSet.from_spec(candidate_spec(), 1)
        with pytest.raises(ConfigError, match="advance"):
            lifecycle.stage(config)

    def test_checksum_tamper_refused_at_stage(self, engine, tmp_path):
        lifecycle = PolicyLifecycle(engine, state_dir=str(tmp_path))
        lifecycle.adopt(1)
        config = ConfigSet.from_spec(candidate_spec(), 2)
        tampered = ConfigSet(version=2, spec=config.spec,
                             source=config.source + "\n",
                             checksum=config.checksum)
        with pytest.raises(ConfigError, match="checksum"):
            lifecycle.stage(tampered)

    def test_double_stage_refused(self, engine, tmp_path):
        lifecycle = PolicyLifecycle(engine, state_dir=str(tmp_path))
        lifecycle.adopt(1)
        lifecycle.stage(ConfigSet.from_spec(candidate_spec(
            extra_grant=("nurse", "write", "chart")), 2))
        with pytest.raises(ConfigError, match="already staged"):
            lifecycle.stage(ConfigSet.from_spec(candidate_spec(), 3))

    def test_clean_canary_auto_promotes(self, engine, tmp_path):
        lifecycle = PolicyLifecycle(
            engine, state_dir=str(tmp_path),
            budget=RolloutBudget(min_samples=5, hold_checks=10))
        lifecycle.adopt(1)
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "nurse")
        config = ConfigSet.from_spec(candidate_spec(
            extra_grant=("doctor", "read", "chart")), 2)
        lifecycle.stage(config)
        assert engine.config_candidate == 2
        assert lifecycle.status()["phase"] == "canary"
        serve_some_traffic(engine, sid, 10)
        transition = lifecycle.poll()
        assert transition is not None and transition["promoted"] == 2
        assert engine.config_version == 2
        assert lifecycle.status()["phase"] == "hold"
        assert ("doctor", "read", "chart") in engine.policy.grants
        # hold passes clean, promotion settles
        serve_some_traffic(engine, sid, 12)
        settled = lifecycle.poll()
        assert settled == {"settled": 2, "hold": settled["hold"]}
        assert lifecycle.status()["phase"] == "idle"
        assert not lifecycle.armed
        assert engine.decision_tap is None

    def test_divergent_canary_refuses_and_live_unchanged(
            self, engine, tmp_path):
        lifecycle = PolicyLifecycle(engine, state_dir=str(tmp_path))
        lifecycle.adopt(1)
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "nurse")
        config = ConfigSet.from_spec(candidate_spec(
            drop_grant=("nurse", "read", "chart")), 2)
        lifecycle.stage(config)
        assert engine.check_access(sid, "read", "chart")  # still live
        transition = lifecycle.poll()
        assert transition is not None and transition["refused"] == 2
        assert "divergence" in transition["reason"]
        assert engine.config_version == 1
        assert engine.check_access(sid, "read", "chart")
        # the refused artifact stays loadable for audit
        assert load_version(str(tmp_path), 2).version == 2
        manifest = json.loads(
            (tmp_path / "configs" / "manifest.json").read_text())
        assert manifest["versions"]["2"]["status"] == "refused"

    def test_note_failure_refuses_canary(self, engine, tmp_path):
        lifecycle = PolicyLifecycle(engine, state_dir=str(tmp_path))
        lifecycle.adopt(1)
        lifecycle.stage(ConfigSet.from_spec(candidate_spec(
            extra_grant=("nurse", "write", "chart")), 2))
        lifecycle.note_failure("breaker")
        transition = lifecycle.poll()
        assert transition["refused"] == 2
        assert transition["reason"] == "failure:breaker"

    def test_forced_promote_past_failing_canary_rolls_back(
            self, engine, tmp_path):
        lifecycle = PolicyLifecycle(
            engine, state_dir=str(tmp_path),
            budget=RolloutBudget(min_samples=5, hold_checks=50))
        lifecycle.adopt(1)
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "nurse")
        config = ConfigSet.from_spec(candidate_spec(
            drop_grant=("nurse", "read", "chart")), 2)
        lifecycle.stage(config)
        report = lifecycle.promote(force=True)
        assert report["promoted"] == 2 and report["forced"]
        assert not engine.check_access(sid, "read", "chart")
        # the hold sees the live answers flip vs the previous kernel
        transition = lifecycle.poll()
        assert transition is not None
        assert transition["rolled_back"] == 2
        assert transition["restored"] == 1
        assert engine.config_version == 1
        assert engine.check_access(sid, "read", "chart")  # restored
        assert engine.config_last_rollback["from_version"] == 2
        assert lifecycle.status()["phase"] == "idle"

    def test_rollback_preserves_unrelated_drift(self, engine, tmp_path):
        lifecycle = PolicyLifecycle(
            engine, state_dir=str(tmp_path),
            budget=RolloutBudget(min_samples=1, hold_checks=5))
        lifecycle.adopt(1)
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "nurse")
        lifecycle.stage(ConfigSet.from_spec(candidate_spec(
            extra_grant=("doctor", "read", "chart")), 2))
        serve_some_traffic(engine, sid, 3)
        lifecycle.promote()
        # concurrent administration OUTSIDE the promote delta
        engine.add_user("carol")
        engine.assign_user("carol", "nurse")
        lifecycle.rollback("operator")
        # the delta is gone, the drift survives
        assert ("doctor", "read", "chart") not in engine.policy.grants
        assert "carol" in engine.model.users
        assert ("carol", "nurse") in engine.policy.assignments

    def test_swap_is_one_epoch_and_kernel_is_fresh(self, engine,
                                                   tmp_path):
        lifecycle = PolicyLifecycle(
            engine, state_dir=str(tmp_path),
            budget=RolloutBudget(min_samples=1, hold_checks=5))
        lifecycle.adopt(1)
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "nurse")
        lifecycle.stage(ConfigSet.from_spec(candidate_spec(
            extra_grant=("doctor", "read", "chart")), 2))
        serve_some_traffic(engine, sid, 3)
        epoch_before = engine.policy_epoch
        report = lifecycle.promote()
        swap = report["swap"]
        assert swap["epoch"] == engine.policy_epoch
        assert swap["kernel_rebuilt"]
        assert swap["pause_ns"] == lifecycle.last_swap_ns > 0
        # the promote applied 1 grant + the swap: epochs moved, but the
        # published kernel matches the final epoch exactly
        assert engine.policy_epoch > epoch_before
        assert engine._kernel.epoch == engine.policy_epoch

    def test_rollback_without_promotion_refused(self, engine):
        lifecycle = PolicyLifecycle(engine)
        with pytest.raises(ConfigError, match="no promotion"):
            lifecycle.rollback("nope")

    def test_persisted_artifacts_round_trip(self, engine, tmp_path):
        lifecycle = PolicyLifecycle(engine, state_dir=str(tmp_path))
        lifecycle.adopt(1)
        lifecycle.stage(ConfigSet.from_spec(candidate_spec(
            extra_grant=("nurse", "write", "chart")), 2))
        stored = load_version(str(tmp_path), 2)
        assert stored.checksum == lifecycle.candidate.checksum
        assert os.path.exists(
            os.path.join(str(tmp_path), "configs", "v1.rbac"))
        with pytest.raises(ConfigError, match="no persisted config"):
            load_version(str(tmp_path), 9)
