"""Unit tests for the audit log."""

import pytest

from repro.clock import VirtualClock
from repro.security.audit import AuditLog


@pytest.fixture
def clock():
    return VirtualClock()


class TestRecording:
    def test_record_carries_time_and_detail(self, clock):
        log = AuditLog(clock)
        clock.advance(5.0)
        entry = log.record("decision.allow", user="bob")
        assert entry.time == 5.0
        assert entry.detail == {"user": "bob"}
        assert len(log) == 1

    def test_capacity_evicts_oldest(self, clock):
        log = AuditLog(clock, capacity=3)
        for i in range(5):
            log.record("k", n=i)
        assert len(log) == 3
        assert [e.detail["n"] for e in log] == [2, 3, 4]
        assert log.dropped == 2

    def test_capacity_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            AuditLog(clock, capacity=0)

    def test_observers_called(self, clock):
        log = AuditLog(clock)
        seen = []
        log.observe(seen.append)
        log.record("security.alert", policy="p")
        assert len(seen) == 1
        assert seen[0].kind == "security.alert"


class TestQueries:
    @pytest.fixture
    def log(self, clock):
        log = AuditLog(clock)
        log.record("decision.allow", user="bob")
        clock.advance(10.0)
        log.record("decision.deny", user="carol")
        log.record("decision.deny", user="bob")
        clock.advance(10.0)
        log.record("admin.assign_user", user="bob", role="PC")
        return log

    def test_by_kind_prefix(self, log):
        assert len(log.by_kind("decision")) == 3
        assert len(log.by_kind("decision.deny")) == 2
        assert len(log.by_kind("admin")) == 1
        # prefix is dotted: "deci" must not match
        assert log.by_kind("deci") == []

    def test_matching_detail(self, log):
        assert len(log.matching(user="bob")) == 3
        assert len(log.matching(user="bob", role="PC")) == 1
        assert log.matching(user="ghost") == []

    def test_since(self, log):
        assert len(log.since(10.0)) == 3
        assert len(log.since(20.0)) == 1

    def test_tail(self, log):
        assert [e.kind for e in log.tail(2)] == [
            "decision.deny", "admin.assign_user"]

    def test_counts_by_kind(self, log):
        counts = log.counts_by_kind()
        assert counts["decision.deny"] == 2
        assert counts["decision.allow"] == 1

    def test_report_renders_counts(self, log):
        report = log.report()
        assert "4 entr(ies)" in report
        assert "decision.deny: 2" in report

    def test_describe_entry(self, log):
        entry = log.tail(1)[0]
        assert "admin.assign_user" in entry.describe()
        assert "role='PC'" in entry.describe()
