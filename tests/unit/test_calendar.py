"""Unit tests for calendar expressions (the paper's hh:mm:ss/mm/dd/yyyy)."""

from datetime import datetime, timezone

import pytest

from repro.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.errors import CalendarExpressionError
from repro.events.calendar import CalendarExpression, parse_time_of_day


class TestParsing:
    def test_paper_daily_ten_am(self):
        expr = CalendarExpression.parse("10:00:00/*/*/*")
        assert expr.hour == 10
        assert expr.minute == 0
        assert expr.second == 0
        assert expr.month is None
        assert expr.day is None
        assert expr.year is None

    def test_bracketed_form_accepted(self):
        expr = CalendarExpression.parse("[17:00:00/*/*/*]")
        assert expr.hour == 17

    def test_fully_pinned_date(self):
        expr = CalendarExpression.parse("09:30:00/02/14/2005")
        assert (expr.month, expr.day, expr.year) == (2, 14, 2005)

    def test_date_part_optional(self):
        expr = CalendarExpression.parse("08:00:00")
        assert expr.month is None and expr.day is None and expr.year is None

    def test_wildcard_hour(self):
        expr = CalendarExpression.parse("*:15:00/*/*/*")
        assert expr.hour is None
        assert expr.minute == 15

    def test_round_trip_str(self):
        text = "10:00:00/*/*/*"
        assert str(CalendarExpression.parse(text)) == text

    @pytest.mark.parametrize("bad", [
        "25:00:00/*/*/*",     # hour out of range
        "10:61:00/*/*/*",     # minute out of range
        "10:00/*/*/*",        # missing seconds
        "10:00:00/13/*/*",    # month out of range
        "10:00:00/*/32/*",    # day out of range
        "10:00:00/*/*/*/*",   # too many fields
        "aa:00:00/*/*/*",     # non-numeric
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(CalendarExpressionError):
            CalendarExpression.parse(bad)


class TestMatching:
    def test_matches_exact_instant(self):
        expr = CalendarExpression.parse("10:00:00/*/*/*")
        assert expr.matches_seconds(10 * SECONDS_PER_HOUR)
        assert not expr.matches_seconds(10 * SECONDS_PER_HOUR + 1)

    def test_matches_every_day(self):
        expr = CalendarExpression.parse("10:00:00/*/*/*")
        for day in range(5):
            instant = day * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
            assert expr.matches_seconds(instant)

    def test_pinned_date_matches_only_that_date(self):
        expr = CalendarExpression.parse("00:00:00/01/02/2005")
        jan_second = SECONDS_PER_DAY  # Jan 2 2005 midnight
        assert expr.matches_seconds(jan_second)
        assert not expr.matches_seconds(2 * SECONDS_PER_DAY)

    def test_matches_datetime_wildcards(self):
        expr = CalendarExpression.parse("*:00:00/*/*/*")
        dt = datetime(2010, 6, 15, 13, 0, 0, tzinfo=timezone.utc)
        assert expr.matches_datetime(dt)


class TestNextAfter:
    def test_next_daily_occurrence_today(self):
        expr = CalendarExpression.parse("10:00:00/*/*/*")
        assert expr.next_after(0.0) == 10 * SECONDS_PER_HOUR

    def test_next_daily_occurrence_rolls_to_tomorrow(self):
        expr = CalendarExpression.parse("10:00:00/*/*/*")
        after = 11 * SECONDS_PER_HOUR
        assert expr.next_after(after) == SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR

    def test_strictly_after(self):
        expr = CalendarExpression.parse("10:00:00/*/*/*")
        at_ten = 10 * SECONDS_PER_HOUR
        assert expr.next_after(at_ten) == SECONDS_PER_DAY + at_ten

    def test_pinned_date_in_past_returns_none(self):
        expr = CalendarExpression.parse("00:00:00/01/01/2005")
        assert expr.next_after(SECONDS_PER_DAY) is None

    def test_pinned_future_date(self):
        expr = CalendarExpression.parse("00:00:00/01/03/2005")
        assert expr.next_after(0.0) == 2 * SECONDS_PER_DAY

    def test_every_minute_pattern(self):
        expr = CalendarExpression.parse("*:*:30/*/*/*")
        assert expr.next_after(0.0) == 30.0
        assert expr.next_after(30.0) == 90.0

    def test_successive_occurrences_are_increasing(self):
        expr = CalendarExpression.parse("06:30:00/*/*/*")
        instant = 0.0
        seen = []
        for _ in range(3):
            instant = expr.next_after(instant)
            seen.append(instant)
        assert seen == sorted(seen)
        assert all(expr.matches_seconds(s) for s in seen)


class TestParseTimeOfDay:
    def test_hh_mm(self):
        assert parse_time_of_day("08:30") == 8 * 3600 + 30 * 60

    def test_hh_mm_ss(self):
        assert parse_time_of_day("23:59:59") == 86399

    @pytest.mark.parametrize("bad", ["8", "25:00", "10:60", "x:y", "10:00:00:00"])
    def test_malformed(self, bad):
        with pytest.raises(CalendarExpressionError):
            parse_time_of_day(bad)
