"""Unit tests for role hierarchies (partial order of seniority)."""

import pytest

from repro.errors import (
    HierarchyCycleError,
    HierarchyError,
    LimitedHierarchyError,
)
from repro.rbac.hierarchy import RoleHierarchy


@pytest.fixture
def xyz():
    """PM > PC > Clerk and AM > AC > Clerk (enterprise XYZ, Figure 1)."""
    hierarchy = RoleHierarchy()
    for role in ("PM", "PC", "AM", "AC", "Clerk"):
        hierarchy.add_role(role)
    hierarchy.add_inheritance("PM", "PC")
    hierarchy.add_inheritance("PC", "Clerk")
    hierarchy.add_inheritance("AM", "AC")
    hierarchy.add_inheritance("AC", "Clerk")
    return hierarchy


class TestEdges:
    def test_immediate_relations(self, xyz):
        assert xyz.immediate_juniors("PM") == {"PC"}
        assert xyz.immediate_seniors("Clerk") == {"PC", "AC"}

    def test_self_loop_rejected(self, xyz):
        with pytest.raises(HierarchyCycleError):
            xyz.add_inheritance("PM", "PM")

    def test_cycle_rejected(self, xyz):
        with pytest.raises(HierarchyCycleError):
            xyz.add_inheritance("Clerk", "PM")

    def test_long_cycle_rejected(self):
        hierarchy = RoleHierarchy()
        for role in "abcd":
            hierarchy.add_role(role)
        hierarchy.add_inheritance("a", "b")
        hierarchy.add_inheritance("b", "c")
        hierarchy.add_inheritance("c", "d")
        with pytest.raises(HierarchyCycleError):
            hierarchy.add_inheritance("d", "a")

    def test_duplicate_edge_rejected(self, xyz):
        with pytest.raises(HierarchyError):
            xyz.add_inheritance("PM", "PC")

    def test_unknown_role_rejected(self, xyz):
        with pytest.raises(HierarchyError):
            xyz.add_inheritance("PM", "ghost")

    def test_delete_inheritance(self, xyz):
        xyz.delete_inheritance("PM", "PC")
        assert "PC" not in xyz.juniors("PM")
        with pytest.raises(HierarchyError):
            xyz.delete_inheritance("PM", "PC")

    def test_delete_requires_immediate_edge(self, xyz):
        # PM >> Clerk holds transitively but is not an immediate edge
        with pytest.raises(HierarchyError):
            xyz.delete_inheritance("PM", "Clerk")

    def test_edges_sorted(self, xyz):
        assert xyz.edges() == [("AC", "Clerk"), ("AM", "AC"),
                               ("PC", "Clerk"), ("PM", "PC")]


class TestClosures:
    def test_juniors_transitive(self, xyz):
        assert xyz.juniors("PM") == {"PC", "Clerk"}
        assert xyz.juniors("Clerk") == set()

    def test_seniors_transitive(self, xyz):
        assert xyz.seniors("Clerk") == {"PC", "PM", "AC", "AM"}
        assert xyz.seniors("PM") == set()

    def test_inclusive_variants(self, xyz):
        assert "PM" in xyz.seniors_inclusive("PM")
        assert "Clerk" in xyz.juniors_inclusive("Clerk")

    def test_is_senior(self, xyz):
        assert xyz.is_senior("PM", "Clerk")
        assert not xyz.is_senior("Clerk", "PM")
        assert not xyz.is_senior("PM", "AM")
        assert not xyz.is_senior("PM", "PM")  # strict

    def test_diamond_shape(self):
        hierarchy = RoleHierarchy()
        for role in ("top", "left", "right", "bottom"):
            hierarchy.add_role(role)
        hierarchy.add_inheritance("top", "left")
        hierarchy.add_inheritance("top", "right")
        hierarchy.add_inheritance("left", "bottom")
        hierarchy.add_inheritance("right", "bottom")
        assert hierarchy.juniors("top") == {"left", "right", "bottom"}
        assert hierarchy.seniors("bottom") == {"left", "right", "top"}


class TestRemoval:
    def test_remove_role_detaches_edges(self, xyz):
        xyz.remove_role("PC")
        assert "PC" not in xyz
        assert xyz.juniors("PM") == set()
        assert "PC" not in xyz.seniors("Clerk")

    def test_removed_role_queries_raise(self, xyz):
        xyz.remove_role("PC")
        with pytest.raises(HierarchyError):
            xyz.juniors("PC")


class TestLimitedHierarchy:
    def test_single_immediate_descendant_enforced(self):
        hierarchy = RoleHierarchy(limited=True)
        for role in ("a", "b", "c"):
            hierarchy.add_role(role)
        hierarchy.add_inheritance("a", "b")
        with pytest.raises(LimitedHierarchyError):
            hierarchy.add_inheritance("a", "c")

    def test_chains_allowed(self):
        hierarchy = RoleHierarchy(limited=True)
        for role in ("a", "b", "c"):
            hierarchy.add_role(role)
        hierarchy.add_inheritance("a", "b")
        hierarchy.add_inheritance("b", "c")
        assert hierarchy.juniors("a") == {"b", "c"}

    def test_multiple_parents_allowed_in_limited_mode(self):
        # limited restricts descendants (inverted tree), not ascendants
        hierarchy = RoleHierarchy(limited=True)
        for role in ("a", "b", "c"):
            hierarchy.add_role(role)
        hierarchy.add_inheritance("a", "c")
        hierarchy.add_inheritance("b", "c")
        assert hierarchy.immediate_seniors("c") == {"a", "b"}
