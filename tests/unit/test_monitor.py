"""Unit tests for the active security monitor (thresholds and reactions)."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.security.monitor import SecurityAlert, ThresholdPolicy

POLICY = """
policy monitored {
  role Guard; role Secret;
  user mallory; user alice;
  assign alice to Guard;
  permission read on vault;
  grant read on vault to Guard;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestThresholdPolicyValidation:
    def test_valid_policy(self):
        policy = ThresholdPolicy(name="p", threshold=3, window=10.0)
        assert "3" in policy.describe()

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(name="p", event="somethingElse")

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(name="p", threshold=0)
        with pytest.raises(ValueError):
            ThresholdPolicy(name="p", window=0.0)

    def test_tags_helper_shape(self):
        frozen = ThresholdPolicy.tags({"kind": "checkAccess"},
                                      {"role:PC": "1"})
        assert frozen == ((("kind", "checkAccess"),), (("role:PC", "1"),))


class TestCounting:
    def test_alert_fires_at_threshold_within_window(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=3, window=60.0, group_by="user"))
        sid = engine.create_session("mallory")
        for _ in range(2):
            assert not engine.check_access(sid, "read", "vault")
        assert engine.monitor.alerts == []
        assert not engine.check_access(sid, "read", "vault")
        assert len(engine.monitor.alerts) == 1
        alert = engine.monitor.alerts[0]
        assert alert.policy == "probe"
        assert alert.group == "mallory"

    def test_denials_outside_window_do_not_accumulate(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=3, window=60.0, group_by="user"))
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        engine.advance_time(61.0)
        engine.check_access(sid, "read", "vault")
        engine.advance_time(61.0)
        engine.check_access(sid, "read", "vault")
        assert engine.monitor.alerts == []

    def test_groups_counted_independently(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=3, window=60.0, group_by="user"))
        mallory = engine.create_session("mallory")
        alice = engine.create_session("alice")
        engine.check_access(mallory, "read", "vault")
        engine.check_access(mallory, "read", "vault")
        engine.check_access(alice, "write", "vault")  # different group
        assert engine.monitor.alerts == []
        assert engine.monitor.window_count("probe", "mallory") == 2
        assert engine.monitor.window_count("probe", "alice") == 1

    def test_window_rearms_after_alert(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=2, window=60.0, group_by="user"))
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        engine.check_access(sid, "read", "vault")
        assert len(engine.monitor.alerts) == 1
        engine.check_access(sid, "read", "vault")
        assert len(engine.monitor.alerts) == 1  # count restarted
        engine.check_access(sid, "read", "vault")
        assert len(engine.monitor.alerts) == 2

    def test_global_grouping(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="any", threshold=2, window=60.0, group_by=None))
        mallory = engine.create_session("mallory")
        alice = engine.create_session("alice")
        engine.check_access(mallory, "read", "vault")
        engine.check_access(alice, "write", "vault")
        assert len(engine.monitor.alerts) == 1


class TestReactions:
    def test_lock_user_reaction(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=2, window=60.0, group_by="user",
            lock_users=True))
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        engine.check_access(sid, "read", "vault")
        assert "mallory" in engine.locked_users
        assert sid not in engine.model.sessions  # sessions destroyed
        # further sessions refused
        from repro.errors import SecurityLockout
        with pytest.raises(SecurityLockout):
            engine.create_session("mallory")

    def test_lockout_expires(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=2, window=60.0, group_by="user",
            lock_users=True, lockout_duration=300.0))
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        engine.check_access(sid, "read", "vault")
        assert "mallory" in engine.locked_users
        engine.advance_time(301.0)
        assert "mallory" not in engine.locked_users
        engine.create_session("mallory")  # allowed again

    def test_disable_rules_reaction_blocks_access(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="shutdown", threshold=2, window=60.0, group_by=None,
            disable_rule_tags=ThresholdPolicy.tags(
                {"kind": "checkAccess"})))
        mallory = engine.create_session("mallory")
        alice = engine.create_session("alice")
        engine.add_active_role(alice, "Guard")
        assert engine.check_access(alice, "read", "vault")
        engine.check_access(mallory, "read", "vault")
        engine.check_access(mallory, "read", "vault")
        # the CA rule is now disabled: the engine fails closed even for
        # the legitimate user ("block access requests")
        assert not engine.check_access(alice, "read", "vault")

    def test_disable_rules_reenabled_after_lockout(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="shutdown", threshold=2, window=60.0, group_by=None,
            disable_rule_tags=ThresholdPolicy.tags({"kind": "checkAccess"}),
            lockout_duration=120.0))
        alice = engine.create_session("alice")
        engine.add_active_role(alice, "Guard")
        mallory = engine.create_session("mallory")
        engine.check_access(mallory, "read", "vault")
        engine.check_access(mallory, "read", "vault")
        assert not engine.check_access(alice, "read", "vault")
        engine.advance_time(121.0)
        assert engine.check_access(alice, "read", "vault")

    def test_deactivate_roles_reaction(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="evict", threshold=2, window=60.0, group_by=None,
            deactivate_roles=("Guard",)))
        alice = engine.create_session("alice")
        engine.add_active_role(alice, "Guard")
        mallory = engine.create_session("mallory")
        engine.check_access(mallory, "read", "vault")
        engine.check_access(mallory, "read", "vault")
        assert "Guard" not in engine.model.session_roles(alice)

    def test_admin_channel_notified(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=1, window=60.0, group_by="user"))
        notified: list[SecurityAlert] = []
        engine.monitor.notify_admins(notified.append)
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        assert len(notified) == 1
        assert notified[0].policy == "probe"

    def test_alert_raises_security_event_for_further_rules(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=1, window=60.0, group_by="user"))
        seen = []
        engine.detector.subscribe("securityAlert",
                                  lambda occurrence: seen.append(
                                      occurrence.get("policy")))
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        assert seen == ["probe"]

    def test_alert_recorded_in_audit(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="probe", threshold=1, window=60.0, group_by="user"))
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        alerts = engine.audit.by_kind("security.alert")
        assert len(alerts) == 1
        assert alerts[0].detail["policy"] == "probe"

    def test_activation_denials_counted_separately(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="act", event="activationDenied", threshold=2,
            window=60.0, group_by="user"))
        sid = engine.create_session("mallory")
        from repro.errors import ActivationDenied
        for _ in range(2):
            with pytest.raises(ActivationDenied):
                engine.add_active_role(sid, "Secret")
        assert len(engine.monitor.alerts) == 1


class TestGroupingDimensions:
    def test_group_by_object(self, engine):
        """Paper §1: 'access requests ... for some files' — the counter
        can key on the object parameter."""
        engine.monitor.add_policy(ThresholdPolicy(
            name="hotfile", threshold=2, window=60.0, group_by="object"))
        mallory = engine.create_session("mallory")
        alice = engine.create_session("alice")
        # two different users probing the same object trip the alert
        engine.check_access(mallory, "read", "vault")
        engine.check_access(alice, "write", "vault")
        assert len(engine.monitor.alerts) == 1
        assert engine.monitor.alerts[0].group == "vault"

    def test_group_by_role_on_activation_denials(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="hotrole", event="activationDenied", threshold=2,
            window=60.0, group_by="role"))
        from repro.errors import ActivationDenied
        mallory = engine.create_session("mallory")
        alice = engine.create_session("alice")
        for sid in (mallory, alice):
            with pytest.raises(ActivationDenied):
                engine.add_active_role(sid, "Secret")
        assert len(engine.monitor.alerts) == 1
        assert engine.monitor.alerts[0].group == "Secret"

    def test_missing_group_parameter_counts_as_none_group(self, engine):
        engine.monitor.add_policy(ThresholdPolicy(
            name="odd", threshold=1, window=60.0,
            group_by="nonexistent_param"))
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "vault")
        assert engine.monitor.alerts[0].group is None
