"""Unit tests for the write-ahead log: record format, torn tails,
group commit, rotation, the Durability manager and recovery."""

import json
import os

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.wal import (
    Durability,
    WriteAheadLog,
    decode_line,
    encode_record,
    read_wal,
    recover,
)

POLICY = """
policy durable {
  role A; role B; role Timed;
  user bob; user carol;
  assign bob to A; assign bob to Timed;
  assign carol to B;
  permission read on doc;
  grant read on doc to A;
  duration Timed 1000;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


@pytest.fixture
def durable(engine, tmp_path):
    durability = Durability(engine, str(tmp_path), batch_size=1)
    yield engine, durability, str(tmp_path)
    durability.close()


class TestRecordFormat:
    def test_round_trip(self):
        record = {"lsn": 7, "t": 1.5, "op": "session.create",
                  "data": {"id": "s1", "user": "bob", "seq": 2}}
        assert decode_line(encode_record(record)) == record

    def test_missing_newline_is_torn(self):
        line = encode_record({"lsn": 1, "t": 0.0, "op": "x", "data": {}})
        assert decode_line(line[:-1]) is None

    def test_bad_crc_rejected(self):
        line = bytearray(encode_record(
            {"lsn": 1, "t": 0.0, "op": "x", "data": {}}))
        line[-2] ^= 0xFF  # flip a payload byte, CRC now wrong
        assert decode_line(bytes(line)) is None

    def test_bad_json_and_bad_lsn_rejected(self):
        import zlib
        payload = b"not json"
        assert decode_line(
            b"%08x %s\n" % (zlib.crc32(payload), payload)) is None
        payload = json.dumps({"lsn": "seven"}).encode()
        assert decode_line(
            b"%08x %s\n" % (zlib.crc32(payload), payload)) is None


class TestReadWal:
    def _write(self, path, records, tail=b""):
        with open(path, "wb") as handle:
            for record in records:
                handle.write(encode_record(record))
            handle.write(tail)

    def test_reads_valid_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wanted = [{"lsn": i, "t": 0.0, "op": "x", "data": {}}
                  for i in (1, 2, 3)]
        self._write(path, wanted)
        records, report = read_wal(path)
        assert records == wanted
        assert not report["torn"]

    def test_missing_file_is_empty(self, tmp_path):
        records, report = read_wal(str(tmp_path / "absent.log"))
        assert records == [] and not report["torn"]

    def test_torn_tail_detected_and_truncated(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wanted = [{"lsn": 1, "t": 0.0, "op": "x", "data": {}}]
        self._write(path, wanted, tail=b"deadbeef {half a rec")
        records, report = read_wal(path, repair=True)
        assert records == wanted
        assert report["torn"] and report["dropped_bytes"] == 20
        # the repair is durable: a second read finds a clean file
        _, report2 = read_wal(path)
        assert not report2["torn"]
        assert os.path.getsize(path) == report["valid_bytes"]

    def test_non_monotone_lsn_stops_reading(self, tmp_path):
        path = str(tmp_path / "wal.log")
        self._write(path, [
            {"lsn": 1, "t": 0.0, "op": "x", "data": {}},
            {"lsn": 1, "t": 0.0, "op": "y", "data": {}},  # replayed lsn
            {"lsn": 2, "t": 0.0, "op": "z", "data": {}},
        ])
        records, report = read_wal(path)
        assert [r["op"] for r in records] == ["x"]
        assert report["torn"]

    def test_corruption_mid_file_drops_the_rest(self, tmp_path):
        path = str(tmp_path / "wal.log")
        good = encode_record({"lsn": 1, "t": 0.0, "op": "x", "data": {}})
        also_good = encode_record(
            {"lsn": 2, "t": 0.0, "op": "y", "data": {}})
        with open(path, "wb") as handle:
            handle.write(good + b"garbage line\n" + also_good)
        records, _ = read_wal(path)
        # the record *after* the corruption is unreachable: lsn order
        # can no longer be trusted past the first bad byte
        assert [r["lsn"] for r in records] == [1]


class TestWriteAheadLog:
    def test_group_commit_batches_fsyncs(self, tmp_path):
        log = WriteAheadLog(str(tmp_path / "wal.log"), batch_size=3)
        for i in range(7):
            log.append("x", {"i": i}, 0.0)
        assert log.append_count == 7
        assert log.fsync_count == 2  # two full batches, one pending
        log.close()
        assert log.fsync_count == 3  # close drains the tail

    def test_reopen_adopts_existing_lsn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path, batch_size=1)
        log.append("x", {}, 0.0)
        log.append("x", {}, 0.0)
        log.close()
        reopened = WriteAheadLog(path, batch_size=1)
        assert reopened.last_lsn == 2
        record = reopened.append("x", {}, 0.0)
        assert record["lsn"] == 3
        reopened.close()

    def test_rotation_truncates_but_keeps_lsn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path, batch_size=1)
        log.append("x", {}, 0.0)
        log.rotate()
        assert os.path.getsize(path) == 0
        assert log.append("x", {}, 0.0)["lsn"] == 2
        log.close()


class TestDurability:
    def test_attaches_and_logs_commits(self, durable):
        engine, durability, _ = durable
        assert engine.wal is durability
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        engine.lock_user("carol")
        records, _ = read_wal(durability.wal_path)
        assert [r["op"] for r in records] == \
               ["session.create", "activation.add", "user.lock"]

    def test_context_updates_logged(self, durable):
        engine, durability, _ = durable
        engine.context.set("site", "hq")
        records, _ = read_wal(durability.wal_path)
        assert records[-1]["data"] == {"key": "site", "value": "hq"}

    def test_policy_change_logs_epoch(self, durable):
        engine, durability, _ = durable
        engine.add_user("dave")
        records, _ = read_wal(durability.wal_path)
        assert records[-1]["op"] == "policy.epoch"
        assert "user dave" in records[-1]["data"]["policy"]

    def test_checkpoint_rotates_and_stamps_lsn(self, durable):
        engine, durability, _ = durable
        engine.create_session("bob")
        lsn = durability.wal.last_lsn
        durability.checkpoint()
        with open(durability.snapshot_path) as handle:
            snap = json.load(handle)
        assert snap["wal"]["lsn"] == lsn
        records, _ = read_wal(durability.wal_path)
        assert records == []

    def test_auto_checkpoint_bounds_wal_growth(self, engine, tmp_path):
        durability = Durability(engine, str(tmp_path), batch_size=1,
                                auto_checkpoint=3)
        for i in range(8):
            engine.context.set("k", i)
        records, _ = read_wal(durability.wal_path)
        assert len(records) < 8
        assert durability.wal.rotation_count > 1  # init + auto
        durability.close()

    def test_close_detaches(self, engine, tmp_path):
        durability = Durability(engine, str(tmp_path))
        durability.close()
        assert engine.wal is None
        assert engine.context.on_set is None
        engine.create_session("bob")  # no crash: logging is off

    def test_obs_counters(self, durable):
        engine, durability, _ = durable
        engine.create_session("bob")
        stats = {name: series._value for name, series in
                 [("appends", engine.obs.wal_appends.labels(
                     "session.create"))]}
        assert stats["appends"] == 1
        assert engine.obs.wal_fsyncs._value >= 1  # batch_size=1
        assert engine.obs.wal_rotations._value >= 1  # init checkpoint


class TestRecover:
    def test_replays_tail_past_snapshot(self, durable):
        engine, durability, directory = durable
        engine.create_session("bob", session_id="s_ck")
        durability.checkpoint()
        sid = engine.create_session("bob", session_id="s_tail")
        engine.add_active_role(sid, "A")
        revived, report = recover(directory)
        assert report["skipped"] == 0  # rotation removed covered records
        assert report["replayed"] >= 2
        assert set(revived.model.sessions) == {"s_ck", "s_tail"}
        assert revived.model.session_roles("s_tail") == {"A"}
        assert revived.check_access("s_tail", "read", "doc")
        assert revived.audit.by_kind("wal.recover")

    def test_stale_records_skipped_by_lsn(self, durable):
        engine, durability, directory = durable
        engine.create_session("bob", session_id="s1")
        # simulate a crash between snapshot write and rotation: keep a
        # copy of the covered records, checkpoint, then splice the old
        # records back in front of the (empty) rotated log
        with open(durability.wal_path, "rb") as handle:
            stale = handle.read()
        durability.checkpoint()
        durability.wal.close()
        with open(durability.wal_path, "wb") as handle:
            handle.write(stale)
        revived, report = recover(directory)
        assert report["skipped"] > 0 and report["replayed"] == 0
        assert set(revived.model.sessions) == {"s1"}

    def test_counters_resume_monotone(self, durable):
        engine, durability, directory = durable
        engine.create_session("bob")  # consumes s1
        high_water = engine._session_seq.peek
        revived, _ = recover(directory)
        assert revived._session_seq.peek >= high_water
        fresh = revived.create_session("carol")
        assert fresh not in revived.audit.by_kind("nothing") and \
            fresh != "s1"

    def test_quarantine_survives_recovery(self, durable):
        engine, durability, directory = durable
        victim = next(iter(engine.rules)).name
        engine.rules.quarantine(victim, reason="test")
        revived, _ = recover(directory)
        assert revived.rules.get(victim).quarantined
        assert not revived.rules.get(victim).enabled

    def test_rearm_survives_recovery(self, durable):
        engine, durability, directory = durable
        victim = next(iter(engine.rules)).name
        engine.rules.quarantine(victim, reason="test")
        engine.rules.rearm(victim)
        revived, _ = recover(directory)
        assert not revived.rules.get(victim).quarantined

    def test_clock_advances_replayed(self, durable):
        engine, durability, directory = durable
        engine.advance_time(123.0)
        revived, _ = recover(directory)
        assert revived.clock.now == 123.0

    def test_duration_countdown_owed_after_recovery(self, durable):
        engine, durability, directory = durable
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Timed")
        engine.advance_time(400.0)
        revived, _ = recover(directory)
        revived.advance_time(599.0)
        assert "Timed" in revived.model.session_roles(sid)
        revived.advance_time(1.0)
        assert "Timed" not in revived.model.session_roles(sid)

    def test_torn_tail_truncated_not_replayed(self, durable):
        engine, durability, directory = durable
        engine.create_session("bob", session_id="s_good")
        durability.wal.sync()
        with open(durability.wal_path, "ab") as handle:
            handle.write(b"00000000 {\"lsn\": torn")
        revived, report = recover(directory)
        assert report["torn"] and report["dropped_bytes"] > 0
        assert set(revived.model.sessions) == {"s_good"}
        assert revived.obs.wal_torn_tails._value == 1

    def test_unknown_op_fails_loudly(self, durable):
        engine, durability, directory = durable
        durability.wal.append("future.op", {}, 0.0)
        durability.wal.sync()
        with pytest.raises(ValueError, match="unknown op"):
            recover(directory)

    def test_policy_epoch_replay_swaps_policy(self, durable):
        engine, durability, directory = durable
        engine.add_user("dave")
        engine.assign_user("dave", "B")
        revived, _ = recover(directory)
        assert "dave" in revived.model.users
        assert revived.policy_epoch == engine.policy_epoch
        sid = revived.create_session("dave")
        revived.add_active_role(sid, "B")
        assert revived.model.session_roles(sid) == {"B"}
