"""Unit tests for synthetic workload generators."""

import pytest

from repro.policy.validator import validate_policy
from repro.workloads import (
    EnterpriseShape,
    fleet_shard_name,
    generate_enterprise,
    generate_fleet,
    generate_request_stream,
    generate_service_plan,
)


class TestShapes:
    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            EnterpriseShape(roles=0)
        with pytest.raises(ValueError):
            EnterpriseShape(tree_depth=0)
        with pytest.raises(ValueError):
            EnterpriseShape(role_cardinality_fraction=1.5)


class TestEnterpriseGeneration:
    def test_deterministic_in_seed(self):
        shape = EnterpriseShape(roles=30, users=20, seed=3)
        first = generate_enterprise(shape)
        second = generate_enterprise(shape)
        assert first.hierarchy == second.hierarchy
        assert first.assignments == second.assignments
        assert first.grants == second.grants

    def test_different_seeds_differ(self):
        one = generate_enterprise(EnterpriseShape(roles=30, users=20, seed=1))
        two = generate_enterprise(EnterpriseShape(roles=30, users=20, seed=2))
        assert one.assignments != two.assignments

    def test_generated_policy_validates(self):
        spec = generate_enterprise(EnterpriseShape(roles=50, users=40))
        assert validate_policy(spec) == []

    def test_counts_match_shape(self):
        shape = EnterpriseShape(roles=25, users=10, ssd_sets=2, dsd_sets=1)
        spec = generate_enterprise(shape)
        assert len(spec.roles) == 25
        assert len(spec.users) == 10
        assert len(spec.ssd) <= 2
        assert len(spec.dsd) <= 1

    def test_hierarchy_is_forest_of_bounded_depth(self):
        shape = EnterpriseShape(roles=40, tree_fanout=3, tree_depth=3)
        spec = generate_enterprise(shape)
        children_of = {}
        for senior, junior in spec.hierarchy:
            children_of.setdefault(senior, []).append(junior)
        parents = {}
        for senior, junior in spec.hierarchy:
            assert junior not in parents, "forest: single parent each"
            parents[junior] = senior

        def depth(role):
            d = 1
            while role in parents:
                role = parents[role]
                d += 1
            return d

        assert all(depth(role) <= 3 for role in spec.roles)

    def test_assignments_respect_ssd(self):
        spec = generate_enterprise(EnterpriseShape(
            roles=40, users=60, ssd_sets=3, seed=5))
        per_user = {}
        for user, role in spec.assignments:
            per_user.setdefault(user, set()).add(role)
        for sod in spec.ssd.values():
            for roles in per_user.values():
                assert len(roles & sod.roles) < sod.cardinality

    def test_role_cardinality_fraction(self):
        spec = generate_enterprise(EnterpriseShape(
            roles=50, users=10, role_cardinality_fraction=1.0))
        assert all(role.max_active_users is not None
                   for role in spec.roles.values())


class TestRequestStream:
    def test_deterministic(self):
        spec = generate_enterprise(EnterpriseShape(roles=10, users=5))
        first = list(generate_request_stream(spec, 50, seed=9))
        second = list(generate_request_stream(spec, 50, seed=9))
        assert first == second

    def test_length_and_kinds(self):
        spec = generate_enterprise(EnterpriseShape(roles=10, users=5))
        stream = list(generate_request_stream(spec, 200, seed=1))
        assert len(stream) == 200
        kinds = {request.kind for request in stream}
        assert kinds <= {"create_session", "activate", "check"}
        assert "check" in kinds  # dominant mix component

    def test_requests_reference_spec_entities(self):
        spec = generate_enterprise(EnterpriseShape(roles=10, users=5))
        for request in generate_request_stream(spec, 100):
            assert request.user in spec.users
            if request.kind == "activate":
                assert request.role in spec.roles
            if request.kind == "check":
                assert (request.operation, request.obj) in spec.permissions


class TestFleet:
    def test_population_split_and_naming(self):
        fleet = generate_fleet(shards=2, users=100, roles=10, seed=7)
        assert sorted(fleet) == [fleet_shard_name(0), fleet_shard_name(1)]
        assert sum(len(spec.users) for spec in fleet.values()) >= 100
        # shards are distinct tenants: differently-seeded enterprises
        assert (fleet["shard00"].grants != fleet["shard01"].grants)

    def test_deterministic_in_seed(self):
        first = generate_fleet(shards=2, users=40, roles=10, seed=3)
        second = generate_fleet(shards=2, users=40, roles=10, seed=3)
        assert first["shard00"].grants == second["shard00"].grants
        assert first["shard01"].assignments == second["shard01"].assignments

    def test_needs_a_shard(self):
        with pytest.raises(ValueError):
            generate_fleet(shards=0)


class TestServicePlan:
    @pytest.fixture
    def fleet(self):
        return generate_fleet(shards=2, users=40, roles=10, seed=7)

    def test_deterministic(self, fleet):
        first = generate_service_plan(fleet, 100, seed=23)
        second = generate_service_plan(fleet, 100, seed=23)
        assert first == second

    def test_kinds_and_length(self, fleet):
        plan = generate_service_plan(fleet, 300, seed=23, admin_every=25)
        assert len(plan) == 300
        kinds = {op.kind for op in plan}
        assert kinds <= {"check", "check_batch", "explain", "metrics",
                         "health", "admin"}
        assert "check" in kinds and "admin" in kinds

    def test_users_are_shard_qualified(self, fleet):
        plan = generate_service_plan(fleet, 200, seed=23)
        shard_names = set(fleet)
        for op in plan:
            if op.kind in ("check", "explain"):
                user, _, home = op.payload["user"].partition("@")
                assert home in shard_names
                assert user in fleet[home].users

    def test_single_shard_uses_bare_names(self):
        fleet = generate_fleet(shards=1, users=20, roles=10, seed=7)
        plan = generate_service_plan(fleet, 50, seed=23)
        for op in plan:
            if op.kind == "check":
                assert "@" not in op.payload["user"]

    def test_admin_ops_are_fresh_grants(self, fleet):
        plan = generate_service_plan(fleet, 200, seed=23, admin_every=10)
        admins = [op for op in plan if op.kind == "admin"]
        assert len(admins) == 20
        seen = set()
        for op in admins:
            args = op.payload["args"]
            shard = op.payload["domain"]
            spec = fleet[shard]
            triple = (args["role"], args["operation"], args["object"])
            # never an existing grant, never repeated: replay order
            # cannot double-grant no matter how workers interleave
            assert triple not in spec.grants
            assert (shard, triple) not in seen
            seen.add((shard, triple))
            assert args["role"] in spec.roles
            assert (args["operation"], args["object"]) in spec.permissions
            assert op.payload["op"] == "grant"

    def test_batch_ops_carry_batches(self, fleet):
        plan = generate_service_plan(fleet, 400, seed=23, batch_size=5)
        batches = [op for op in plan if op.kind == "check_batch"]
        assert batches
        for op in batches:
            assert len(op.payload["checks"]) == 5

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            generate_service_plan({}, 10)
