"""Unit tests for synthetic workload generators."""

import pytest

from repro.policy.validator import validate_policy
from repro.workloads import (
    EnterpriseShape,
    generate_enterprise,
    generate_request_stream,
)


class TestShapes:
    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            EnterpriseShape(roles=0)
        with pytest.raises(ValueError):
            EnterpriseShape(tree_depth=0)
        with pytest.raises(ValueError):
            EnterpriseShape(role_cardinality_fraction=1.5)


class TestEnterpriseGeneration:
    def test_deterministic_in_seed(self):
        shape = EnterpriseShape(roles=30, users=20, seed=3)
        first = generate_enterprise(shape)
        second = generate_enterprise(shape)
        assert first.hierarchy == second.hierarchy
        assert first.assignments == second.assignments
        assert first.grants == second.grants

    def test_different_seeds_differ(self):
        one = generate_enterprise(EnterpriseShape(roles=30, users=20, seed=1))
        two = generate_enterprise(EnterpriseShape(roles=30, users=20, seed=2))
        assert one.assignments != two.assignments

    def test_generated_policy_validates(self):
        spec = generate_enterprise(EnterpriseShape(roles=50, users=40))
        assert validate_policy(spec) == []

    def test_counts_match_shape(self):
        shape = EnterpriseShape(roles=25, users=10, ssd_sets=2, dsd_sets=1)
        spec = generate_enterprise(shape)
        assert len(spec.roles) == 25
        assert len(spec.users) == 10
        assert len(spec.ssd) <= 2
        assert len(spec.dsd) <= 1

    def test_hierarchy_is_forest_of_bounded_depth(self):
        shape = EnterpriseShape(roles=40, tree_fanout=3, tree_depth=3)
        spec = generate_enterprise(shape)
        children_of = {}
        for senior, junior in spec.hierarchy:
            children_of.setdefault(senior, []).append(junior)
        parents = {}
        for senior, junior in spec.hierarchy:
            assert junior not in parents, "forest: single parent each"
            parents[junior] = senior

        def depth(role):
            d = 1
            while role in parents:
                role = parents[role]
                d += 1
            return d

        assert all(depth(role) <= 3 for role in spec.roles)

    def test_assignments_respect_ssd(self):
        spec = generate_enterprise(EnterpriseShape(
            roles=40, users=60, ssd_sets=3, seed=5))
        per_user = {}
        for user, role in spec.assignments:
            per_user.setdefault(user, set()).add(role)
        for sod in spec.ssd.values():
            for roles in per_user.values():
                assert len(roles & sod.roles) < sod.cardinality

    def test_role_cardinality_fraction(self):
        spec = generate_enterprise(EnterpriseShape(
            roles=50, users=10, role_cardinality_fraction=1.0))
        assert all(role.max_active_users is not None
                   for role in spec.roles.values())


class TestRequestStream:
    def test_deterministic(self):
        spec = generate_enterprise(EnterpriseShape(roles=10, users=5))
        first = list(generate_request_stream(spec, 50, seed=9))
        second = list(generate_request_stream(spec, 50, seed=9))
        assert first == second

    def test_length_and_kinds(self):
        spec = generate_enterprise(EnterpriseShape(roles=10, users=5))
        stream = list(generate_request_stream(spec, 200, seed=1))
        assert len(stream) == 200
        kinds = {request.kind for request in stream}
        assert kinds <= {"create_session", "activate", "check"}
        assert "check" in kinds  # dominant mix component

    def test_requests_reference_spec_entities(self):
        spec = generate_enterprise(EnterpriseShape(roles=10, users=5))
        for request in generate_request_stream(spec, 100):
            assert request.user in spec.users
            if request.kind == "activate":
                assert request.role in spec.roles
            if request.kind == "check":
                assert (request.operation, request.obj) in spec.permissions
