"""Unit tests for the ANSI review functions and rule-condition predicates."""

import pytest

from repro.rbac.model import Permission, RBACModel


@pytest.fixture
def model():
    """Enterprise XYZ shape with assignments and one session."""
    m = RBACModel()
    for user in ("bob", "carol", "dave"):
        m.add_user(user)
    for role in ("PM", "PC", "AM", "AC", "Clerk"):
        m.add_role(role)
    m.add_inheritance("PM", "PC")
    m.add_inheritance("PC", "Clerk")
    m.add_inheritance("AM", "AC")
    m.add_inheritance("AC", "Clerk")
    m.add_permission("create", "purchase_order")
    m.add_permission("approve", "purchase_order")
    m.add_permission("read", "ledger")
    m.grant_permission("PC", "create", "purchase_order")
    m.grant_permission("AC", "approve", "purchase_order")
    m.grant_permission("Clerk", "read", "ledger")
    m.assign_user("bob", "PM")
    m.assign_user("carol", "AC")
    m.assign_user("dave", "Clerk")
    m.create_session_record("s1", "bob")
    m.add_session_role_record("s1", "PM")
    return m


class TestReviewFunctions:
    def test_assigned_users(self, model):
        assert model.assigned_users("PM") == {"bob"}
        assert model.assigned_users("Clerk") == {"dave"}

    def test_authorized_users_includes_seniors_members(self, model):
        # junior roles acquire the user membership of their seniors
        assert model.authorized_users("Clerk") == {"bob", "carol", "dave"}
        assert model.authorized_users("PC") == {"bob"}
        assert model.authorized_users("AM") == set()

    def test_assigned_roles(self, model):
        assert model.assigned_roles("bob") == {"PM"}

    def test_authorized_roles_includes_juniors(self, model):
        assert model.authorized_roles("bob") == {"PM", "PC", "Clerk"}
        assert model.authorized_roles("dave") == {"Clerk"}

    def test_user_permissions_via_hierarchy(self, model):
        perms = model.user_permissions("bob")
        assert Permission("create", "purchase_order") in perms
        assert Permission("read", "ledger") in perms
        assert Permission("approve", "purchase_order") not in perms

    def test_session_permissions_from_active_roles(self, model):
        perms = model.session_permissions("s1")
        assert Permission("create", "purchase_order") in perms
        assert Permission("read", "ledger") in perms

    def test_session_permissions_empty_when_no_roles(self, model):
        model.create_session_record("s2", "carol")
        assert model.session_permissions("s2") == set()

    def test_user_sessions(self, model):
        assert model.user_sessions("bob") == {"s1"}
        assert model.user_sessions("carol") == set()

    def test_role_operations_on_object(self, model):
        assert model.role_operations_on_object("PM", "purchase_order") == \
            {"create"}
        assert model.role_operations_on_object("PM", "ledger") == {"read"}
        assert model.role_operations_on_object("AC", "purchase_order") == \
            {"approve"}

    def test_user_operations_on_object(self, model):
        assert model.user_operations_on_object("carol", "purchase_order") \
            == {"approve"}
        assert model.user_operations_on_object("dave", "purchase_order") \
            == set()


class TestRulePredicates:
    def test_is_authorized_via_senior_assignment(self, model):
        assert model.is_authorized("bob", "PC")
        assert model.is_authorized("bob", "PM")
        assert not model.is_authorized("bob", "AC")
        assert not model.is_authorized("dave", "PC")

    def test_is_assigned_is_direct_only(self, model):
        assert model.is_assigned("bob", "PM")
        assert not model.is_assigned("bob", "PC")

    def test_role_has_permission_hierarchical(self, model):
        assert model.role_has_permission("PM", "create", "purchase_order")
        assert model.role_has_permission("PM", "read", "ledger")
        assert not model.role_has_permission("PM", "approve",
                                             "purchase_order")

    def test_session_can_perform(self, model):
        assert model.session_can_perform("s1", "create", "purchase_order")
        assert not model.session_can_perform("s1", "approve",
                                             "purchase_order")
        assert not model.session_can_perform("ghost", "read", "ledger")

    def test_dsd_allows_activation(self, model):
        model.create_dsd_set("d", {"PM", "AM"}, 2)
        assert model.dsd_allows_activation("s1", "PC")
        assert not model.dsd_allows_activation("s1", "AM")
        assert not model.dsd_allows_activation("ghost", "PC")

    def test_is_user_is_session(self, model):
        assert model.is_user("bob") and not model.is_user("ghost")
        assert model.is_session("s1") and not model.is_session("ghost")

    def test_is_active_in_session(self, model):
        assert model.is_active_in_session("s1", "PM")
        assert not model.is_active_in_session("s1", "PC")
        assert not model.is_active_in_session("ghost", "PM")


class TestAdvancedPermissionReview:
    def test_roles_with_permission_includes_seniors(self, model):
        roles = model.roles_with_permission("create", "purchase_order")
        assert roles == {"PC", "PM"}

    def test_roles_with_permission_bottom_grant(self, model):
        roles = model.roles_with_permission("read", "ledger")
        assert roles == {"Clerk", "PC", "PM", "AC", "AM"}

    def test_roles_with_unknown_permission_empty(self, model):
        assert model.roles_with_permission("fly", "moon") == set()

    def test_users_with_permission(self, model):
        users = model.users_with_permission("create", "purchase_order")
        assert users == {"bob"}
        everyone = model.users_with_permission("read", "ledger")
        assert everyone == {"bob", "carol", "dave"}
