"""Unit tests: operator x consumption-mode matrix and edge cases.

The main operator tests cover RECENT (the default); this module pins
the semantics of SEQUENCE and AND under every context, plus edge cases
(zero-delta PLUS, reopened PERIODIC windows, NOT under chronicle,
interval nesting).
"""

import pytest

from repro.clock import TimerService, VirtualClock
from repro.events import ConsumptionMode, EventDetector


@pytest.fixture
def det():
    detector = EventDetector(TimerService(VirtualClock()))
    for name in ("E1", "E2", "E3"):
        detector.define_primitive(name)
    return detector


def collect(det, name):
    hits = []
    det.subscribe(name, hits.append)
    return hits


def play(det, *names):
    for name in names:
        det.raise_event(name)


class TestSequenceModeMatrix:
    STREAM = ("E1", "E1", "E2", "E2")  # two initiators, two terminators

    def run(self, det, mode):
        det.define_sequence("S", "E1", "E2", mode=mode)
        hits = collect(det, "S")
        play(det, *self.STREAM)
        return hits

    def test_recent(self, det):
        # most recent E1 pairs with each E2: 2 detections, both with
        # the second E1
        hits = self.run(det, "recent")
        assert len(hits) == 2
        starts = {occurrence.constituents[0].start for occurrence in hits}
        assert len(starts) == 1  # always the same (latest) initiator

    def test_chronicle(self, det):
        # FIFO pairing: (E1a,E2a), (E1b,E2b)
        hits = self.run(det, "chronicle")
        assert len(hits) == 2
        first, second = hits
        assert first.constituents[0].end < second.constituents[0].end

    def test_continuous(self, det):
        # first E2 pairs with both open initiators and consumes them;
        # second E2 finds nothing
        hits = self.run(det, "continuous")
        assert len(hits) == 2

    def test_cumulative(self, det):
        # first E2 folds both initiators into one detection
        hits = self.run(det, "cumulative")
        assert len(hits) == 1
        assert len(hits[0].constituents) == 3  # two E1s + the E2

    def test_unrestricted(self, det):
        # every E2 pairs with every earlier E1: 2 + 2
        hits = self.run(det, "unrestricted")
        assert len(hits) == 4


class TestAndModeMatrix:
    def test_chronicle_balanced(self, det):
        det.define_and("A", "E1", "E2", mode="chronicle")
        hits = collect(det, "A")
        play(det, "E1", "E1", "E2", "E2", "E2")
        assert len(hits) == 2  # min(#E1, #E2)

    def test_cumulative_folds(self, det):
        det.define_and("A", "E1", "E2", mode="cumulative")
        hits = collect(det, "A")
        play(det, "E1", "E1", "E1", "E2")
        assert len(hits) == 1
        assert len(hits[0].constituents) == 4

    def test_unrestricted_retains_terminators(self, det):
        det.define_and("A", "E1", "E2", mode="unrestricted")
        hits = collect(det, "A")
        play(det, "E1", "E2")   # pair
        play(det, "E1")         # pairs with retained E2
        assert len(hits) == 2


class TestNotEdgeCases:
    def test_chronicle_windows_independent(self, det):
        det.define_not("N", "E1", "E2", "E3", mode="chronicle")
        hits = collect(det, "N")
        play(det, "E1", "E1", "E3", "E3")
        assert len(hits) == 2  # each window clean, FIFO-paired

    def test_contamination_applies_to_all_open_windows(self, det):
        det.define_not("N", "E1", "E2", "E3", mode="chronicle")
        hits = collect(det, "N")
        play(det, "E1", "E1", "E2", "E3", "E3")
        assert hits == []  # E2 poisoned both windows

    def test_terminator_without_window_is_silent(self, det):
        det.define_not("N", "E1", "E2", "E3")
        hits = collect(det, "N")
        play(det, "E3", "E2", "E3")
        assert hits == []


class TestTemporalEdgeCases:
    def test_plus_zero_delta_fires_on_next_advance(self, det):
        det.define_plus("P", "E1", 0.0)
        hits = collect(det, "P")
        det.raise_event("E1")
        assert hits == []  # timers fire on advancement, not inline
        det.advance_time(0.0)
        assert len(hits) == 1

    def test_periodic_reopen_after_close(self, det):
        det.define_periodic("PD", "E1", 10.0, "E3")
        hits = collect(det, "PD")
        det.raise_event("E1")
        det.advance_time(15.0)        # tick 1
        det.raise_event("E3")
        det.advance_time(50.0)        # closed: nothing
        det.raise_event("E1")
        det.advance_time(10.0)        # tick 1 of new window
        assert [h.get("tick") for h in hits] == [1, 1]

    def test_second_opener_ignored_while_running(self, det):
        det.define_periodic("PD", "E1", 10.0, "E3")
        hits = collect(det, "PD")
        det.raise_event("E1")
        det.advance_time(5.0)
        det.raise_event("E1")  # ignored: window already open
        det.advance_time(5.0)
        assert len(hits) == 1  # the original cadence held

    def test_periodic_star_without_close_never_fires(self, det):
        det.define_periodic_star("PS", "E1", 10.0, "E3")
        hits = collect(det, "PS")
        det.raise_event("E1")
        det.advance_time(100.0)
        assert hits == []

    def test_plus_interval_spans_source_to_expiry(self, det):
        det.define_plus("P", "E1", 30.0)
        hits = collect(det, "P")
        det.advance_time(5.0)
        det.raise_event("E1")
        det.advance_time(30.0)
        (occurrence,) = hits
        assert occurrence.start.seconds == 5.0
        assert occurrence.end.seconds == 35.0


class TestNestedComposites:
    def test_sequence_of_and(self, det):
        det.define_and("A", "E1", "E2")
        det.define_sequence("S", "A", "E3")
        hits = collect(det, "S")
        play(det, "E1", "E2", "E3")
        assert len(hits) == 1
        leaves = [leaf.event for leaf in hits[0].leaves()]
        assert sorted(leaves) == ["E1", "E2", "E3"]

    def test_and_arrival_order_does_not_break_sequence(self, det):
        # A detects at E1-then-E2 or E2-then-E1; either way A's
        # interval must precede E3 for S to fire
        det.define_and("A", "E1", "E2")
        det.define_sequence("S", "A", "E3")
        hits = collect(det, "S")
        play(det, "E3")          # before A: nothing later
        play(det, "E2", "E1")    # A detects here
        play(det, "E3")
        assert len(hits) == 1

    def test_plus_of_sequence(self, det):
        det.define_sequence("S", "E1", "E2")
        det.define_plus("P", "S", 60.0)
        hits = collect(det, "P")
        play(det, "E1", "E2")
        det.advance_time(60.0)
        assert len(hits) == 1
