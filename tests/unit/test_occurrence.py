"""Unit tests for event occurrences and parameter merging."""

import pytest

from repro.clock import Timestamp
from repro.events.occurrence import Occurrence, compose, merge_params


def occ(name, start, end=None, **params):
    start_ts = Timestamp(start, int(start * 10))
    end_ts = Timestamp(end if end is not None else start,
                       int((end if end is not None else start) * 10) + 1)
    return Occurrence(name, start_ts, end_ts, params)


class TestOccurrence:
    def test_primitive_has_no_constituents(self):
        event = occ("E1", 1.0, user="bob")
        assert event.is_primitive
        assert event["user"] == "bob"
        assert "user" in event
        assert event.get("missing", 42) == 42

    def test_interval_must_be_ordered(self):
        with pytest.raises(ValueError):
            Occurrence("bad", Timestamp(5.0, 1), Timestamp(1.0, 0))

    def test_leaves_of_primitive_is_itself(self):
        event = occ("E1", 1.0)
        assert list(event.leaves()) == [event]

    def test_leaves_of_composite_in_order(self):
        left = occ("E1", 1.0)
        right = occ("E2", 2.0)
        parent = compose("S", (left, right), Timestamp(2.0, 5))
        assert [leaf.event for leaf in parent.leaves()] == ["E1", "E2"]

    def test_describe_mentions_params(self):
        event = occ("E1", 1.0, user="bob")
        assert "E1" in event.describe()
        assert "user='bob'" in event.describe()


class TestMergeParams:
    def test_later_occurrence_wins(self):
        early = occ("E1", 1.0, who="early", only_early=1)
        late = occ("E2", 2.0, who="late")
        merged = merge_params(early, late)
        assert merged == {"who": "late", "only_early": 1}

    def test_merge_is_event_time_ordered_not_arg_ordered(self):
        early = occ("E1", 1.0, who="early")
        late = occ("E2", 2.0, who="late")
        assert merge_params(late, early)["who"] == "late"


class TestCompose:
    def test_interval_spans_constituents(self):
        left = occ("E1", 1.0)
        right = occ("E2", 5.0)
        detection = Timestamp(5.0, 99)
        parent = compose("S", (left, right), detection)
        assert parent.start == left.start
        assert parent.end == detection
        assert not parent.is_primitive

    def test_requires_constituents(self):
        with pytest.raises(ValueError):
            compose("S", (), Timestamp(0.0))

    def test_params_merged(self):
        left = occ("E1", 1.0, a=1)
        right = occ("E2", 2.0, b=2)
        parent = compose("S", (left, right), Timestamp(2.0, 9))
        assert parent.flatten() == {"a": 1, "b": 2}
