"""Unit tests for rule generation from policy (templates + generator)."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.rules.rule import Granularity, RuleClass


def engine_for(policy_text):
    return ActiveRBACEngine.from_policy(parse_policy(policy_text))


class TestGlobalRules:
    def test_global_rules_present_in_empty_policy(self):
        engine = ActiveRBACEngine()
        names = {rule.name for rule in engine.rules}
        assert {"GR.createSession", "GR.deleteSession", "GR.assignUser",
                "GR.deassignUser", "CA.checkAccess"} <= names

    def test_global_rules_globalized_taxonomy(self):
        engine = ActiveRBACEngine()
        for rule in engine.rules:
            assert rule.granularity is Granularity.GLOBALIZED
        assert engine.rules.get("GR.assignUser").classification \
            is RuleClass.ADMINISTRATIVE
        assert engine.rules.get("CA.checkAccess").classification \
            is RuleClass.ACTIVITY_CONTROL


class TestAarVariants:
    def test_aar1_core(self):
        engine = engine_for("policy p { role Solo; }")
        assert "AAR1.Solo" in engine.rules
        text = engine.rules.get("AAR1.Solo").render()
        assert "checkAssignedSolo" in text
        assert "checkDynamicSoDSet" not in text

    def test_aar2_hierarchy(self):
        engine = engine_for(
            "policy p { role A; role B; hierarchy A > B; }")
        assert "AAR2.A" in engine.rules
        assert "checkAuthorizationA" in engine.rules.get("AAR2.A").render()

    def test_aar3_dsd_only(self):
        engine = engine_for(
            "policy p { role A; role B; dsd d roles A, B; }")
        rule = engine.rules.get("AAR3.A")
        text = rule.render()
        assert "checkDynamicSoDSet" in text
        assert "checkAssignedA" in text

    def test_aar4_dsd_with_hierarchy(self):
        engine = engine_for("""
        policy p { role A; role B; role C;
                   hierarchy A > C; dsd d roles A, B; }""")
        text = engine.rules.get("AAR4.A").render()
        assert "checkAuthorizationA" in text
        assert "checkDynamicSoDSet" in text

    def test_ssd_alone_uses_aar1(self):
        # static SoD is enforced at assignment; activation uses AAR1/AAR2
        engine = engine_for(
            "policy p { role A; role B; ssd s roles A, B; }")
        assert "AAR1.A" in engine.rules


class TestPerRoleRuleSet:
    def test_standard_rule_suite_per_role(self):
        engine = engine_for("policy p { role A; }")
        for name in ("AAR1.A", "CC.A", "DAR.A", "ER.A", "DR.A"):
            assert name in engine.rules, name

    def test_rules_tagged_with_role(self):
        engine = engine_for("policy p { role A; }")
        tagged = engine.rules.by_tags(**{"role:A": "1"})
        assert len(tagged) == 5

    def test_role_events_defined(self):
        engine = engine_for("policy p { role A; }")
        for prefix in ("addActiveRole", "addSessionRole", "roleActivated",
                       "dropActiveRole", "roleDeactivated", "enableRole",
                       "disableRole", "roleEnabled", "roleDisabled"):
            assert f"{prefix}.A" in engine.detector

    def test_duration_creates_plus_event_and_tsod_rule(self):
        engine = engine_for(
            "policy p { role R3; duration R3 7200; }")
        assert "durationExpired.R3" in engine.detector
        assert "TSOD.R3" in engine.rules
        assert engine.rules.get("TSOD.R3").granularity \
            is Granularity.LOCALIZED

    def test_per_user_duration_specialized(self):
        engine = engine_for("""
        policy p { role R3; user bob; duration R3 7200 for bob; }""")
        assert "durationExpired.R3.bob" in engine.detector
        rule = engine.rules.get("TSOD.R3.bob")
        assert rule.granularity is Granularity.SPECIALIZED

    def test_anchor_cleanup_rule_tagged_cross_role(self):
        engine = engine_for("""
        policy p { role JuniorEmp; role Manager;
                   transaction JuniorEmp during Manager; }""")
        rule = engine.rules.get("ASEC.Manager")
        assert rule.classification is RuleClass.ACTIVE_SECURITY
        assert rule.matches_tags(**{"role:Manager": "1"})
        assert rule.matches_tags(**{"role:JuniorEmp": "1"})

    def test_disable_rule_tagged_with_sod_partners(self):
        engine = engine_for("""
        policy p { role Nurse; role Doctor;
                   disabling_sod cov roles Nurse, Doctor
                       daily 10:00 to 17:00; }""")
        rule = engine.rules.get("DR.Nurse")
        assert rule.matches_tags(**{"role:Doctor": "1"})

    def test_generation_is_idempotent_by_name(self):
        engine = engine_for("policy p { role A; }")
        before = len(engine.rules)
        added = engine.generator.generate_role_rules("A")
        assert added == []
        assert len(engine.rules) == before


class TestRemoveRoleRules:
    def test_remove_retires_rules_and_composites(self):
        engine = engine_for(
            "policy p { role R3; duration R3 7200; }")
        removed = engine.generator.remove_role_rules("R3")
        assert "TSOD.R3" in removed
        assert "durationExpired.R3" not in engine.detector
        assert engine.rules.by_tags(**{"role:R3": "1"}) == []

    def test_remove_cancels_window_timers(self):
        engine = engine_for("""
        policy p { role D; enable D daily 08:00 to 16:00; }""")
        pending_before = len(engine.timers)
        assert pending_before >= 1
        engine.generator.remove_role_rules("D")
        assert len(engine.timers) == pending_before - 1

    def test_dynamic_add_role_generates_rules(self):
        engine = ActiveRBACEngine()
        engine.add_role("New")
        assert "AAR1.New" in engine.rules
        assert "addActiveRole.New" in engine.detector

    def test_delete_role_removes_rules(self):
        engine = engine_for("policy p { role A; }")
        engine.delete_role("A")
        assert engine.rules.by_tags(**{"role:A": "1"}) == []
        assert "A" not in engine.model.roles


class TestRuleRendering:
    def test_pool_renders_paper_style(self):
        engine = engine_for("policy p { role R1; }")
        text = engine.rules.render_pool()
        assert "RULE [ AAR1.R1" in text
        assert "user IN userL" in text
        assert "Access Denied Cannot Activate" in text

    def test_rule_counts_scale_with_constraints(self):
        plain = engine_for("policy p { role A; }")
        rich = engine_for("""
        policy p { role A; user u;
                   duration A 100; duration A 50 for u; }""")
        plain_count = len(plain.rules.by_tags(**{"role:A": "1"}))
        rich_count = len(rich.rules.by_tags(**{"role:A": "1"}))
        assert rich_count == plain_count + 2  # two TSOD rules
