"""Unit: the overload-resilience primitives behind the service plane.

Bulkhead slot accounting, the circuit-breaker state machine (driven
by a fake monotonic clock), the seeded network-fault schedule, the
async retry helper the loadgen client reconnects through, and the
front-end's fail-closed request-framing validators.
"""

import asyncio

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.containment import retry_transient_async
from repro.errors import RetryExhausted, TransientError
from repro.serve.bulkhead import (
    Bulkhead,
    CircuitBreaker,
    ShardGuard,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.serve.http import HttpError, ServeApp, response_bytes
from repro.serve.loadgen import HttpClient
from repro.serve.shard import ShardRouter
from repro.testing.faults import NET_FAULT_KINDS, NetFaultPlan

MINI = """
policy mini {
  role R; user u; assign u to R;
  permission op on obj;
  grant op on obj to R;
}
"""


class FakeClock:
    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t


class TestBulkhead:
    def test_bounded_slots_shed_when_full(self):
        bh = Bulkhead(2)
        assert bh.try_acquire() and bh.try_acquire()
        assert not bh.try_acquire()
        assert bh.shed == 1
        bh.release()
        assert bh.try_acquire()
        assert bh.peak == 2

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            Bulkhead(1).release()

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Bulkhead(0)


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=5.0):
        clock = FakeClock()
        return CircuitBreaker(threshold, cooldown, now=clock), clock

    def test_closed_serves_and_success_resets_failures(self):
        breaker, _ = self.make()
        assert breaker.allow() == "serve"
        breaker.record(False)
        breaker.record(False)
        breaker.record(True)  # streak broken
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == STATE_CLOSED
        assert breaker.failures == 2

    def test_threshold_consecutive_failures_trip(self):
        breaker, _ = self.make(threshold=3)
        for _ in range(3):
            breaker.record(False)
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1
        assert breaker.allow() == "degraded"
        assert breaker.code == 2

    def test_cooldown_admits_exactly_one_probe(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record(False)
        assert breaker.allow() == "degraded"
        clock.t += 5.1
        assert breaker.allow() == "probe"
        assert breaker.state == STATE_HALF_OPEN
        # a second concurrent request is not a probe
        assert breaker.allow() == "degraded"

    def test_probe_success_closes(self):
        breaker, clock = self.make(threshold=1)
        breaker.record(False)
        clock.t += 6
        assert breaker.allow() == "probe"
        breaker.record(True)
        assert breaker.state == STATE_CLOSED
        assert breaker.allow() == "serve"
        assert breaker.failures == 0

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self.make(threshold=1, cooldown=5.0)
        breaker.record(False)
        clock.t += 6
        assert breaker.allow() == "probe"
        breaker.record(False)
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        assert breaker.allow() == "degraded"
        clock.t += 5.1
        assert breaker.allow() == "probe"

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)


class TestShardGuard:
    def test_snapshot_reports_both_primitives(self):
        guard = ShardGuard("hq", 4, threshold=2, cooldown=1.0)
        guard.bulkhead.try_acquire()
        guard.breaker.record(False)
        guard.degraded_served = 3
        snap = guard.snapshot()
        assert snap["breaker"] == STATE_CLOSED
        assert snap["consecutive_failures"] == 1
        assert snap["bulkhead_limit"] == 4
        assert snap["bulkhead_active"] == 1
        assert snap["degraded_served"] == 3


class TestNetFaultPlan:
    def test_schedule_is_a_pure_function_of_seed_and_index(self):
        one = NetFaultPlan(seed=7)
        two = NetFaultPlan(seed=7)
        dealt = [one.decide(i).kind for i in range(200)]
        assert dealt == [two.decide(i).kind for i in range(200)]
        # a different seed deals a different schedule
        other = [NetFaultPlan(seed=8).decide(i).kind
                 for i in range(200)]
        assert dealt != other

    def test_default_rates_deal_every_kind(self):
        plan = NetFaultPlan(seed=0)
        for index in range(500):
            plan.decide(index)
        for kind in NET_FAULT_KINDS:
            assert plan.counts[kind] > 0, kind
        assert plan.counts["none"] > sum(
            plan.counts[k] for k in NET_FAULT_KINDS)

    def test_parameters_thread_into_faults(self):
        plan = NetFaultPlan(seed=0, rates={"stall": 1.0},
                            stall_s=0.7, partial_fraction=0.25)
        fault = plan.decide(0)
        assert fault.kind == "stall"
        assert fault.delay_s == 0.7
        assert fault.fraction == 0.25

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NetFaultPlan(rates={"gremlins": 0.5})

    def test_rates_over_one_rejected(self):
        with pytest.raises(ValueError):
            NetFaultPlan(rates={"reset": 0.6, "stall": 0.6})


class TestRetryTransientAsync:
    def run(self, coro):
        return asyncio.run(coro)

    def test_transient_failures_then_success(self):
        calls = []
        retried = []

        async def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("blip")
            return "ok"

        async def no_sleep(_delay):
            pass

        result = self.run(retry_transient_async(
            flaky, attempts=4, base_delay=0.01, sleep=no_sleep,
            on_retry=lambda n, exc: retried.append(n)))
        assert result == "ok"
        assert len(calls) == 3
        assert retried == [1, 2]

    def test_exhaustion_raises_typed_error_chaining_last(self):
        async def always():
            raise ConnectionResetError("gone")

        async def no_sleep(_delay):
            pass

        with pytest.raises(RetryExhausted) as err:
            self.run(retry_transient_async(
                always, attempts=3, retry_on=(ConnectionError,),
                sleep=no_sleep))
        assert err.value.attempts == 3
        assert isinstance(err.value.__cause__, ConnectionResetError)

    def test_jitter_scales_each_backoff_delay(self):
        slept = []

        async def always():
            raise TransientError("x")

        async def record(delay):
            slept.append(delay)

        with pytest.raises(RetryExhausted):
            self.run(retry_transient_async(
                always, attempts=3, base_delay=0.1, factor=2.0,
                sleep=record, jitter=lambda: 0.5))
        assert slept == [pytest.approx(0.05), pytest.approx(0.1)]

    def test_non_retryable_error_propagates_immediately(self):
        calls = []

        async def boom():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            self.run(retry_transient_async(boom, attempts=5))
        assert len(calls) == 1


class TestHttpClientReconnect:
    def test_reset_mid_request_is_retried_on_a_fresh_connection(self):
        """A server that resets the first connection costs the client
        one counted retry + reconnect, not an exception."""
        attempts = []

        async def scenario():
            async def handler(reader, writer):
                attempts.append(1)
                await reader.readuntil(b"\r\n\r\n")
                if len(attempts) == 1:
                    writer.transport.abort()  # mid-response reset
                    return
                body = b'{"ok": true}'
                writer.write(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body))
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(
                handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = HttpClient("127.0.0.1", port, base_delay=0.0)
            try:
                return await client.request("GET", "/x"), client
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        (status, payload), client = asyncio.run(scenario())
        assert status == 200 and payload == {"ok": True}
        assert len(attempts) == 2
        assert client.retries == 1
        assert client.reconnects == 1


@pytest.fixture()
def app():
    router = ShardRouter()
    router.add_shard("mini", ActiveRBACEngine.from_policy(
        parse_policy(MINI)))
    return ServeApp(router, max_body_bytes=100)


class TestRequestFraming:
    def test_default_deadline_is_the_request_timeout(self, app):
        deadline = app._request_deadline({})
        assert deadline.exceeded() is None
        remaining = deadline.remaining()
        assert 0 < remaining <= app.request_timeout

    def test_header_overrides_budget(self, app):
        deadline = app._request_deadline({"x-deadline-ms": "250"})
        assert 0.2 < deadline.remaining() <= 0.25

    @pytest.mark.parametrize("raw", ["banana", "", "nan", "inf",
                                     "-50", "0"])
    def test_malformed_deadline_fails_closed_400(self, app, raw):
        with pytest.raises(HttpError) as err:
            app._request_deadline({"x-deadline-ms": raw})
        assert err.value.status == 400

    def test_content_length_missing_is_zero(self, app):
        assert app._content_length({}) == 0

    def test_content_length_garbage_is_400_and_closes(self, app):
        with pytest.raises(HttpError) as err:
            app._content_length({"content-length": "12abc"})
        assert err.value.status == 400
        assert err.value.close is True

    def test_content_length_negative_is_400(self, app):
        with pytest.raises(HttpError) as err:
            app._content_length({"content-length": "-1"})
        assert err.value.status == 400

    def test_content_length_over_bound_is_413_and_closes(self, app):
        with pytest.raises(HttpError) as err:
            app._content_length({"content-length": "101"})
        assert err.value.status == 413
        assert err.value.close is True

    def test_retry_after_header_renders(self):
        raw = response_bytes(503, {"error": "shed"},
                             headers={"Retry-After": "1"})
        head, _, _ = raw.partition(b"\r\n\r\n")
        assert b"Retry-After: 1\r\n" in head

    def test_http_error_carries_shed_contract(self):
        err = HttpError(503, "full", error="shed", retry_after=2.0,
                        close=True)
        assert (err.status, err.error, err.retry_after, err.close) == \
            (503, "shed", 2.0, True)
