"""Unit tests for Snoop parameter (consumption) contexts."""

import pytest

from repro.clock import Timestamp
from repro.events.consumption import ConsumptionMode, InitiatorBuffer
from repro.events.occurrence import Occurrence


def occ(name, at):
    return Occurrence(name, Timestamp(at, int(at)), Timestamp(at, int(at)))


class TestConsumptionModeParse:
    def test_parse_by_name(self):
        assert ConsumptionMode.parse("recent") is ConsumptionMode.RECENT
        assert ConsumptionMode.parse("CHRONICLE") is ConsumptionMode.CHRONICLE

    def test_parse_passthrough(self):
        assert ConsumptionMode.parse(
            ConsumptionMode.CUMULATIVE) is ConsumptionMode.CUMULATIVE

    def test_parse_unknown_raises(self):
        with pytest.raises(ValueError):
            ConsumptionMode.parse("nonsense")


def fill(buffer, count=3):
    events = [occ(f"e{i}", float(i)) for i in range(count)]
    for event in events:
        buffer.add(event)
    return events


class TestRecent:
    def test_only_most_recent_kept(self):
        buffer = InitiatorBuffer(ConsumptionMode.RECENT)
        events = fill(buffer)
        assert buffer.peek_all() == [events[-1]]

    def test_initiator_not_consumed_on_match(self):
        buffer = InitiatorBuffer(ConsumptionMode.RECENT)
        events = fill(buffer)
        first = buffer.take_matches()
        second = buffer.take_matches()
        assert first == [[events[-1]]]
        assert second == [[events[-1]]]  # keeps initiating (Snoop recent)


class TestChronicle:
    def test_fifo_pairing_consumes(self):
        buffer = InitiatorBuffer(ConsumptionMode.CHRONICLE)
        events = fill(buffer)
        assert buffer.take_matches() == [[events[0]]]
        assert buffer.take_matches() == [[events[1]]]
        assert buffer.take_matches() == [[events[2]]]
        assert buffer.take_matches() == []


class TestContinuous:
    def test_one_group_per_open_window_all_consumed(self):
        buffer = InitiatorBuffer(ConsumptionMode.CONTINUOUS)
        events = fill(buffer)
        groups = buffer.take_matches()
        assert groups == [[events[0]], [events[1]], [events[2]]]
        assert buffer.take_matches() == []


class TestCumulative:
    def test_single_group_with_everything(self):
        buffer = InitiatorBuffer(ConsumptionMode.CUMULATIVE)
        events = fill(buffer)
        assert buffer.take_matches() == [events]
        assert buffer.take_matches() == []


class TestUnrestricted:
    def test_nothing_consumed(self):
        buffer = InitiatorBuffer(ConsumptionMode.UNRESTRICTED)
        events = fill(buffer)
        first = buffer.take_matches()
        second = buffer.take_matches()
        assert first == [[e] for e in events]
        assert second == first


class TestEligibility:
    def test_filter_applies_before_pairing(self):
        buffer = InitiatorBuffer(ConsumptionMode.CHRONICLE)
        events = fill(buffer)
        groups = buffer.take_matches(
            eligible=lambda event: event.start.seconds >= 1.0)
        assert groups == [[events[1]]]
        # event 0 was ineligible and must remain buffered
        assert events[0] in buffer.peek_all()

    def test_no_eligible_returns_empty_without_consuming(self):
        buffer = InitiatorBuffer(ConsumptionMode.CONTINUOUS)
        fill(buffer)
        assert buffer.take_matches(eligible=lambda event: False) == []
        assert len(buffer) == 3

    def test_clear_empties(self):
        buffer = InitiatorBuffer(ConsumptionMode.CHRONICLE)
        fill(buffer)
        buffer.clear()
        assert len(buffer) == 0
