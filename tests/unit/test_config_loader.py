"""Unit tests for the versioned config-set loader (YAML subset / JSON /
raw DSL), canonicalisation and checksum identity."""

import pytest

from repro.config import ConfigSet, load_config, parse_config
from repro.config.configset import policy_checksum
from repro.config.loader import ConfigError

YAML_DOC = """\
version: 3
name: demo
policy: |
  policy demo {
    role doctor;
    role nurse;
    user alice;
    permission read on chart;
    grant read on chart to doctor;
    assign alice to doctor;
  }
"""

STRUCTURED_DOC = """\
version: 2
name: clinic
roles:
  - name: doctor
  - name: nurse
    max_active_users: 3
users: [alice, bob]
permissions:
  - operation: read
    object: chart
grants:
  - role: doctor
    operation: read
    object: chart
assignments:
  - user: alice
    role: doctor
hierarchy:
  - senior: doctor
    junior: nurse
"""


class TestParseConfig:
    def test_embedded_dsl_document(self):
        config = parse_config(YAML_DOC)
        assert config.version == 3
        assert "doctor" in config.spec.roles
        assert config.checksum == policy_checksum(config.source)

    def test_structured_document(self):
        config = parse_config(STRUCTURED_DOC)
        assert config.version == 2
        assert set(config.spec.roles) == {"doctor", "nurse"}
        assert config.spec.roles["nurse"].max_active_users == 3
        assert ("alice", "doctor") in config.spec.assignments
        assert ("doctor", "nurse") in config.spec.hierarchy

    def test_json_and_yaml_canonicalise_identically(self):
        import json
        doc = {"version": 2, "name": "clinic",
               "roles": ["doctor"], "users": ["alice"],
               "permissions": [{"operation": "read", "object": "chart"}],
               "grants": [{"role": "doctor", "operation": "read",
                           "object": "chart"}],
               "assignments": [{"user": "alice", "role": "doctor"}]}
        as_json = parse_config(json.dumps(doc), "json")
        as_yaml = parse_config(
            "version: 2\nname: clinic\nroles: [doctor]\n"
            "users: [alice]\n"
            "permissions:\n  - operation: read\n    object: chart\n"
            "grants:\n  - role: doctor\n    operation: read\n"
            "    object: chart\n"
            "assignments:\n  - user: alice\n    role: doctor\n")
        assert as_json.checksum == as_yaml.checksum
        assert as_json.source == as_yaml.source

    def test_raw_dsl_needs_explicit_version(self):
        dsl = "policy p {\n  role r;\n}"
        with pytest.raises(ConfigError, match="version"):
            parse_config(dsl, "rbac")
        config = parse_config(dsl, "rbac", version=4)
        assert config.version == 4

    def test_version_override_wins(self):
        config = parse_config(YAML_DOC, version=9)
        assert config.version == 9

    def test_bad_version_rejected(self):
        with pytest.raises(ConfigError, match="version"):
            parse_config("version: banana\npolicy: |\n  policy p "
                         "{\n    role r;\n  }\n")

    def test_validation_failure_is_config_error(self):
        # assignment to an undeclared role fails policy validation
        doc = ("version: 2\nname: bad\nroles: [doctor]\n"
               "users: [alice]\n"
               "assignments:\n  - user: alice\n    role: ghost\n")
        with pytest.raises(ConfigError, match="validation"):
            parse_config(doc)

    def test_tabs_in_indentation_rejected(self):
        with pytest.raises(ConfigError, match="tabs"):
            parse_config("version: 2\nroles:\n\t- doctor\n")

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError, match="format"):
            parse_config(YAML_DOC, "toml")


class TestLoadConfig:
    def test_extension_dispatch_and_sniffing(self, tmp_path):
        yaml_file = tmp_path / "deploy.yaml"
        yaml_file.write_text(YAML_DOC)
        sniffed = tmp_path / "deploy.conf"  # unknown extension
        sniffed.write_text(YAML_DOC)
        dsl_file = tmp_path / "deploy.rbac"
        dsl_file.write_text("policy p {\n  role r;\n}")
        assert load_config(str(yaml_file)).version == 3
        assert load_config(str(sniffed)).version == 3
        assert load_config(str(dsl_file), version=7).version == 7

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_config(str(tmp_path / "nope.yaml"))


class TestConfigSet:
    def test_checksum_covers_canonical_source(self):
        config = parse_config(YAML_DOC)
        tampered = ConfigSet(version=config.version, spec=config.spec,
                             source=config.source + "\n// sneaky",
                             checksum=config.checksum)
        assert policy_checksum(tampered.source) != tampered.checksum

    def test_from_spec_freezes_the_policy(self):
        config = parse_config(YAML_DOC)
        live = config.spec
        frozen = ConfigSet.from_spec(live, 5)
        live.add_role("intruder")
        assert "intruder" not in frozen.spec.roles

    def test_version_floor(self):
        config = parse_config(YAML_DOC)
        with pytest.raises(ValueError, match=">= 1"):
            ConfigSet.from_spec(config.spec, 0)
