"""Unit tests for static rule-pool verification (paper future work §7)."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.rules.rule import Action, OWTERule
from repro.synthesis.verify import (
    Severity,
    errors_only,
    render_findings,
    verify_rule_pool,
)

POLICY = """
policy v {
  role A; role B;
  user u;
  assign u to A;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestCleanPool:
    def test_generated_pool_verifies_clean(self, engine):
        findings = verify_rule_pool(engine)
        assert errors_only(findings) == []
        assert render_findings([]) == "rule pool verification: clean"

    def test_xyz_pool_verifies_clean(self, xyz_engine):
        assert errors_only(verify_rule_pool(xyz_engine)) == []

    def test_constraint_heavy_pool_verifies_clean(self):
        engine = ActiveRBACEngine.from_policy(parse_policy("""
        policy heavy {
          role M; role J; role N; role D; role T; user u;
          transaction J during M;
          disabling_sod c roles N, D daily 10:00 to 17:00;
          duration T 100;
          require D when enabling N;
          prerequisite J requires T;
        }"""))
        assert errors_only(verify_rule_pool(engine)) == []


class TestFindings:
    def test_orphan_request_event_after_rule_disable(self, engine):
        engine.rules.disable("AAR1.A")
        findings = verify_rule_pool(engine)
        orphans = [f for f in findings if f.check == "orphan-request-event"]
        assert any(f.subject == "addActiveRole.A" for f in orphans)
        infos = [f for f in findings if f.check == "disabled-rule"]
        assert any(f.subject == "AAR1.A" for f in infos)

    def test_duplicate_commit_detected(self, engine):
        engine.rules.add(OWTERule(
            name="CC2.A", event="addSessionRole.A",
            actions=[Action("commit again", lambda ctx: None)],
            tags={"kind": "commit", "role:A": "1"},
        ))
        findings = verify_rule_pool(engine)
        duplicates = [f for f in findings if f.check == "duplicate-commit"]
        assert len(duplicates) == 1
        assert duplicates[0].severity is Severity.ERROR

    def test_cascade_cycle_detected(self, engine):
        engine.detector.define_primitive("ping")
        engine.detector.define_primitive("pong")
        engine.rules.add(OWTERule(
            name="Ping", event="ping",
            actions=[Action("raise pong",
                            lambda ctx: ctx.raise_event("pong"))],
            tags={"raises": "pong"},
        ))
        engine.rules.add(OWTERule(
            name="Pong", event="pong",
            actions=[Action("raise ping",
                            lambda ctx: ctx.raise_event("ping"))],
            tags={"raises": "ping"},
        ))
        findings = verify_rule_pool(engine)
        cycles = [f for f in findings if f.check == "cascade-cycle"]
        assert cycles
        assert "ping" in cycles[0].message and "pong" in cycles[0].message

    def test_stale_role_tag_detected(self, engine):
        engine.rules.add(OWTERule(
            name="Stale", event="checkAccess",
            tags={"role:Ghost": "1"},
        ))
        findings = verify_rule_pool(engine)
        stale = [f for f in findings if f.check == "stale-role-tag"]
        assert stale and stale[0].subject == "Stale"

    def test_dangling_event_detected(self, engine):
        # build a rule bound to an event, then undefine the event
        engine.detector.define_primitive("temp")
        engine.rules.add(OWTERule(name="Dangler", event="temp"))
        engine.detector.undefine("temp")
        findings = verify_rule_pool(engine)
        dangling = [f for f in findings if f.check == "dangling-event"]
        assert dangling and dangling[0].severity is Severity.ERROR

    def test_render_findings_lists_each(self, engine):
        engine.rules.disable("AAR1.A")
        text = render_findings(verify_rule_pool(engine))
        assert "finding(s)" in text
        assert "orphan-request-event" in text

    def test_no_false_cycle_from_commit_chain(self, engine):
        """addActiveRole -> addSessionRole -> roleActivated is a DAG,
        not a cycle."""
        findings = verify_rule_pool(engine)
        assert not [f for f in findings if f.check == "cascade-cycle"]
