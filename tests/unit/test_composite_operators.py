"""Unit tests for the Snoop composite operator semantics (paper §3)."""

import pytest

from repro.clock import TimerService, VirtualClock
from repro.events import ConsumptionMode, EventDetector


@pytest.fixture
def det():
    detector = EventDetector(TimerService(VirtualClock()))
    for name in ("E1", "E2", "E3"):
        detector.define_primitive(name)
    return detector


def collect(detector, name):
    hits = []
    detector.subscribe(name, hits.append)
    return hits


class TestOr:
    def test_fires_on_either_child(self, det):
        det.define_or("O", "E1", "E2")
        hits = collect(det, "O")
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(hits) == 2

    def test_carries_child_params(self, det):
        det.define_or("O", "E1", "E2")
        hits = collect(det, "O")
        det.raise_event("E2", role="Nurse")
        assert hits[0].get("role") == "Nurse"

    def test_supports_more_than_two_children(self, det):
        det.define_or("O", "E1", "E2", "E3")
        hits = collect(det, "O")
        for name in ("E1", "E2", "E3"):
            det.raise_event(name)
        assert len(hits) == 3

    def test_requires_two_children(self, det):
        from repro.errors import EventError
        with pytest.raises(EventError):
            det.define_or("O", "E1")


class TestAnd:
    def test_fires_once_both_occur_any_order(self, det):
        det.define_and("A", "E1", "E2")
        hits = collect(det, "A")
        det.raise_event("E2")
        det.raise_event("E1")
        assert len(hits) == 1

    def test_recent_initiator_keeps_initiating(self, det):
        det.define_and("A", "E1", "E2")
        hits = collect(det, "A")
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E2")  # E1 still initiates (recent context)
        assert len(hits) == 2

    def test_merged_params(self, det):
        det.define_and("A", "E1", "E2")
        hits = collect(det, "A")
        det.raise_event("E1", a=1)
        det.raise_event("E2", b=2)
        assert hits[0].flatten() == {"a": 1, "b": 2}

    def test_chronicle_consumes_both_sides(self, det):
        det.define_and("A", "E1", "E2", mode="chronicle")
        hits = collect(det, "A")
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E2")  # no E1 left
        assert len(hits) == 1


class TestSequence:
    def test_order_matters(self, det):
        det.define_sequence("S", "E1", "E2")
        hits = collect(det, "S")
        det.raise_event("E2")  # terminator with no initiator: nothing
        assert hits == []
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(hits) == 1

    def test_interval_spans_initiator_to_terminator(self, det):
        det.define_sequence("S", "E1", "E2")
        hits = collect(det, "S")
        first = det.raise_event("E1")
        det.clock.advance(10)
        second = det.raise_event("E2")
        assert hits[0].start == first.start
        assert hits[0].end == second.end

    def test_simultaneous_events_still_ordered_by_raise(self, det):
        # Two raises at the same simulated instant: sequence numbers
        # order them, so E1-then-E2 detects.
        det.define_sequence("S", "E1", "E2")
        hits = collect(det, "S")
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(hits) == 1

    def test_nested_sequences(self, det):
        det.define_sequence("S1", "E1", "E2")
        det.define_sequence("S2", "S1", "E3")
        hits = collect(det, "S2")
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E3")
        assert len(hits) == 1
        assert [l.event for l in hits[0].leaves()] == ["E1", "E2", "E3"]


class TestNot:
    def test_detects_when_middle_absent(self, det):
        det.define_not("N", "E1", "E2", "E3")
        hits = collect(det, "N")
        det.raise_event("E1")
        det.raise_event("E3")
        assert len(hits) == 1

    def test_contaminated_window_does_not_detect(self, det):
        det.define_not("N", "E1", "E2", "E3")
        hits = collect(det, "N")
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E3")
        assert hits == []

    def test_fresh_window_after_contamination(self, det):
        det.define_not("N", "E1", "E2", "E3")
        hits = collect(det, "N")
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E1")  # fresh clean window (recent mode)
        det.raise_event("E3")
        assert len(hits) == 1


class TestAperiodic:
    def test_middle_only_detected_inside_window(self, det):
        det.define_aperiodic("AP", "E1", "E2", "E3")
        hits = collect(det, "AP")
        det.raise_event("E2")  # before window: nothing
        det.raise_event("E1")  # open
        det.raise_event("E2")
        det.raise_event("E2")
        det.raise_event("E3")  # close
        det.raise_event("E2")  # after window: nothing
        assert len(hits) == 2

    def test_window_not_consumed_by_detection(self, det):
        det.define_aperiodic("AP", "E1", "E2", "E3")
        hits = collect(det, "AP")
        det.raise_event("E1")
        for _ in range(5):
            det.raise_event("E2")
        assert len(hits) == 5

    def test_window_open_property(self, det):
        node = det.define_aperiodic("AP", "E1", "E2", "E3")
        assert not node.window_open
        det.raise_event("E1")
        assert node.window_open
        det.raise_event("E3")
        assert not node.window_open

    def test_params_merge_opener_and_middle(self, det):
        det.define_aperiodic("AP", "E1", "E2", "E3")
        hits = collect(det, "AP")
        det.raise_event("E1", window="w1")
        det.raise_event("E2", item="x")
        assert hits[0].flatten() == {"window": "w1", "item": "x"}


class TestAperiodicStar:
    def test_single_detection_at_close_with_accumulated(self, det):
        det.define_aperiodic_star("APS", "E1", "E2", "E3")
        hits = collect(det, "APS")
        det.raise_event("E1")
        det.raise_event("E2", n=1)
        det.raise_event("E2", n=2)
        assert hits == []
        det.raise_event("E3")
        assert len(hits) == 1
        assert len(hits[0].constituents) == 4  # opener + 2 middles + closer

    def test_empty_window_still_detects(self, det):
        det.define_aperiodic_star("APS", "E1", "E2", "E3")
        hits = collect(det, "APS")
        det.raise_event("E1")
        det.raise_event("E3")
        assert len(hits) == 1

    def test_close_without_open_is_silent(self, det):
        det.define_aperiodic_star("APS", "E1", "E2", "E3")
        hits = collect(det, "APS")
        det.raise_event("E3")
        assert hits == []


class TestPlus:
    def test_fires_exactly_after_delta(self, det):
        det.define_plus("P", "E1", 100.0)
        hits = collect(det, "P")
        det.raise_event("E1", user="bob")
        det.advance_time(99.9)
        assert hits == []
        det.advance_time(0.1)
        assert len(hits) == 1
        assert hits[0].get("user") == "bob"

    def test_overlapping_countdowns_independent(self, det):
        det.define_plus("P", "E1", 100.0)
        hits = collect(det, "P")
        det.raise_event("E1", n=1)
        det.advance_time(50.0)
        det.raise_event("E1", n=2)
        det.advance_time(50.0)
        assert [h.get("n") for h in hits] == [1]
        det.advance_time(50.0)
        assert [h.get("n") for h in hits] == [1, 2]

    def test_cancel_pending(self, det):
        node = det.define_plus("P", "E1", 100.0)
        hits = collect(det, "P")
        det.raise_event("E1")
        assert node.cancel_pending() == 1
        det.advance_time(200.0)
        assert hits == []

    def test_negative_delta_rejected(self, det):
        with pytest.raises(ValueError):
            det.define_plus("P", "E1", -1.0)


class TestPeriodic:
    def test_ticks_between_open_and_close(self, det):
        det.define_periodic("PD", "E1", 10.0, "E3")
        hits = collect(det, "PD")
        det.raise_event("E1")
        det.advance_time(35.0)
        assert [h.get("tick") for h in hits] == [1, 2, 3]
        det.raise_event("E3")
        det.advance_time(50.0)
        assert len(hits) == 3

    def test_no_ticks_before_open(self, det):
        det.define_periodic("PD", "E1", 10.0, "E3")
        hits = collect(det, "PD")
        det.advance_time(100.0)
        assert hits == []

    def test_nonpositive_period_rejected(self, det):
        with pytest.raises(ValueError):
            det.define_periodic("PD", "E1", 0.0, "E3")


class TestPeriodicStar:
    def test_reports_tick_count_at_close(self, det):
        det.define_periodic_star("PS", "E1", 10.0, "E3")
        hits = collect(det, "PS")
        det.raise_event("E1")
        det.advance_time(45.0)
        det.raise_event("E3")
        assert len(hits) == 1
        assert hits[0].get("ticks") == 4


class TestAbsolute:
    def test_daily_firing(self, det):
        det.define_absolute("TenAM", "10:00:00/*/*/*")
        hits = collect(det, "TenAM")
        det.advance_time(86400 * 3)
        assert len(hits) == 3

    def test_carries_instant_param(self, det):
        det.define_absolute("TenAM", "10:00:00/*/*/*")
        hits = collect(det, "TenAM")
        det.advance_time(86400)
        assert hits[0].get("instant") == 10 * 3600
