"""Unit: HTTP protocol helpers and the loadgen report machinery."""

import pytest

from repro.errors import (
    AccessDenied,
    AdministrationError,
    RetryExhausted,
    UnknownRoleError,
    UnknownUserError,
)
from repro.serve.http import (
    HttpError,
    _error_status,
    parse_request_head,
    response_bytes,
)
from repro.serve.loadgen import (
    LoadLevel,
    LoadReport,
    _op_request,
    percentile,
)
from repro.workloads import ServiceOp


class TestParseRequestHead:
    def test_parses_method_target_headers(self):
        head = (b"POST /v1/check HTTP/1.1\r\n"
                b"Host: x\r\n"
                b"Content-Length: 12\r\n"
                b"X-Mixed-Case: Kept\r\n\r\n")
        method, target, headers = parse_request_head(head)
        assert method == "POST"
        assert target == "/v1/check"
        assert headers["content-length"] == "12"
        assert headers["x-mixed-case"] == "Kept"

    def test_lowercases_method(self):
        method, _, _ = parse_request_head(b"get / HTTP/1.1\r\n\r\n")
        assert method == "GET"

    @pytest.mark.parametrize("head", [
        b"GET /\r\n\r\n",                      # no version
        b"GET / HTTP/2\r\n\r\n",               # wrong version family
        b"GET / HTTP/1.1 extra\r\n\r\n",       # 4 request-line parts
        b"GET / HTTP/1.1\r\nbadheader\r\n\r\n",  # no colon
    ])
    def test_malformed_heads_are_400(self, head):
        with pytest.raises(HttpError) as err:
            parse_request_head(head)
        assert err.value.status == 400


class TestResponseBytes:
    def test_json_response_shape(self):
        raw = response_bytes(200, {"allowed": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert b"Connection: keep-alive" in head
        assert b'"allowed": true' in body

    def test_text_response_is_prometheus_content_type(self):
        raw = response_bytes(200, "# HELP x\n")
        assert b"Content-Type: text/plain" in raw

    def test_close_flag(self):
        assert b"Connection: close" in response_bytes(
            200, {}, close=True)

    def test_error_statuses_have_reasons(self):
        assert b"HTTP/1.1 404 Not Found" in response_bytes(404, {})
        assert b"HTTP/1.1 503 Service Unavailable" in response_bytes(
            503, {})


class TestErrorStatus:
    def test_unknown_entities_are_404(self):
        assert _error_status(UnknownUserError("u")) == 404
        assert _error_status(UnknownRoleError("r")) == 404
        assert _error_status(
            AdministrationError("unknown shard 'x'")) == 404

    def test_other_admin_errors_are_400(self):
        assert _error_status(AdministrationError("cannot route")) == 400

    def test_fail_closed_conditions_are_403(self):
        assert _error_status(AccessDenied("no")) == 403
        assert _error_status(
            RetryExhausted(3, OSError("home down"))) == 403


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100

    def test_single_sample(self):
        assert percentile([42.0], 0.99) == 42.0


class TestOpRequest:
    def test_check_maps_to_post(self):
        method, target, body = _op_request(ServiceOp("check", {
            "user": "u@s", "operation": "op0", "object": "obj"}))
        assert (method, target) == ("POST", "/v1/check")
        assert body["user"] == "u@s"

    def test_explain_builds_query_string(self):
        _, target, body = _op_request(ServiceOp("explain", {
            "user": "u", "operation": "op0", "object": "obj"}))
        assert target.startswith("/v1/explain?")
        assert "user=u" in target
        assert body is None

    def test_admin_maps_to_admin_route(self):
        method, target, _ = _op_request(ServiceOp("admin", {
            "domain": "s", "op": "grant", "args": {}}))
        assert (method, target) == ("POST", "/v1/admin")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            _op_request(ServiceOp("teleport", {}))


class TestLoadReport:
    def test_level_percentiles_and_dict(self):
        level = LoadLevel(concurrency=4)
        level.requests = 4
        level.elapsed_s = 2.0
        level.latencies_us = [100.0, 200.0, 300.0, 400.0]
        row = level.to_dict()
        assert row["rps"] == 2.0
        assert row["p50_us"] == 200.0
        assert row["max_us"] == 400.0

    def test_report_merges_levels(self):
        report = LoadReport(users=10, shards=2)
        a = LoadLevel(concurrency=1)
        a.requests, a.latencies_us = 2, [100.0, 200.0]
        b = LoadLevel(concurrency=8)
        b.requests, b.latencies_us = 2, [300.0, 400.0]
        b.errors = 1
        report.levels = [a, b]
        payload = report.to_dict()
        assert payload["requests"] == 4
        assert payload["errors"] == 1
        assert payload["p50_us"] == 200.0
        assert len(payload["saturation"]) == 2
