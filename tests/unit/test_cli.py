"""Unit tests for the CLI."""

import pytest

from repro.cli import main

GOOD = """
policy demo {
  role A; role B;
  user u;
  hierarchy A > B;
  assign u to A;
  permission read on doc;
  grant read on doc to B;
}
"""

BAD_SYNTAX = "policy broken { role ; }"

INVALID = """
policy invalid {
  role A;
  hierarchy A > A;
}
"""


@pytest.fixture
def policy_file(tmp_path):
    def write(text):
        path = tmp_path / "policy.rbac"
        path.write_text(text)
        return str(path)

    return write


class TestCheck:
    def test_clean_policy(self, policy_file, capsys):
        assert main(["check", policy_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "valid" in out
        assert "verification: clean" in out
        assert "generated" in out

    def test_invalid_policy(self, policy_file, capsys):
        assert main(["check", policy_file(INVALID)]) == 1
        out = capsys.readouterr().out
        assert "validation issue" in out

    def test_syntax_error(self, policy_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", policy_file(BAD_SYNTAX)])
        assert excinfo.value.code == 1
        assert "syntax error" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "/nonexistent/policy.rbac"])
        assert excinfo.value.code == 2


class TestGraph:
    def test_graph_renders(self, policy_file, capsys):
        assert main(["graph", policy_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "role node(s)" in out
        assert "A -> B" in out


class TestRules:
    def test_whole_pool(self, policy_file, capsys):
        assert main(["rules", policy_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "RULE [ AAR2.A" in out
        assert "CA.checkAccess" in out

    def test_single_role(self, policy_file, capsys):
        assert main(["rules", policy_file(GOOD), "--role", "A"]) == 0
        out = capsys.readouterr().out
        assert "AAR2.A" in out
        assert "AAR2.B" not in out

    def test_unknown_role(self, policy_file, capsys):
        assert main(["rules", policy_file(GOOD), "--role", "Zed"]) == 1


class TestSimulate:
    def test_simulation_summary(self, policy_file, capsys):
        code = main(["simulate", policy_file(GOOD),
                     "--requests", "200", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulated 200 requests" in out
        assert "allowed:" in out
        assert "audit report" in out

    def test_simulation_deterministic(self, policy_file, capsys):
        path = policy_file(GOOD)
        main(["simulate", path, "--requests", "100", "--seed", "5"])
        first = capsys.readouterr().out
        main(["simulate", path, "--requests", "100", "--seed", "5"])
        second = capsys.readouterr().out
        assert first == second

    def test_simulate_trace_explains_denials(self, policy_file, capsys):
        code = main(["simulate", policy_file(GOOD),
                     "--requests", "200", "--seed", "3", "--trace"])
        assert code == 0
        out = capsys.readouterr().out
        # span tree: root event, rule span, ELSE branch, typed error
        assert "--- traces:" in out
        assert "(event)" in out
        assert "(rule)" in out
        assert "outcome='else'" in out
        assert "!OperationDenied" in out or "!ActivationDenied" in out


class TestMetrics:
    def test_prometheus_and_json_series_nonzero(self, policy_file,
                                                capsys):
        code = main(["metrics", policy_file(GOOD),
                     "--requests", "200", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        # Prometheus text: event, rule-firing, and latency series
        assert "# TYPE repro_events_raised_total counter" in out
        assert 'repro_events_raised_total{event="checkAccess"}' in out
        assert "# TYPE repro_rule_firings_total counter" in out
        assert "# TYPE repro_check_access_ns histogram" in out
        assert "repro_check_access_ns_count" in out
        # JSON payload parses and carries the same non-zero series
        import json
        # the JSON dump starts at the first line that is exactly "{"
        json_text = out[out.index("\n{\n") + 1:]
        data = json.loads(json_text)
        raised = sum(s["value"] for s in
                     data["repro_events_raised_total"]["series"])
        fired = sum(s["value"] for s in
                    data["repro_rule_firings_total"]["series"])
        latency = sum(s["count"] for s in
                      data["repro_check_access_ns"]["series"])
        assert raised > 0 and fired > 0 and latency > 0

    def test_format_selection(self, policy_file, capsys):
        path = policy_file(GOOD)
        main(["metrics", path, "--requests", "50", "--format", "prom"])
        prom_only = capsys.readouterr().out
        assert "# TYPE" in prom_only and '"series"' not in prom_only
        main(["metrics", path, "--requests", "50", "--format", "json"])
        json_only = capsys.readouterr().out
        assert "# TYPE" not in json_only and '"series"' in json_only


class TestKernel:
    def test_stats_report(self, policy_file, capsys):
        import json
        assert main(["kernel", policy_file(GOOD)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["coverage_gap"] is None
        assert report["roles"] == 2
        assert report["static_rules"] >= 1
        assert report["decisions"] == {"grant": 0, "deny": 0,
                                       "fallback": 0}
        assert "stream" not in report

    def test_stream_populates_decision_split(self, policy_file,
                                             capsys):
        import json
        code = main(["kernel", policy_file(GOOD),
                     "--requests", "200", "--seed", "3"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["stream"]["requests"] == 200
        answered = (report["decisions"]["grant"]
                    + report["decisions"]["deny"])
        assert answered > 0


class TestExplain:
    def test_grant_narrative_and_exit_zero(self, policy_file, capsys):
        code = main(["explain", policy_file(GOOD), "u", "read", "doc"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GRANT read on doc" in out
        assert "permission via A > B" in out

    def test_deny_exit_one_with_cause(self, policy_file, capsys):
        code = main(["explain", policy_file(GOOD), "u", "read",
                     "nothing"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DENY read on nothing" in out
        assert "deny cause: unknown object" in out

    def test_json_payload(self, policy_file, capsys):
        import json
        code = main(["explain", policy_file(GOOD), "u", "read", "doc",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] == "grant"
        assert payload["path"] == "kernel"
        assert payload["roles"][0]["hierarchy_path"] == ["A", "B"]

    def test_roles_flag_limits_activation(self, policy_file, capsys):
        # activating only B: read on doc still granted (direct grant)
        code = main(["explain", policy_file(GOOD), "u", "read", "doc",
                     "--roles", "B"])
        assert code == 0
        assert "role B" in capsys.readouterr().out

    def test_unknown_user_exit_two(self, policy_file, capsys):
        code = main(["explain", policy_file(GOOD), "ghost", "read",
                     "doc"])
        assert code == 2
        assert "unknown user" in capsys.readouterr().err


class TestFlightrec:
    def test_drive_and_dump(self, policy_file, tmp_path, capsys):
        import json
        out_dir = tmp_path / "dumps"
        code = main(["flightrec", policy_file(GOOD),
                     "--requests", "100", "--out", str(out_dir),
                     "--tail", "2"])
        assert code == 0
        out = capsys.readouterr().out
        summary = json.loads(out.split("--- last")[0])
        assert summary["stream"]["requests"] == 100
        assert summary["recorded"]["total_seen"] > 0
        assert summary["dump"].startswith(str(out_dir))
        dumped = json.loads(open(summary["dump"]).read())
        assert dumped["cause"] == "cli.flightrec"
        assert dumped["records"]

    def test_capacity_override(self, policy_file, capsys):
        import json
        code = main(["flightrec", policy_file(GOOD),
                     "--requests", "200", "--capacity", "16"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["recorded"]["capacity"] == 16
        assert summary["recorded"]["entries"] <= 16
        assert summary["recorded"]["total_seen"] \
            >= summary["recorded"]["entries"]


class TestObsTop:
    def test_top_lists_hot_and_slow_rules(self, policy_file, capsys):
        code = main(["obs", "top", policy_file(GOOD),
                     "--requests", "300", "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hottest rules by firings" in out
        assert "slowest rules by p99 latency" in out
        assert "CA.checkAccess" in out
        assert "samples" in out


class TestCheckTrace:
    def test_check_trace_prints_probe_spans(self, policy_file, capsys):
        assert main(["check", policy_file(GOOD), "--trace"]) == 0
        out = capsys.readouterr().out
        assert "probe traces" in out
        assert "checkAccess (event)" in out
        assert "!OperationDenied" in out  # the guaranteed probe denial


class TestFmt:
    def test_fmt_round_trips(self, policy_file, tmp_path, capsys):
        assert main(["fmt", policy_file(GOOD)]) == 0
        rendered = capsys.readouterr().out
        # the canonical form parses back and is a fixpoint
        path = tmp_path / "canonical.rbac"
        path.write_text(rendered)
        assert main(["fmt", str(path)]) == 0
        assert capsys.readouterr().out == rendered


class TestHygiene:
    CLEAN = """
    policy clean {
      role A; user u; assign u to A;
      permission read on doc; grant read on doc to A;
    }
    """
    DIRTY = """
    policy dirty {
      role A; role Ghost; user u; assign u to A;
      permission read on doc; grant read on doc to A;
      permission unused on nowhere;
    }
    """

    def test_clean_policy_exit_zero(self, policy_file, capsys):
        assert main(["hygiene", policy_file(self.CLEAN)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dirty_policy_exit_one(self, policy_file, capsys):
        assert main(["hygiene", policy_file(self.DIRTY)]) == 1
        out = capsys.readouterr().out
        assert "Ghost" in out
        assert "nowhere" in out

    def test_who_can(self, policy_file, capsys):
        assert main(["hygiene", policy_file(self.CLEAN),
                     "--who-can", "read:doc"]) == 0
        out = capsys.readouterr().out
        assert "u (via A)" in out

    def test_who_can_nobody(self, policy_file, capsys):
        main(["hygiene", policy_file(self.CLEAN),
              "--who-can", "fly:moon"])
        assert "nobody can fly on moon" in capsys.readouterr().out

    def test_who_can_bad_format(self, policy_file, capsys):
        assert main(["hygiene", policy_file(self.CLEAN),
                     "--who-can", "nodcolon"]) == 2


class TestServeLoadgenArgs:
    """Argument validation for the service-plane commands (no server
    is booted: every case exits before binding or connecting)."""

    def test_loadgen_needs_a_port(self, capsys):
        assert main(["loadgen"]) == 2
        assert "need --port or --port-file" in capsys.readouterr().err

    def test_loadgen_unreadable_port_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.txt")
        assert main(["loadgen", "--port-file", missing]) == 2
        assert "cannot read port" in capsys.readouterr().err

    def test_loadgen_bad_levels(self, tmp_path, capsys):
        port_file = tmp_path / "port.txt"
        port_file.write_text("1\n")
        assert main(["loadgen", "--port-file", str(port_file),
                     "--levels", "1,banana"]) == 2
        assert "--levels" in capsys.readouterr().err

    def test_serve_bad_mapping(self, capsys):
        assert main(["serve", "--synthetic", "1", "--users", "5",
                     "--roles", "3", "--map", "not-a-mapping"]) == 2
        assert "--map expects" in capsys.readouterr().err

    def test_serve_bad_shard_spec(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--shard", "no-equals-sign"])
        assert exc.value.code == 2
        assert "--shard expects" in capsys.readouterr().err

    def test_serve_bad_chaos_check_format(self, capsys):
        assert main(["serve", "--synthetic", "1", "--users", "5",
                     "--roles", "3", "--chaos-check", "nope"]) == 2
        assert "--chaos-check expects" in capsys.readouterr().err

    def test_serve_chaos_check_unknown_shard(self, capsys):
        assert main(["serve", "--synthetic", "1", "--users", "5",
                     "--roles", "3",
                     "--chaos-check", "shard99:5:2"]) == 2
        assert "--chaos-check" in capsys.readouterr().err
