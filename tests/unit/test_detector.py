"""Unit tests for the event detector registry and dispatch."""

import pytest

from repro.clock import TimerService, VirtualClock
from repro.errors import DuplicateEventError, EventError, UnknownEventError
from repro.events import EventDetector


@pytest.fixture
def det():
    return EventDetector(TimerService(VirtualClock()))


class TestRegistry:
    def test_define_and_contains(self, det):
        det.define_primitive("E1")
        assert "E1" in det
        assert "E2" not in det
        assert len(det) == 1

    def test_duplicate_rejected(self, det):
        det.define_primitive("E1")
        with pytest.raises(DuplicateEventError):
            det.define_primitive("E1")

    def test_ensure_primitive_idempotent(self, det):
        first = det.ensure_primitive("E1")
        second = det.ensure_primitive("E1")
        assert first is second

    def test_ensure_primitive_refuses_composites(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_or("O", "E1", "E2")
        with pytest.raises(EventError):
            det.ensure_primitive("O")

    def test_unknown_event_raises(self, det):
        with pytest.raises(UnknownEventError):
            det.raise_event("ghost")
        with pytest.raises(UnknownEventError):
            det.subscribe("ghost", lambda occurrence: None)

    def test_composite_cannot_be_raised(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_or("O", "E1", "E2")
        with pytest.raises(EventError):
            det.raise_event("O")

    def test_default_detector_builds_own_timers(self):
        detector = EventDetector()
        detector.define_primitive("E1")
        assert detector.clock.now == 0.0


class TestUndefine:
    def test_undefine_leaf(self, det):
        det.define_primitive("E1")
        det.undefine("E1")
        assert "E1" not in det

    def test_undefine_refuses_when_feeding_composite(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_or("O", "E1", "E2")
        with pytest.raises(EventError):
            det.undefine("E1")

    def test_undefine_composite_detaches_children(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_or("O", "E1", "E2")
        det.undefine("O")
        # children no longer reference the removed node
        assert det.graph_edges() == []
        det.raise_event("E1")  # must not crash

    def test_can_redefine_after_undefine(self, det):
        det.define_primitive("E1")
        det.define_plus("P", "E1", 5.0)
        det.undefine("P")
        det.define_plus("P", "E1", 10.0)
        hits = []
        det.subscribe("P", hits.append)
        det.raise_event("E1")
        det.advance_time(7.0)
        assert hits == []  # old 5s PLUS is gone
        det.advance_time(3.0)
        assert len(hits) == 1


class TestDispatch:
    def test_listeners_called_in_subscription_order(self, det):
        det.define_primitive("E1")
        order = []
        det.subscribe("E1", lambda occurrence: order.append("a"))
        det.subscribe("E1", lambda occurrence: order.append("b"))
        det.raise_event("E1")
        assert order == ["a", "b"]

    def test_unsubscribe(self, det):
        det.define_primitive("E1")
        hits = []
        det.subscribe("E1", hits.append)
        assert det.unsubscribe("E1", hits.append) is True
        assert det.unsubscribe("E1", hits.append) is False
        det.raise_event("E1")
        assert hits == []

    def test_global_listener_sees_composites_too(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_sequence("S", "E1", "E2")
        seen = []
        det.subscribe_all(lambda occurrence: seen.append(occurrence.event))
        det.raise_event("E1")
        det.raise_event("E2")
        assert seen == ["E1", "E2", "S"]

    def test_stats_count_raised_and_detected(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_or("O", "E1", "E2")
        det.raise_event("E1")
        stats = det.stats()
        assert stats["raised"] == 1
        assert stats["detected"] == 2  # E1 and O
        assert stats["defined"] == 3

    def test_graph_edges(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_sequence("S", "E1", "E2")
        assert sorted(det.graph_edges()) == [("E1", "S"), ("E2", "S")]

    def test_reset_state_clears_partial_detections(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_sequence("S", "E1", "E2")
        hits = []
        det.subscribe("S", hits.append)
        det.raise_event("E1")
        det.reset_state()
        det.raise_event("E2")
        assert hits == []

    def test_event_feeding_multiple_parents(self, det):
        det.define_primitive("E1")
        det.define_primitive("E2")
        det.define_or("O", "E1", "E2")
        det.define_and("A", "E1", "E2")
        or_hits, and_hits = [], []
        det.subscribe("O", or_hits.append)
        det.subscribe("A", and_hits.append)
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(or_hits) == 2
        assert len(and_hits) == 1


class TestUndefineTemporalNodes:
    def test_undefined_absolute_event_never_fires(self, det):
        det.define_absolute("TenAM", "10:00:00/*/*/*")
        ghosts = []
        det.subscribe_all(lambda occurrence: ghosts.append(
            occurrence.event))
        det.undefine("TenAM")
        det.advance_time(86400 * 2)
        assert ghosts == []

    def test_undefined_plus_event_never_fires(self, det):
        det.define_primitive("E1")
        det.define_plus("P", "E1", 10.0)
        det.raise_event("E1")
        det.undefine("P")
        seen = []
        det.subscribe_all(lambda occurrence: seen.append(
            occurrence.event))
        det.advance_time(20.0)
        assert "P" not in seen

    def test_reset_state_rearms_absolute(self, det):
        det.define_absolute("TenAM", "10:00:00/*/*/*")
        hits = []
        det.subscribe("TenAM", hits.append)
        det.reset_state()  # reset (not detach) must keep it armed
        det.advance_time(86400)
        assert len(hits) == 1
