"""Unit tests for the access-specification graph (Figure 1)."""

import pytest

from repro.policy.dsl import parse_policy
from repro.policy.graph import PolicyGraph

XYZ = """
policy XYZ {
  role Clerk; role PC; role PM; role AC; role AM;
  hierarchy PM > PC > Clerk;
  hierarchy AM > AC > Clerk;
  ssd PurchaseApproval roles PC, AC;
}
"""


@pytest.fixture
def graph():
    return PolicyGraph(parse_policy(XYZ))


class TestFigureOneStructure:
    def test_one_node_per_role(self, graph):
        assert set(graph.nodes) == {"Clerk", "PC", "PM", "AC", "AM"}

    def test_subscriber_pointers_child_to_parent(self, graph):
        """'Each node has an internal subscriber list that is used to
        point to the parent node.'"""
        assert graph.node("PC").subscribers == ["PM"]
        assert sorted(graph.node("Clerk").subscribers) == ["AC", "PC"]
        assert graph.node("PM").subscribers == []

    def test_children_solid_edges(self, graph):
        assert graph.node("PM").children == ["PC"]
        assert graph.node("PC").children == ["Clerk"]

    def test_ssd_dashed_edges(self, graph):
        assert graph.node("PC").ssd_partners == ["AC"]
        assert graph.node("AC").ssd_partners == ["PC"]
        assert graph.node("PM").ssd_partners == []

    def test_flags_set_from_relationships(self, graph):
        pc_flags = graph.node("PC").flags
        assert pc_flags["hierarchy"] and pc_flags["static_sod"]
        pm_flags = graph.node("PM").flags
        assert pm_flags["hierarchy"] and not pm_flags["static_sod"]

    def test_ssd_flag_propagates_bottom_up(self, graph):
        """'PM inherits the static SoD constraints from PC' — the
        propagation walks the subscriber pointers upward."""
        assert graph.node("PM").flags.get("static_sod_inherited")
        assert graph.node("AM").flags.get("static_sod_inherited")
        assert not graph.node("Clerk").flags.get("static_sod_inherited")

    def test_roots(self, graph):
        assert graph.roots() == ["AM", "PM"]

    def test_effective_ssd_partners_inherited(self, graph):
        """A user assigned PM is authorized for PC, so PM conflicts
        with AC (and AM with PC)."""
        assert graph.effective_ssd_partners("PM") == {"AC"}
        assert graph.effective_ssd_partners("AM") == {"PC"}
        assert graph.effective_ssd_partners("Clerk") == set()

    def test_render_mentions_structure(self, graph):
        text = graph.render()
        assert "5 role node(s)" in text
        assert "PM -> PC" in text
        assert "ssd PurchaseApproval" in text
        assert "(dashed)" in text

    def test_node_describe(self, graph):
        text = graph.node("PC").describe()
        assert "node PC" in text
        assert "hierarchy" in text
        assert "parents->PM" in text
        assert "ssd--AC" in text
