"""Unit tests for declarative constraint descriptors (GTRBAC, CFD,
cardinality)."""

import pytest

from repro.extensions.cardinality import RoleCardinality, UserCardinality
from repro.extensions.cfd import (
    PostConditionDependency,
    PrerequisiteRole,
    TransactionActivation,
)
from repro.gtrbac.constraints import (
    DisablingTimeSoD,
    DurationConstraint,
    EnablingWindow,
    TemporalPolicy,
)
from repro.gtrbac.periodic import PeriodicInterval


class TestDurationConstraint:
    def test_role_wide(self):
        constraint = DurationConstraint("R3", 7200.0)
        assert constraint.user is None
        assert "R3" in constraint.describe()

    def test_per_user(self):
        constraint = DurationConstraint("R3", 7200.0, user="bob")
        assert "bob" in constraint.describe()

    @pytest.mark.parametrize("delta", [0.0, -5.0])
    def test_nonpositive_delta_rejected(self, delta):
        with pytest.raises(ValueError):
            DurationConstraint("R3", delta)


class TestEnablingWindow:
    def test_describe_includes_interval(self):
        window = EnablingWindow("DayDoctor",
                                PeriodicInterval.daily("08:00", "16:00"))
        assert "DayDoctor" in window.describe()
        assert "08:00:00-16:00:00" in window.describe()


class TestDisablingTimeSoD:
    def test_requires_two_roles(self):
        with pytest.raises(ValueError):
            DisablingTimeSoD("c", frozenset({"Nurse"}),
                             PeriodicInterval.always())

    def test_describe(self):
        constraint = DisablingTimeSoD(
            "coverage", frozenset({"Nurse", "Doctor"}),
            PeriodicInterval.daily("10:00", "17:00"))
        assert "Doctor" in constraint.describe()
        assert "Nurse" in constraint.describe()


class TestTemporalPolicy:
    def test_for_role_slices(self):
        policy = TemporalPolicy(
            durations=[DurationConstraint("A", 10.0),
                       DurationConstraint("B", 20.0)],
            windows=[EnablingWindow("A", PeriodicInterval.always())],
            disabling_sod=[DisablingTimeSoD(
                "c", frozenset({"A", "C"}), PeriodicInterval.always())],
        )
        slice_a = policy.for_role("A")
        assert len(slice_a.durations) == 1
        assert len(slice_a.windows) == 1
        assert len(slice_a.disabling_sod) == 1
        slice_b = policy.for_role("B")
        assert len(slice_b.durations) == 1
        assert slice_b.windows == [] and slice_b.disabling_sod == []

    def test_is_empty(self):
        assert TemporalPolicy().is_empty()
        assert not TemporalPolicy(
            durations=[DurationConstraint("A", 1.0)]).is_empty()


class TestCfdDescriptors:
    def test_post_condition_not_reflexive(self):
        with pytest.raises(ValueError):
            PostConditionDependency("SysAdmin", "SysAdmin")
        dep = PostConditionDependency("SysAdmin", "SysAudit")
        assert "SysAudit" in dep.describe()

    def test_prerequisite_not_reflexive(self):
        with pytest.raises(ValueError):
            PrerequisiteRole("A", "A")
        pre = PrerequisiteRole("Doctor", "Nurse")
        assert "Nurse" in pre.describe()

    def test_transaction_not_reflexive(self):
        with pytest.raises(ValueError):
            TransactionActivation("Manager", "Manager")
        txn = TransactionActivation("JuniorEmp", "Manager")
        assert "Manager" in txn.describe()


class TestCardinalityDescriptors:
    def test_role_cardinality(self):
        constraint = RoleCardinality("Programmer", 5)
        assert "5" in constraint.describe()
        with pytest.raises(ValueError):
            RoleCardinality("Programmer", 0)

    def test_user_cardinality(self):
        constraint = UserCardinality("jane", 5)
        assert "jane" in constraint.describe()
        with pytest.raises(ValueError):
            UserCardinality("jane", 0)
