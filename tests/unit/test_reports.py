"""Unit tests for PERIODIC-driven monitoring reports."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.security.reports import PeriodicReporter

POLICY = """
policy watched {
  role A;
  user bob; user mallory;
  assign bob to A;
  permission read on doc;
  grant read on doc to A;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestLifecycle:
    def test_interval_must_be_positive(self, engine):
        with pytest.raises(ValueError):
            PeriodicReporter(engine, 0.0)

    def test_no_reports_before_start(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        engine.advance_time(600.0)
        assert reporter.reports == []

    def test_reports_every_interval_while_running(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        engine.advance_time(185.0)
        assert [r.tick for r in reporter.reports] == [1, 2, 3]

    def test_stop_ends_the_stream(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        engine.advance_time(125.0)
        reporter.stop()
        engine.advance_time(600.0)
        assert len(reporter.reports) == 2

    def test_start_is_idempotent(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        reporter.start()
        engine.advance_time(60.0)
        assert len(reporter.reports) == 1

    def test_restart_after_stop(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        engine.advance_time(60.0)
        reporter.stop()
        reporter.start()
        engine.advance_time(60.0)
        assert len(reporter.reports) == 2


class TestReportContents:
    def test_report_counts_window_activity(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        engine.check_access(sid, "read", "doc")
        mallory_sid = engine.create_session("mallory")
        engine.check_access(mallory_sid, "read", "doc")  # denied
        engine.advance_time(60.0)
        (report,) = reporter.reports
        assert report.denials == 1
        assert report.counts.get("decision.allow") == 1
        assert report.counts.get("session.create") == 2

    def test_windows_do_not_overlap(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        sid = engine.create_session("bob")
        engine.advance_time(60.0)  # report 1 covers the session.create
        engine.advance_time(60.0)  # report 2 covers nothing new
        first, second = reporter.reports
        assert first.counts.get("session.create") == 1
        assert "session.create" not in second.counts

    def test_reports_delivered_to_channels(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        received = []
        reporter.deliver_to(received.append)
        reporter.start()
        engine.advance_time(120.0)
        assert [r.tick for r in received] == [1, 2]

    def test_report_recorded_in_audit(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        engine.advance_time(60.0)
        assert engine.audit.by_kind("security.report")

    def test_describe(self, engine):
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        engine.create_session("bob")
        engine.advance_time(60.0)
        text = reporter.reports[0].describe()
        assert "monitoring report #1" in text
        assert "session.create: 1" in text

    def test_alert_count_included(self, engine):
        from repro.security.monitor import ThresholdPolicy
        engine.monitor.add_policy(ThresholdPolicy(
            name="p", threshold=1, window=30.0, group_by="user"))
        reporter = PeriodicReporter(engine, 60.0)
        reporter.start()
        sid = engine.create_session("mallory")
        engine.check_access(sid, "read", "doc")
        engine.advance_time(60.0)
        assert reporter.reports[0].alerts == 1

    def test_rule_is_active_security_class(self, engine):
        from repro.rules.rule import RuleClass
        PeriodicReporter(engine, 60.0)
        rule = engine.rules.get("ASEC.periodicReport")
        assert rule.classification is RuleClass.ACTIVE_SECURITY
