"""Unit tests for GTRBAC periodic intervals (I, P)."""

import pytest

from repro.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR
from repro.gtrbac.periodic import PeriodicInterval

H = SECONDS_PER_HOUR
DAY = SECONDS_PER_DAY


class TestConstruction:
    def test_daily_from_strings(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        assert interval.start_tod == 10 * H
        assert interval.end_tod == 17 * H

    def test_out_of_range_tod_rejected(self):
        with pytest.raises(ValueError):
            PeriodicInterval(-1.0, 10.0)
        with pytest.raises(ValueError):
            PeriodicInterval(0.0, DAY)

    def test_bounds_must_be_ordered(self):
        with pytest.raises(ValueError):
            PeriodicInterval(0.0, 3600.0, begin=100.0, end=50.0)

    def test_describe(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        assert "10:00:00-17:00:00 daily" in interval.describe()


class TestContains:
    def test_simple_daytime_window(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        assert not interval.contains(9 * H)
        assert interval.contains(10 * H)          # inclusive start
        assert interval.contains(13 * H)
        assert not interval.contains(17 * H)      # exclusive end
        assert not interval.contains(20 * H)

    def test_window_repeats_daily(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        for day in range(4):
            assert interval.contains(day * DAY + 12 * H)
            assert not interval.contains(day * DAY + 3 * H)

    def test_wrapping_night_shift(self):
        interval = PeriodicInterval.daily("22:00", "06:00")
        assert interval.contains(23 * H)
        assert interval.contains(2 * H)
        assert not interval.contains(12 * H)

    def test_full_day_window(self):
        interval = PeriodicInterval.always()
        assert interval.contains(0.0)
        assert interval.contains(13 * H)

    def test_absolute_bounds_respected(self):
        interval = PeriodicInterval(10 * H, 17 * H,
                                    begin=2 * DAY, end=4 * DAY)
        assert not interval.contains(12 * H)           # before begin
        assert interval.contains(2 * DAY + 12 * H)     # inside
        assert not interval.contains(4 * DAY + 12 * H)  # after end


class TestNextBoundary:
    def test_before_window_opens(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        instant, opens = interval.next_boundary(8 * H)
        assert (instant, opens) == (10 * H, True)

    def test_inside_window_closes(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        instant, opens = interval.next_boundary(12 * H)
        assert (instant, opens) == (17 * H, False)

    def test_after_window_rolls_to_tomorrow(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        instant, opens = interval.next_boundary(18 * H)
        assert (instant, opens) == (DAY + 10 * H, True)

    def test_strictly_after(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        instant, opens = interval.next_boundary(10 * H)
        assert (instant, opens) == (17 * H, False)

    def test_no_boundary_after_end_bound(self):
        interval = PeriodicInterval(10 * H, 17 * H, end=DAY)
        instant, _opens = interval.next_boundary(2 * DAY)
        assert instant == float("inf")

    def test_boundaries_alternate(self):
        interval = PeriodicInterval.daily("10:00", "17:00")
        instant, opens = 0.0, None
        states = []
        for _ in range(6):
            instant, opens = interval.next_boundary(instant)
            states.append(opens)
        assert states == [True, False, True, False, True, False]

    def test_wrapping_window_boundaries(self):
        interval = PeriodicInterval.daily("22:00", "06:00")
        instant, opens = interval.next_boundary(12 * H)
        assert (instant, opens) == (22 * H, True)
        instant, opens = interval.next_boundary(23 * H)
        assert (instant, opens) == (DAY + 6 * H, False)
