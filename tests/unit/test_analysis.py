"""Unit tests for policy analysis: explanations, reviews, hygiene."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.analysis import (
    explain_access,
    explain_activation,
    permission_matrix,
    policy_hygiene,
    who_can,
)

POLICY = """
policy analysed {
  role Lead; role Dev; role Intern; role Ghost; role Twin;
  hierarchy Lead > Dev;
  user wei; user ana;
  assign wei to Lead;
  assign ana to Intern;
  permission push on repo;
  permission read on repo;
  permission unused on nowhere;
  grant push on repo to Dev;
  grant read on repo to Intern;
  grant push on repo to Twin;
  grant read on repo to Twin;
  dsd pair roles Dev, Intern;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestExplainAccess:
    def test_allowed_explanation(self, engine):
        sid = engine.create_session("wei")
        engine.add_active_role(sid, "Dev")
        explanation = explain_access(engine, sid, "push", "repo")
        assert explanation.allowed
        assert all(check.passed for check in explanation.checks)
        assert "ALLOWED" in explanation.describe()

    def test_denied_pinpoints_missing_activation(self, engine):
        sid = engine.create_session("wei")  # nothing active
        explanation = explain_access(engine, sid, "push", "repo")
        assert not explanation.allowed
        failure = explanation.first_failure
        assert "ForANY active role" in failure.description
        assert "no active roles" in failure.description

    def test_denied_pinpoints_unknown_operation(self, engine):
        sid = engine.create_session("wei")
        explanation = explain_access(engine, sid, "fly", "repo")
        assert explanation.first_failure.description == "operation IN opsL"

    def test_denied_pinpoints_unknown_session(self, engine):
        explanation = explain_access(engine, "ghost", "push", "repo")
        assert explanation.first_failure.description == \
            "sessionId IN sessionL"

    def test_role_detail_shows_per_role_status(self, engine):
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Intern")
        explanation = explain_access(engine, sid, "push", "repo")
        failure = explanation.first_failure
        assert "Intern(perm=n" in failure.description

    def test_privacy_check_included(self, engine):
        engine.privacy.purposes.add("research")
        from repro.extensions.privacy import ObjectPolicy
        engine.privacy.add_policy(ObjectPolicy("repo", "read", "research"))
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Intern")
        denied = explain_access(engine, sid, "read", "repo")
        assert not denied.allowed
        assert "objectPolicy" in denied.first_failure.description
        allowed = explain_access(engine, sid, "read", "repo",
                                 purpose="research")
        assert allowed.allowed

    def test_explanation_matches_engine_decision(self, engine):
        sid = engine.create_session("wei")
        engine.add_active_role(sid, "Dev")
        for operation, obj in (("push", "repo"), ("read", "repo"),
                               ("fly", "moon")):
            assert explain_access(engine, sid, operation, obj).allowed \
                == engine.check_access(sid, operation, obj)


class TestExplainActivation:
    def test_allowed(self, engine):
        sid = engine.create_session("wei")
        explanation = explain_activation(engine, sid, "Dev")
        assert explanation.allowed

    def test_unauthorized_pinpointed(self, engine):
        sid = engine.create_session("ana")
        explanation = explain_activation(engine, sid, "Lead")
        assert not explanation.allowed
        assert "checkAuthorizationLead" in \
            explanation.first_failure.description

    def test_dsd_pinpointed(self, engine):
        engine.assign_user("ana", "Dev")
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Intern")
        explanation = explain_activation(engine, sid, "Dev")
        assert "checkDynamicSoDSet" in \
            explanation.first_failure.description

    def test_disabled_role_pinpointed(self, engine):
        engine.disable_role("Dev")
        sid = engine.create_session("wei")
        explanation = explain_activation(engine, sid, "Dev")
        assert "roleEnabled" in explanation.first_failure.description

    def test_matches_engine_decision(self, engine):
        from repro.errors import ReproError
        sid = engine.create_session("ana")
        for role in ("Intern", "Lead", "Dev", "Ghost"):
            predicted = explain_activation(engine, sid, role).allowed
            try:
                engine.add_active_role(sid, role)
                actual = True
                engine.drop_active_role(sid, role)
            except ReproError:
                actual = False
            assert predicted == actual, role


class TestWhoCan:
    def test_hierarchy_included(self, engine):
        pushers = who_can(engine, "push", "repo")
        assert "wei" in pushers
        assert pushers["wei"] >= {"Dev", "Lead"}
        assert "ana" not in pushers

    def test_unknown_permission_nobody(self, engine):
        assert who_can(engine, "fly", "moon") == {}

    def test_permission_matrix_effective(self, engine):
        matrix = permission_matrix(engine)
        assert ("push", "repo") in matrix["Lead"]  # via Dev
        assert matrix["Ghost"] == set()


class TestHygiene:
    def test_findings(self, engine):
        report = policy_hygiene(engine)
        assert "Ghost" in report.empty_roles
        assert "Ghost" in report.permissionless_roles
        assert ("unused", "nowhere") in report.unused_permissions
        # Lead inherits exactly Dev's permissions and adds none of its
        # own: an effectively redundant pair
        assert ("Dev", "Lead") in report.redundant_role_pairs
        assert "Twin" in report.empty_roles  # nobody authorized
        assert not report.is_clean()
        text = report.describe()
        assert "Ghost" in text and "nowhere" in text

    def test_clean_policy(self):
        engine = ActiveRBACEngine.from_policy(parse_policy("""
        policy clean {
          role A; user u; assign u to A;
          permission read on doc; grant read on doc to A;
        }"""))
        report = policy_hygiene(engine)
        assert report.is_clean()
        assert report.describe() == "policy hygiene: clean"
