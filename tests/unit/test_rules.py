"""Unit tests for OWTE rule objects."""

import pytest

from repro.clock import Timestamp
from repro.events.occurrence import Occurrence
from repro.rules.rule import (
    Action,
    Condition,
    Granularity,
    OWTERule,
    RuleClass,
    RuleContext,
    RuleOutcome,
    action,
    condition,
)


def make_occurrence(**params):
    return Occurrence("E", Timestamp(0.0, 0), Timestamp(0.0, 1), params)


def make_ctx(rule, **params):
    return RuleContext(occurrence=make_occurrence(**params), rule=rule,
                       manager=None)


class TestOWTERule:
    def test_then_branch_on_all_true(self):
        log = []
        rule = OWTERule(
            name="R", event="E",
            conditions=[Condition("c1", lambda ctx: True),
                        Condition("c2", lambda ctx: True)],
            actions=[Action("a1", lambda ctx: log.append("a1")),
                     Action("a2", lambda ctx: log.append("a2"))],
            alt_actions=[Action("aa", lambda ctx: log.append("aa"))],
        )
        outcome = rule.execute(make_ctx(rule))
        assert outcome is RuleOutcome.THEN
        assert log == ["a1", "a2"]
        assert rule.then_count == 1 and rule.else_count == 0

    def test_else_branch_on_any_false(self):
        log = []
        rule = OWTERule(
            name="R", event="E",
            conditions=[Condition("c1", lambda ctx: True),
                        Condition("c2", lambda ctx: False)],
            actions=[Action("a", lambda ctx: log.append("a"))],
            alt_actions=[Action("aa1", lambda ctx: log.append("aa1")),
                         Action("aa2", lambda ctx: log.append("aa2"))],
        )
        assert rule.execute(make_ctx(rule)) is RuleOutcome.ELSE
        assert log == ["aa1", "aa2"]

    def test_empty_conditions_mean_when_true(self):
        log = []
        rule = OWTERule(name="R", event="E",
                        actions=[Action("a", lambda ctx: log.append(1))])
        assert rule.execute(make_ctx(rule)) is RuleOutcome.THEN
        assert log == [1]

    def test_conditions_short_circuit(self):
        evaluated = []

        def first(ctx):
            evaluated.append("first")
            return False

        def second(ctx):
            evaluated.append("second")
            return True

        rule = OWTERule(name="R", event="E",
                        conditions=[Condition("1", first),
                                    Condition("2", second)])
        rule.execute(make_ctx(rule))
        assert evaluated == ["first"]

    def test_context_exposes_occurrence_params(self):
        rule = OWTERule(name="R", event="E")
        ctx = make_ctx(rule, user="bob")
        assert ctx.get("user") == "bob"
        assert ctx.params == {"user": "bob"}
        assert ctx.get("missing") is None

    def test_scratch_shared_between_condition_and_action(self):
        results = []

        def check(ctx):
            ctx.scratch["token"] = 42
            return True

        rule = OWTERule(
            name="R", event="E",
            conditions=[Condition("c", check)],
            actions=[Action("a", lambda ctx:
                            results.append(ctx.scratch["token"]))],
        )
        rule.execute(make_ctx(rule))
        assert results == [42]

    def test_action_exception_propagates(self):
        rule = OWTERule(
            name="R", event="E",
            conditions=[Condition("c", lambda ctx: False)],
            alt_actions=[Action("boom", lambda ctx: 1 / 0)],
        )
        with pytest.raises(ZeroDivisionError):
            rule.execute(make_ctx(rule))
        assert rule.else_count == 1

    def test_render_matches_paper_layout(self):
        rule = OWTERule(
            name="AAR_1", event="E2",
            conditions=[Condition("user IN userL", lambda ctx: True),
                        Condition("sessionId IN sessionL",
                                  lambda ctx: True)],
            actions=[Action("addSessionRoleR1(sessionId)",
                            lambda ctx: None)],
            alt_actions=[Action(
                'raise error "Access Denied Cannot Activate"',
                lambda ctx: None)],
        )
        text = rule.render()
        assert text.startswith("RULE [ AAR_1")
        assert "ON    E2" in text
        assert "(user IN userL) &&" in text
        assert "THEN  addSessionRoleR1(sessionId)" in text
        assert 'ELSE  raise error "Access Denied Cannot Activate"' in text
        assert text.endswith("]")

    def test_render_when_true_for_no_conditions(self):
        rule = OWTERule(name="C_1", event="PLUS_E",
                        actions=[Action("Closefile", lambda ctx: None)])
        assert "WHEN  TRUE" in rule.render()

    def test_matches_tags(self):
        rule = OWTERule(name="R", event="E",
                        tags={"role:PC": "1", "kind": "activation"})
        assert rule.matches_tags(**{"role:PC": "1"})
        assert rule.matches_tags(kind="activation")
        assert not rule.matches_tags(kind="commit")
        assert not rule.matches_tags(**{"role:AC": "1"})

    def test_default_taxonomy(self):
        rule = OWTERule(name="R", event="E")
        assert rule.classification is RuleClass.ACTIVITY_CONTROL
        assert rule.granularity is Granularity.GLOBALIZED


class TestDecorators:
    def test_condition_decorator(self):
        @condition("x > 0")
        def positive(ctx):
            return ctx.get("x", 0) > 0

        assert isinstance(positive, Condition)
        assert positive.description == "x > 0"
        rule = OWTERule(name="R", event="E", conditions=[positive])
        assert positive(make_ctx(rule, x=1)) is True
        assert positive(make_ctx(rule, x=-1)) is False

    def test_action_decorator(self):
        log = []

        @action("log it")
        def log_it(ctx):
            log.append(ctx.get("x"))

        assert isinstance(log_it, Action)
        rule = OWTERule(name="R", event="E", actions=[log_it])
        rule.execute(make_ctx(rule, x=9))
        assert log == [9]
