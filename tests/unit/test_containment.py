"""Unit: fault-containment primitives.

FailurePolicy verdicts, bounded retry, deadline budgets, the
quarantine/re-arm lifecycle on the rule manager, and the audit log's
own observer containment.
"""

import pytest

from repro.clock import Deadline, TimerService, VirtualClock
from repro.containment import ADVISORY_TAG, FailurePolicy, retry_transient
from repro.errors import (
    DeadlineExceeded,
    RetryExhausted,
    TransientError,
)
from repro.events.detector import EventDetector
from repro.rules.manager import QUARANTINE_TAG, RuleManager
from repro.rules.rule import Action, OWTERule, RuleClass


class TestFailurePolicy:
    def test_enforcement_classes_fail_closed(self):
        policy = FailurePolicy()
        for cls in (RuleClass.ADMINISTRATIVE, RuleClass.ACTIVITY_CONTROL):
            assert not policy.fails_open(
                OWTERule(name="r", event="e", classification=cls))

    def test_active_security_fails_open_by_default(self):
        policy = FailurePolicy()
        assert policy.fails_open(OWTERule(
            name="r", event="e",
            classification=RuleClass.ACTIVE_SECURITY))

    def test_advisory_tag_overrides_classification(self):
        policy = FailurePolicy()
        assert policy.fails_open(OWTERule(
            name="r", event="e", tags={ADVISORY_TAG: "1"},
            classification=RuleClass.ACTIVITY_CONTROL))

    def test_custom_fail_open_set(self):
        policy = FailurePolicy(fail_open_classes=frozenset())
        assert not policy.fails_open(OWTERule(
            name="r", event="e",
            classification=RuleClass.ACTIVE_SECURITY))


class TestRetryTransient:
    def test_succeeds_first_try(self):
        assert retry_transient(lambda: 42) == 42

    def test_retries_transient_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientError("blip")
            return "ok"

        retried = []
        assert retry_transient(
            flaky, attempts=3,
            on_retry=lambda n, exc: retried.append(n)) == "ok"
        assert len(attempts) == 3
        assert retried == [1, 2]

    def test_exhaustion_raises_retry_exhausted(self):
        def always_fails():
            raise TransientError("down")

        with pytest.raises(RetryExhausted) as excinfo:
            retry_transient(always_fails, attempts=2)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last, TransientError)
        assert isinstance(excinfo.value.__cause__, TransientError)

    def test_non_transient_errors_propagate_immediately(self):
        calls = []

        def fails_hard():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            retry_transient(fails_hard, attempts=5)
        assert len(calls) == 1

    def test_backoff_schedule_is_bounded(self):
        slept = []

        def always_fails():
            raise TransientError("down")

        with pytest.raises(RetryExhausted):
            retry_transient(always_fails, attempts=5, base_delay=0.1,
                            factor=2.0, max_delay=0.25,
                            sleep=slept.append)
        assert slept == [0.1, 0.2, 0.25, 0.25]

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            retry_transient(lambda: 1, attempts=0)


class TestDeadline:
    def test_virtual_budget_trips_on_clock_advance(self):
        clock = VirtualClock()
        deadline = Deadline(clock, virtual_budget=5.0)
        assert deadline.exceeded() is None
        clock.advance(6.0)
        assert deadline.exceeded() == "virtual"
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("ruleX")
        assert excinfo.value.reason == "virtual"
        assert "ruleX" in str(excinfo.value)

    def test_wall_budget_uses_injectable_source(self):
        ticks = [0.0]
        deadline = Deadline(wall_budget=1.0, wall=lambda: ticks[0])
        assert deadline.exceeded() is None
        ticks[0] = 2.0
        assert deadline.exceeded() == "wall"

    def test_remaining_reports_tightest_budget(self):
        clock = VirtualClock()
        ticks = [0.0]
        deadline = Deadline(clock, virtual_budget=10.0, wall_budget=3.0,
                            wall=lambda: ticks[0])
        assert deadline.remaining() == 3.0
        ticks[0] = 8.0  # wall axis 5s overdrawn, virtual still has 10s
        assert deadline.remaining() == -5.0

    def test_unbounded_deadline_never_trips(self):
        deadline = Deadline()
        assert deadline.exceeded() is None
        assert deadline.remaining() is None
        deadline.check()  # no-op

    def test_virtual_budget_requires_clock(self):
        with pytest.raises(ValueError):
            Deadline(virtual_budget=1.0)


def _manager(**policy_kwargs):
    clock = VirtualClock()
    detector = EventDetector(TimerService(clock))
    detector.define_primitive("e")
    manager = RuleManager(detector,
                          failure_policy=FailurePolicy(**policy_kwargs))
    return clock, detector, manager


class TestQuarantineLifecycle:
    def test_streak_resets_on_clean_firing(self):
        _, detector, manager = _manager(quarantine_threshold=3)
        flag = {"boom": True}
        manager.add(OWTERule(
            name="Flaky", event="e",
            actions=[Action("maybe", lambda ctx:
                            (_ for _ in ()).throw(RuntimeError("x"))
                            if flag["boom"] else None)]))
        from repro.errors import RuleExecutionError
        for _ in range(2):
            with pytest.raises(RuleExecutionError):
                detector.raise_event("e")
        assert manager.get("Flaky").consecutive_faults == 2
        flag["boom"] = False
        detector.raise_event("e")  # clean firing
        assert manager.get("Flaky").consecutive_faults == 0
        assert not manager.get("Flaky").quarantined

    def test_quarantine_tags_and_disables(self):
        _, detector, manager = _manager()
        manager.add(OWTERule(name="R", event="e"))
        rule = manager.quarantine("R", reason="test")
        assert rule.quarantined and not rule.enabled
        assert rule.tags[QUARANTINE_TAG] == "1"
        assert manager.by_tags(**{QUARANTINE_TAG: "1"}) == [rule]
        assert manager.quarantined_rules() == [rule]
        assert manager.summary()["quarantined"] == 1
        # idempotent
        epoch = rule.quarantine_epoch
        manager.quarantine("R")
        assert rule.quarantine_epoch == epoch

    def test_rearm_clears_tag_and_streak(self):
        _, _, manager = _manager()
        manager.add(OWTERule(name="R", event="e"))
        manager.get("R").consecutive_faults = 5
        manager.quarantine("R")
        assert manager.rearm("R") is True
        rule = manager.get("R")
        assert rule.enabled and not rule.quarantined
        assert rule.consecutive_faults == 0
        assert QUARANTINE_TAG not in rule.tags
        assert manager.by_tags(**{QUARANTINE_TAG: "1"}) == []
        # re-arming a healthy rule reports False
        assert manager.rearm("R") is False

    def test_removed_rule_never_rearmed_by_stale_timer(self):
        clock, detector, manager = _manager(rearm_after=10.0)
        manager.add(OWTERule(name="R", event="e"))
        manager.quarantine("R")
        manager.remove("R")
        detector.timers.advance(11.0)  # stale timer fires harmlessly
        assert "R" not in manager


class TestIndexHygiene:
    def test_remove_unsubscribes_dead_dispatcher(self):
        _, detector, manager = _manager()
        manager.add(OWTERule(name="R", event="e"))
        assert detector.fanout("e") == 1
        manager.remove("R")
        assert detector.fanout("e") == 0
        assert manager.rules_for_event("e") == []
        # a fresh add re-subscribes cleanly
        manager.add(OWTERule(name="R2", event="e"))
        assert detector.fanout("e") == 1

    def test_remove_drops_empty_tag_buckets(self):
        _, _, manager = _manager()
        manager.add(OWTERule(name="R", event="e", tags={"k": "v"}))
        assert manager.by_tags(k="v")
        manager.remove("R")
        assert ("k", "v") not in manager._by_tag

    def test_remove_by_tags_cleans_everything(self):
        _, detector, manager = _manager()
        detector.define_primitive("e2")
        manager.add(OWTERule(name="A", event="e", tags={"gen": "1"}))
        manager.add(OWTERule(name="B", event="e2", tags={"gen": "1"}))
        removed = manager.remove_by_tags(gen="1")
        assert [r.name for r in removed] == ["A", "B"]
        assert len(manager) == 0
        assert detector.fanout("e") == 0
        assert detector.fanout("e2") == 0


class TestAuditObserverContainment:
    def test_raising_audit_observer_is_contained(self):
        from repro.security.audit import AuditLog

        log = AuditLog(VirtualClock())
        seen = []
        log.observe(lambda entry: (_ for _ in ()).throw(
            RuntimeError("shipper down")))
        log.observe(lambda entry: seen.append(entry.kind))
        entry = log.record("decision.allow", user="alice")
        assert entry.kind == "decision.allow"
        assert seen == ["decision.allow"]  # later observer still ran
        assert log.observer_faults == 1
