"""Unit tests for decision provenance: the flight recorder ring, the
auto-dump triggers, the fallback-reason accounting, and the explain
API's derivation structure."""

from __future__ import annotations

import json

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.errors import OperationDenied
from repro.obs import FALLBACK_REASONS, FlightRecorder

POLICY = """
policy provtest {
  role PM; role PC; role Clerk;
  hierarchy PM > PC > Clerk;
  user alice; user bob;
  assign alice to PM;
  assign bob to Clerk;
  permission read on report; permission write on report;
  permission write on budget;
  grant read on report to Clerk;
  grant write on report to PC;
  grant write on budget to PM;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine(parse_policy(POLICY))


@pytest.fixture
def alice(engine):
    sid = engine.create_session("alice")
    engine.add_active_role(sid, "PM")
    return sid


# ==========================================================================
# the ring buffer itself
# ==========================================================================


class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_empty_recorder(self):
        flight = FlightRecorder(capacity=4)
        assert len(flight) == 0
        assert flight.seq == 0
        assert flight.snapshot() == []
        assert flight.tail() == []

    def test_records_decisions_and_firings(self):
        flight = FlightRecorder(capacity=8)
        flight.note_decision(1.0, "kernel", "s1", "alice", "read",
                             "report", "grant", rule="CA.checkAccess")
        flight.note_firing(2.0, "CA.checkAccess", "checkAccess", "then")
        records = flight.snapshot()
        assert [r["kind"] for r in records] == ["decision", "firing"]
        decision = records[0]
        assert decision["seq"] == 1
        assert decision["path"] == "kernel"
        assert decision["user"] == "alice"
        assert decision["decision"] == "grant"
        assert decision["rule"] == "CA.checkAccess"
        assert decision["deny_cause"] is None
        firing = records[1]
        assert firing["seq"] == 2
        assert firing["outcome"] == "then"
        assert firing["error"] is None

    def test_ring_wraps_and_keeps_the_newest(self):
        flight = FlightRecorder(capacity=3)
        for step in range(10):
            flight.note_firing(float(step), f"r{step}", "e", "then")
        assert flight.seq == 10
        assert len(flight) == 3
        records = flight.snapshot()
        assert [r["seq"] for r in records] == [8, 9, 10]
        assert [r["rule"] for r in records] == ["r7", "r8", "r9"]

    def test_tail_returns_newest_oldest_first(self):
        flight = FlightRecorder(capacity=16)
        for step in range(6):
            flight.note_firing(float(step), f"r{step}", "e", "then")
        assert [r["seq"] for r in flight.tail(2)] == [5, 6]

    def test_disabled_recorder_drops_everything(self):
        flight = FlightRecorder(capacity=4)
        flight.enabled = False
        flight.note_decision(1.0, "kernel", "s", "u", "op", "ob", "grant")
        flight.note_firing(1.0, "r", "e", "then")
        assert flight.seq == 0
        assert flight.snapshot() == []

    def test_dump_writes_fsynced_json(self, tmp_path):
        flight = FlightRecorder(capacity=4)
        flight.note_decision(1.0, "interpreted", "s1", "bob", "write",
                             "budget", "deny", reason="disabled",
                             cause="OperationDenied")
        path = flight.dump("unit.test", directory=str(tmp_path),
                           context={"note": "hello"})
        payload = json.loads((tmp_path / path.split("/")[-1]).read_text())
        assert payload["cause"] == "unit.test"
        assert payload["seq"] == 1
        assert payload["capacity"] == 4
        assert payload["context"] == {"note": "hello"}
        [record] = payload["records"]
        assert record["fallback_reason"] == "disabled"
        assert record["deny_cause"] == "OperationDenied"
        assert flight.dumps == 1

    def test_dump_sanitizes_cause_into_the_filename(self, tmp_path):
        flight = FlightRecorder(capacity=2)
        path = flight.dump("weird/cause name!", directory=str(tmp_path))
        assert path.endswith("flightrec-0001-weird_cause_name_.json")

    def test_dump_env_var_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHTREC_DIR", str(tmp_path))
        flight = FlightRecorder(capacity=2)
        path = flight.dump("envtest")
        assert path.startswith(str(tmp_path))


# ==========================================================================
# engine integration: both decision paths land in the ring
# ==========================================================================


class TestEngineRecording:
    def test_kernel_path_decisions_recorded(self, engine, alice):
        assert engine.check_access(alice, "write", "budget")
        assert not engine.check_access(alice, "write", "nothing")
        decisions = [r for r in engine.flight.snapshot()
                     if r["kind"] == "decision"]
        grant = next(r for r in decisions if r["decision"] == "grant")
        assert grant["path"] == "kernel"
        assert grant["rule"] == "CA.checkAccess"
        assert grant["user"] == "alice"
        deny = next(r for r in decisions if r["decision"] == "deny")
        assert deny["path"] == "kernel"
        assert deny["deny_cause"] == "OperationDenied"

    def test_interpreted_path_records_fallback_reason(self, engine,
                                                      alice):
        engine.kernel_enabled = False
        assert engine.check_access(alice, "write", "budget")
        decisions = [r for r in engine.flight.snapshot()
                     if r["kind"] == "decision"]
        record = decisions[-1]
        assert record["path"] == "interpreted"
        assert record["fallback_reason"] == "disabled"
        assert record["decision"] == "grant"

    def test_interpreted_denial_captures_typed_cause(self, engine,
                                                     alice):
        engine.kernel_enabled = False
        with pytest.raises(OperationDenied):
            engine.require_access(alice, "write", "nothing")
        record = engine.flight.snapshot()[-1]
        assert record["kind"] == "decision"
        assert record["decision"] == "deny"
        assert record["deny_cause"].startswith("OperationDenied")

    def test_rule_firings_recorded_on_interpreted_path(self, engine):
        engine.kernel_enabled = False
        sid = engine.create_session("bob")
        firings = [r for r in engine.flight.snapshot()
                   if r["kind"] == "firing"]
        assert any(r["event"] == "createSession" for r in firings)
        assert sid in engine.model.sessions

    def test_disabled_flight_records_nothing(self, engine, alice):
        engine.flight.enabled = False
        before = engine.flight.seq  # fixture firings already recorded
        engine.check_access(alice, "write", "budget")
        engine.kernel_enabled = False
        engine.check_access(alice, "write", "budget")
        assert engine.flight.seq == before
        assert engine.dump_flight("manual") is None

    def test_health_reports_dump_count(self, engine):
        assert engine.health()["flightrec_dumps"] == 0


# ==========================================================================
# auto-dump triggers
# ==========================================================================


class TestAutoDump:
    def test_quarantine_trip_dumps_the_ring(self, engine, alice,
                                            tmp_path):
        engine.flight.dump_dir = str(tmp_path)
        engine.check_access(alice, "write", "budget")
        engine.rules.quarantine("CA.checkAccess", reason="unit-test")
        dumps = list(tmp_path.glob("flightrec-*.json"))
        assert len(dumps) == 1
        payload = json.loads(dumps[0].read_text())
        assert payload["cause"] == "rule.quarantine.CA.checkAccess"
        assert any(r["kind"] == "decision" for r in payload["records"])
        audited = engine.audit.by_kind("flightrec.dump")
        assert audited and audited[0].detail["path"] == str(dumps[0])

    def test_lockout_dumps_the_ring(self, engine, tmp_path):
        engine.flight.dump_dir = str(tmp_path)
        engine.lock_user("bob")
        dumps = list(tmp_path.glob("flightrec-*.json"))
        assert len(dumps) == 1
        assert json.loads(dumps[0].read_text())["cause"] \
            == "security.lockout.bob"
        assert engine.health()["flightrec_dumps"] == 1

    def test_dump_context_includes_health(self, engine, tmp_path):
        path = engine.dump_flight("manual.check",
                                  directory=str(tmp_path))
        payload = json.loads(open(path).read())
        assert payload["context"]["health"]["status"] in ("ok",
                                                          "degraded")


# ==========================================================================
# fallback-reason accounting
# ==========================================================================


class TestFallbackReasons:
    def test_taxonomy_is_pinned(self):
        assert FALLBACK_REASONS == (
            "context_role", "privacy", "stale_privacy", "quarantine",
            "instrumented", "coverage", "unknown_entity", "deadline",
            "diagnostics", "observers", "disabled")

    def _reasons(self, engine):
        return {labels["reason"]: child.value
                for labels, child in engine.obs.kernel_fallbacks.series()
                if child.value}

    def test_disabled_kernel_counts_as_disabled(self, engine, alice):
        engine.kernel_enabled = False
        engine.check_access(alice, "write", "budget")
        assert self._reasons(engine) == {"disabled": 1}

    def test_diagnostics_bypass_counted(self, engine, alice):
        engine.obs.set_timing_interval(1)
        engine.check_access(alice, "write", "budget")
        assert self._reasons(engine) == {"diagnostics": 1}

    def test_deadline_bypass_counted(self, engine, alice):
        from repro.clock import Deadline
        engine.check_access(alice, "write", "budget",
                            deadline=Deadline(wall_budget=10.0))
        assert self._reasons(engine) == {"deadline": 1}

    def test_kernel_internal_reason_surfaces(self, engine, alice):
        engine.rules.quarantine("CA.checkAccess", reason="unit-test")
        # fail-closed: the check denies, and the kernel punts with the
        # quarantine reason before the interpreted pipeline denies
        assert not engine.check_access(alice, "write", "budget")
        assert self._reasons(engine) == {"quarantine": 1}

    def test_kernel_answered_checks_count_nothing(self, engine, alice):
        engine.check_access(alice, "write", "budget")
        assert self._reasons(engine) == {}


# ==========================================================================
# the explain API
# ==========================================================================


class TestExplain:
    def test_grant_via_direct_permission(self, engine, alice):
        explanation = engine.explain(alice, "write", "budget")
        assert explanation.allowed
        assert explanation.path == "kernel"
        assert explanation.rule == "CA.checkAccess"
        [role] = explanation.roles
        assert role["role"] == "PM"
        assert role["grants"]
        assert role["hierarchy_path"] == ["PM"]

    def test_grant_via_hierarchy_chain(self, engine, alice):
        explanation = engine.explain(alice, "read", "report")
        assert explanation.allowed
        [role] = explanation.roles
        assert role["source_role"] == "Clerk"
        assert role["hierarchy_path"] == ["PM", "PC", "Clerk"]
        assert "permission via PM > PC > Clerk" \
            in explanation.describe()

    def test_deny_no_permission(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        explanation = engine.explain(sid, "write", "budget")
        assert not explanation.allowed
        assert explanation.deny_cause \
            == "no active role holds the permission"
        assert explanation.to_dict()["verdict"] == "deny"

    def test_deny_unknown_object_in_clause_order(self, engine, alice):
        explanation = engine.explain(alice, "write", "nothing")
        assert not explanation.allowed
        assert explanation.deny_cause == "unknown object 'nothing'"

    def test_deny_unknown_session(self, engine):
        explanation = engine.explain("ghost", "read", "report")
        assert not explanation.allowed
        assert explanation.deny_cause == "unknown session"
        assert explanation.user is None

    def test_deny_locked_user(self, engine, alice):
        # add to the locked set directly: lock_user also destroys the
        # user's sessions, which would surface as "unknown session"
        engine.locked_users.add("alice")
        explanation = engine.explain(alice, "write", "budget")
        assert not explanation.allowed
        assert explanation.deny_cause == "user locked by active security"

    def test_disabled_kernel_explains_interpreted_path(self, engine,
                                                       alice):
        engine.kernel_enabled = False
        explanation = engine.explain(alice, "write", "budget")
        assert explanation.allowed
        assert explanation.path == "interpreted"
        assert explanation.fallback_reason == "disabled"

    def test_quarantined_rule_fails_closed(self, engine, alice):
        engine.rules.quarantine("CA.checkAccess", reason="unit-test")
        explanation = engine.explain(alice, "write", "budget")
        assert not explanation.allowed
        assert "fail closed" in explanation.deny_cause
        assert "CA.checkAccess" in explanation.deny_cause

    def test_explain_is_read_only(self, engine, alice):
        before = engine.kernel().stats()["fallbacks"]
        seq_before = engine.flight.seq
        decisions_before = {
            path: engine.obs.kernel_decisions.labels(path).value
            for path in ("grant", "deny", "fallback")}
        engine.explain(alice, "write", "budget")
        engine.explain(alice, "write", "nothing")
        assert engine.kernel().stats()["fallbacks"] == before
        assert decisions_before == {
            path: engine.obs.kernel_decisions.labels(path).value
            for path in ("grant", "deny", "fallback")}
        # explanations are not decisions: the ring is untouched
        assert engine.flight.seq == seq_before

    def test_context_gate_explained(self):
        spec = parse_policy("""
        policy ctx {
          role Field;
          user u0;
          assign u0 to Field;
          permission read on secret;
          grant read on secret to Field;
          context Field requires network == "secure" for access;
        }
        """)
        engine = ActiveRBACEngine(spec)
        sid = engine.create_session("u0")
        engine.add_active_role(sid, "Field")
        engine.context.set("network", "insecure")
        explanation = engine.explain(sid, "read", "secret")
        assert not explanation.allowed
        [role] = explanation.roles
        assert role["context_gated"]
        assert not role["context_ok"]
        assert "context constraint not satisfied" \
            in explanation.deny_cause
        assert explanation.fallback_reason == "context_role"
        engine.context.set("network", "secure")
        assert engine.explain(sid, "read", "secret").allowed

    def test_privacy_explained(self):
        spec = parse_policy("""
        policy priv {
          role Desk;
          user u0;
          assign u0 to Desk;
          permission read on secret;
          grant read on secret to Desk;
          purpose ops;
          object_policy read on secret for ops;
        }
        """)
        engine = ActiveRBACEngine(spec)
        sid = engine.create_session("u0")
        engine.add_active_role(sid, "Desk")
        denied = engine.explain(sid, "read", "secret",
                                purpose="marketing")
        assert not denied.allowed
        assert denied.privacy == {"allowed": False, "regulated": True}
        assert "privacy policy denies" in denied.deny_cause
        granted = engine.explain(sid, "read", "secret", purpose="ops")
        assert granted.allowed
        assert granted.privacy["allowed"]
