"""Unit tests for context-aware constraints and the context provider."""

import pytest

from repro.clock import TimerService, VirtualClock
from repro.events import EventDetector
from repro.extensions.context import (
    CONTEXT_UPDATE_EVENT,
    ContextConstraint,
    ContextOp,
    ContextProvider,
)


class TestContextOp:
    @pytest.mark.parametrize("op,left,right,expected", [
        (ContextOp.EQ, "secure", "secure", True),
        (ContextOp.EQ, "insecure", "secure", False),
        (ContextOp.NE, "insecure", "secure", True),
        (ContextOp.LT, 3, 5, True),
        (ContextOp.LE, 5, 5, True),
        (ContextOp.GT, 5, 3, True),
        (ContextOp.GE, 2, 3, False),
        (ContextOp.IN, "ward", ["ward", "icu"], True),
        (ContextOp.NOT_IN, "lobby", ["ward", "icu"], True),
    ])
    def test_apply(self, op, left, right, expected):
        assert op.apply(left, right) is expected

    def test_type_mismatch_is_false_not_error(self):
        assert ContextOp.LT.apply(None, 5) is False
        assert ContextOp.GE.apply("text", 5) is False


class TestContextProvider:
    def test_direct_set_get(self):
        provider = ContextProvider({"network": "secure"})
        assert provider.get("network") == "secure"
        provider.set("network", "insecure")
        assert provider.get("network") == "insecure"
        assert provider.update_count == 1

    def test_missing_returns_default(self):
        provider = ContextProvider()
        assert provider.get("ghost") is None
        assert provider.get("ghost", "fallback") == "fallback"

    def test_updates_via_external_events(self):
        detector = EventDetector(TimerService(VirtualClock()))
        provider = ContextProvider()
        provider.attach(detector)
        detector.raise_event(CONTEXT_UPDATE_EVENT,
                             name="location", value="icu")
        assert provider.get("location") == "icu"

    def test_update_event_without_name_ignored(self):
        detector = EventDetector(TimerService(VirtualClock()))
        provider = ContextProvider()
        provider.attach(detector)
        detector.raise_event(CONTEXT_UPDATE_EVENT, value="orphan")
        assert provider.snapshot() == {}

    def test_snapshot_is_a_copy(self):
        provider = ContextProvider({"a": 1})
        snap = provider.snapshot()
        snap["a"] = 99
        assert provider.get("a") == 1


class TestContextConstraint:
    def test_satisfied_against_provider(self):
        provider = ContextProvider({"network": "secure"})
        constraint = ContextConstraint(
            role="FileUser", variable="network",
            op=ContextOp.EQ, value="secure", applies_to="access")
        assert constraint.satisfied(provider)
        provider.set("network", "insecure")
        assert not constraint.satisfied(provider)

    def test_applies_to_validation(self):
        with pytest.raises(ValueError):
            ContextConstraint(role="R", variable="v",
                              op=ContextOp.EQ, value=1,
                              applies_to="everything")

    def test_describe(self):
        constraint = ContextConstraint(
            role="FileUser", variable="network",
            op=ContextOp.EQ, value="secure")
        text = constraint.describe()
        assert "network" in text and "secure" in text
