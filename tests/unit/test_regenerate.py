"""Unit tests for policy change and rule regeneration."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.gtrbac.periodic import PeriodicInterval
from repro.synthesis.regenerate import (
    PolicyEditor,
    affected_roles,
    full_regeneration,
    regenerate_roles,
    simulate_manual_edit,
)

POLICY = """
policy p {
  role A; role B; role C; role D;
  role Nurse; role Doctor;
  user bob;
  hierarchy A > B;
  disabling_sod cov roles Nurse, Doctor daily 10:00 to 17:00;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestAffectedRoles:
    def test_independent_role_stays_alone(self, engine):
        assert affected_roles(engine, {"C"}) == {"C"}

    def test_cross_role_constraint_pulls_partner(self, engine):
        assert affected_roles(engine, {"Nurse"}) == {"Nurse", "Doctor"}

    def test_closure_is_transitive(self, engine):
        editor = PolicyEditor(engine)
        editor.add_transaction("Doctor", "C")  # Doctor depends on C
        closure = affected_roles(engine, {"Nurse"})
        assert closure == {"Nurse", "Doctor", "C"}


class TestRegenerateRoles:
    def test_only_seed_roles_touched(self, engine):
        pool_before = {rule.name for rule in engine.rules}
        report = regenerate_roles(engine, {"C"})
        assert report.affected_roles == {"C"}
        assert all("C" in name for name in report.removed_rules)
        assert {rule.name for rule in engine.rules} == pool_before

    def test_cross_role_rules_regenerated_once(self, engine):
        report = regenerate_roles(engine, {"Nurse"})
        assert report.affected_roles == {"Nurse", "Doctor"}
        # DR rules for both roles removed and re-added exactly once
        assert report.removed_rules.count("DR.Nurse") == 1
        assert report.added_rules.count("DR.Nurse") == 1
        assert report.added_rules.count("DR.Doctor") == 1

    def test_report_describe(self, engine):
        report = regenerate_roles(engine, {"C"})
        assert "C" in report.describe()
        assert report.rules_touched > 0

    def test_regeneration_recorded_in_audit(self, engine):
        regenerate_roles(engine, {"C"})
        assert engine.audit.by_kind("admin.regenerate")

    def test_enforcement_still_works_after_regen(self, engine):
        engine.add_user("alice")
        engine.assign_user("alice", "C")
        regenerate_roles(engine, {"C"})
        sid = engine.create_session("alice")
        engine.add_active_role(sid, "C")
        assert "C" in engine.model.session_roles(sid)


class TestFullRegeneration:
    def test_touches_every_role(self, engine):
        report = full_regeneration(engine)
        assert report.affected_roles == set(engine.policy.roles)
        assert len(report.removed_rules) == len(report.added_rules)

    def test_pool_identical_after(self, engine):
        before = {rule.name for rule in engine.rules}
        full_regeneration(engine)
        assert {rule.name for rule in engine.rules} == before


class TestManualEditSimulation:
    def test_scan_cost_is_pool_size(self, engine):
        estimate = simulate_manual_edit(engine, {"C"})
        assert estimate.rules_scanned == len(engine.rules)
        assert estimate.rules_edited == 5  # C's localized rule suite
        assert estimate.expected_errors == pytest.approx(5 * 0.05)
        assert estimate.effort_units == len(engine.rules) + 50.0

    def test_cross_role_change_edits_more(self, engine):
        solo = simulate_manual_edit(engine, {"C"})
        cross = simulate_manual_edit(engine, {"Nurse"})
        assert cross.rules_edited > solo.rules_edited


class TestPolicyEditor:
    def test_day_doctor_shift_change(self, engine):
        """The paper's §5 example: change the shift from 8-16 to 9-17."""
        editor = PolicyEditor(engine)
        editor.set_enabling_window(
            "Doctor", PeriodicInterval.daily("08:00", "16:00"))
        report = editor.set_enabling_window(
            "Doctor", PeriodicInterval.daily("09:00", "17:00"))
        assert "Doctor" in report.affected_roles
        windows = [w for w in engine.policy.enabling_windows
                   if w.role == "Doctor"]
        assert len(windows) == 1
        assert windows[0].interval.start_tod == 9 * 3600

    def test_shift_change_behaviour(self, engine):
        engine.add_user("alice")
        engine.assign_user("alice", "D")
        editor = PolicyEditor(engine)
        editor.set_enabling_window(
            "D", PeriodicInterval.daily("08:00", "16:00"))
        engine.advance_time(8.5 * 3600)  # 08:30: enabled under old shift
        assert engine.model.is_role_enabled("D")
        editor.set_enabling_window(
            "D", PeriodicInterval.daily("09:00", "17:00"))
        # regeneration re-evaluates: 08:30 is outside the new shift
        assert not engine.model.is_role_enabled("D")
        engine.advance_time(3600)  # 09:30
        assert engine.model.is_role_enabled("D")

    def test_clear_enabling_window(self, engine):
        editor = PolicyEditor(engine)
        editor.set_enabling_window(
            "D", PeriodicInterval.daily("08:00", "16:00"))
        assert not engine.model.is_role_enabled("D")  # midnight
        editor.clear_enabling_window("D")
        assert engine.model.is_role_enabled("D")
        assert not [w for w in engine.policy.enabling_windows
                    if w.role == "D"]

    def test_set_and_clear_duration(self, engine):
        editor = PolicyEditor(engine)
        editor.set_duration("C", 100.0)
        assert "TSOD.C" in engine.rules
        editor.set_duration("C", 200.0)  # replace, not duplicate
        assert len([d for d in engine.policy.durations
                    if d.role == "C"]) == 1
        editor.clear_duration("C")
        assert "TSOD.C" not in engine.rules

    def test_add_remove_disabling_sod(self, engine):
        from repro.gtrbac.constraints import DisablingTimeSoD
        editor = PolicyEditor(engine)
        constraint = DisablingTimeSoD(
            "pair", frozenset({"A", "C"}), PeriodicInterval.always())
        report = editor.add_disabling_sod(constraint)
        assert report.affected_roles >= {"A", "C"}
        assert engine.rules.get("DR.A").matches_tags(**{"role:C": "1"})
        editor.remove_disabling_sod("pair")
        assert not engine.rules.get("DR.A").matches_tags(**{"role:C": "1"})

    def test_add_prerequisite(self, engine):
        editor = PolicyEditor(engine)
        editor.add_prerequisite("C", "D")
        text = engine.rules.get("AAR1.C").render()
        assert "prerequisiteRoles" in text

    def test_add_post_condition(self, engine):
        editor = PolicyEditor(engine)
        editor.add_post_condition("A", "B")
        assert "enableRoleB" in engine.rules.get("ER.A").render()

    def test_add_transaction(self, engine):
        editor = PolicyEditor(engine)
        editor.add_transaction("C", "D")
        assert "ASEC.D" in engine.rules

    def test_set_role_cardinality(self, engine):
        editor = PolicyEditor(engine)
        editor.set_role_cardinality("C", 2)
        assert engine.model.roles["C"].max_active_users == 2
        assert "Cardinality" in engine.rules.get("CC.C").render()

    def test_set_user_max_roles_no_regen(self, engine):
        editor = PolicyEditor(engine)
        pool = {rule.name for rule in engine.rules}
        editor.set_user_max_roles("bob", 1)
        assert engine.model.users["bob"].max_active_roles == 1
        assert {rule.name for rule in engine.rules} == pool

    def test_add_context_constraint(self, engine):
        from repro.extensions.context import ContextConstraint, ContextOp
        editor = PolicyEditor(engine)
        editor.add_context_constraint(ContextConstraint(
            "C", "location", ContextOp.EQ, "office"))
        assert "contextConstraints" in engine.rules.get("AAR1.C").render()
