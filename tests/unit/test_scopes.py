"""The S-A-O-C scope layer: tree, model, kernel, engine, config, serve.

Covers the normalized decision path end to end: the scope tree's
containment mechanics, scoped grants and assignment bounds in the
reference model, kernel/interpreted parity, engine administration and
staleness, the config pipeline (DSL round-trip, loader, validator,
differ, lifecycle dispatch), the serve config watcher, and federation
map sync.
"""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.config.differ import diff_specs
from repro.errors import AdministrationError, DuplicateEntityError
from repro.federation import RoleMapping
from repro.kernel import KERNEL_DENY, KERNEL_GRANT
from repro.policy.spec import PolicySpec
from repro.rbac.scopes import SCOPE_ROOT, ScopeTree, UnknownScopeError

TENANTS = """
policy tenants {
  role Auditor; role Editor; role Admin;
  hierarchy Admin > Editor;
  scope acme;
  scope "acme/wiki" under acme;
  scope "acme/wiki/home" under "acme/wiki";
  scope globex;
  user rei; user dana; user kit;
  permission read on document;
  permission write on document;
  grant read on document to Auditor;
  grant write on document to Editor in acme;
  grant write on document to Editor in globex;
  assign rei to Auditor;
  assign dana to Editor in acme;
  assign kit to Admin;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(TENANTS))


def session(engine, user, role):
    sid = engine.create_session(user)
    engine.add_active_role(sid, role)
    return sid


class TestScopeTree:
    def test_root_is_always_present(self):
        tree = ScopeTree()
        assert SCOPE_ROOT in tree
        assert len(tree) == 1

    def test_parents_must_exist_first(self):
        tree = ScopeTree()
        with pytest.raises(UnknownScopeError):
            tree.add_scope("a/b", "a")
        tree.add_scope("a")
        tree.add_scope("a/b", "a")
        assert tree.parent_of("a/b") == "a"
        assert tree.parent_of("a") == SCOPE_ROOT

    def test_duplicate_scope_refused(self):
        tree = ScopeTree()
        tree.add_scope("a")
        with pytest.raises(DuplicateEntityError):
            tree.add_scope("a")

    def test_root_and_interior_removal_refused(self):
        tree = ScopeTree()
        tree.add_scope("a")
        tree.add_scope("a/b", "a")
        with pytest.raises(AdministrationError):
            tree.remove_scope(SCOPE_ROOT)
        with pytest.raises(AdministrationError):
            tree.remove_scope("a")  # still has a child
        tree.remove_scope("a/b")
        tree.remove_scope("a")
        assert len(tree) == 1

    def test_ancestor_chain_self_first_root_last(self):
        tree = ScopeTree()
        tree.add_scope("a")
        tree.add_scope("a/b", "a")
        assert tree.ancestors_inclusive("a/b") == ("a/b", "a", SCOPE_ROOT)
        assert tree.contains("a", "a/b")
        assert not tree.contains("a/b", "a")
        assert tree.descendants_inclusive("a") == {"a", "a/b"}
        assert tree.depth_of("a/b") == 2

    def test_version_advances_on_every_mutation(self):
        tree = ScopeTree()
        tree.add_scope("a")
        tree.add_scope("b")
        tree.remove_scope("b")
        assert tree.version == 3


class TestModelScopes:
    def test_grant_at_ancestor_covers_descendants_only(self, engine):
        model = engine.model
        for scope in ("acme", "acme/wiki", "acme/wiki/home"):
            assert model.role_has_permission("Editor", "write",
                                             "document", scope=scope)
        assert not model.role_has_permission("Editor", "write",
                                             "document")  # flat = root
        assert model.role_has_permission("Auditor", "read", "document",
                                         scope="acme/wiki/home")

    def test_bounded_assignment_excludes_flat_and_siblings(self, engine):
        model = engine.model
        assert model.assignment_covers("dana", "Editor", "acme/wiki")
        assert not model.assignment_covers("dana", "Editor", "globex")
        assert not model.assignment_covers("dana", "Editor", SCOPE_ROOT)
        # unbounded pairs cover everything
        assert model.assignment_covers("rei", "Auditor", "globex")

    def test_remove_scope_refused_while_referenced(self, engine):
        with pytest.raises(AdministrationError):
            engine.model.remove_scope("acme")  # interior + granted
        with pytest.raises(AdministrationError):
            engine.model.remove_scope("globex")  # Editor granted there

    def test_unknown_scope_raises_on_admin(self, engine):
        with pytest.raises(UnknownScopeError):
            engine.model.grant_permission("Auditor", "read", "document",
                                          scope="nope")
        with pytest.raises(UnknownScopeError):
            engine.model.limit_assignment_scope("rei", "Auditor", "nope")


class TestDecisionParity:
    def test_kernel_and_interpreted_agree_everywhere(self, engine):
        dana = session(engine, "dana", "Editor")
        rei = session(engine, "rei", "Auditor")
        kit = session(engine, "kit", "Admin")
        cases = [
            (dana, "write", "acme/wiki/home"),
            (dana, "write", "globex"),
            (dana, "write", None),
            (rei, "read", "acme/wiki"),
            (rei, "read", None),
            (kit, "write", "acme"),    # Admin inherits Editor's grant
            (kit, "write", "globex"),
            (kit, "write", None),
        ]
        kernel = engine.kernel()
        for sid, operation, scope in cases:
            fast = kernel.evaluate(sid, operation, "document", scope)
            assert fast in (KERNEL_GRANT, KERNEL_DENY), (sid, scope)
            engine.kernel_enabled = False
            slow = engine.check_access(sid, operation, "document",
                                       scope=scope)
            engine.kernel_enabled = True
            live = engine.check_access(sid, operation, "document",
                                       scope=scope)
            assert (fast == KERNEL_GRANT) == slow == live, (sid, scope)

    def test_unknown_scope_denies_fail_closed_both_paths(self, engine):
        rei = session(engine, "rei", "Auditor")
        assert not engine.check_access(rei, "read", "document",
                                       scope="nope")
        engine.kernel_enabled = False
        assert not engine.check_access(rei, "read", "document",
                                       scope="nope")

    def test_explain_matches_live_verdict_and_names_the_scope(
            self, engine):
        dana = session(engine, "dana", "Editor")
        granted = engine.explain(dana, "write", "document",
                                 scope="acme/wiki")
        assert granted.allowed
        assert granted.scope == "acme/wiki"
        denied = engine.explain(dana, "write", "document", scope="globex")
        assert not denied.allowed
        assert "globex" in denied.describe()


class TestEngineAdministration:
    def test_scope_mutation_staleness_and_recompile(self, engine):
        rei = session(engine, "rei", "Auditor")
        assert engine.check_access(rei, "read", "document", scope="acme")
        engine.add_scope("initech")
        staleness = engine.health()["kernel_staleness"]
        assert (staleness["scopes"]["engine"]
                > staleness["scopes"]["kernel"])
        # the next check recompiles and serves the new scope
        assert engine.check_access(rei, "read", "document",
                                   scope="initech")
        staleness = engine.health()["kernel_staleness"]
        assert (staleness["scopes"]["engine"]
                == staleness["scopes"]["kernel"])

    def test_deassign_last_bound_deassigns_the_pair(self, engine):
        engine.deassign_scope("dana", "Editor", "acme")
        assert not engine.model.is_assigned("dana", "Editor")

    def test_deassign_one_of_many_bounds_narrows(self, engine):
        engine.assign_user("dana", "Editor", scope="globex")
        engine.deassign_scope("dana", "Editor", "acme")
        assert engine.model.is_assigned("dana", "Editor")
        assert engine.model.assignment_scopes("dana", "Editor") \
            == {"globex"}

    def test_scoped_grant_revoke_round_trip(self, engine):
        engine.grant_permission("Auditor", "write", "document",
                                scope="globex")
        rei = session(engine, "rei", "Auditor")
        assert engine.check_access(rei, "write", "document",
                                   scope="globex")
        engine.revoke_permission("Auditor", "write", "document",
                                 scope="globex")
        assert not engine.check_access(rei, "write", "document",
                                       scope="globex")

    def test_kernel_stats_expose_the_scope_layer(self, engine):
        stats = engine.kernel().stats()
        assert stats["scopes"] == 5  # root + 4 declared
        assert stats["scoped_grants"] >= 2
        assert stats["scope_limited_assignments"] == 1
        assert stats["scope_closure_bits"] > 0


class TestConfigPipeline:
    def test_dsl_round_trip_preserves_the_scope_layer(self):
        from repro.policy.dsl import render_policy

        spec = parse_policy(TENANTS)
        again = parse_policy(render_policy(spec))
        assert again.scopes == spec.scopes
        assert sorted(again.scoped_grants) == sorted(spec.scoped_grants)
        assert sorted(again.scoped_assignments) \
            == sorted(spec.scoped_assignments)

    def test_structured_loader_reads_scopes(self):
        from repro.config.loader import parse_config

        config = parse_config("""
        {"version": 1, "name": "t",
         "roles": [{"name": "R"}], "users": ["u"],
         "permissions": [{"operation": "op", "object": "obj"}],
         "scopes": [{"name": "a"}, {"name": "a/b", "parent": "a"}],
         "grants": [{"role": "R", "operation": "op", "object": "obj",
                     "scope": "a"}],
         "assignments": [{"user": "u", "role": "R", "scope": "a/b"}],
         "federation_maps": [{"home_role": "R", "host_domain": "lab",
                              "host_role": "R"}]}
        """, "json")
        spec = config.spec
        assert spec.scopes == [("a", None), ("a/b", "a")]
        assert spec.scoped_grants == [("R", "op", "obj", "a")]
        assert spec.scoped_assignments == [("u", "R", "a/b")]
        assert spec.federation_maps == [("R", "lab", "R")]

    def test_validator_rejects_scope_mistakes(self):
        from repro.policy.validator import validate_policy

        spec = PolicySpec(name="bad")
        spec.add_role("R")
        spec.add_user("u")
        spec.add_scope("child", "missing-parent")
        spec.add_scoped_grant("R", "op", "obj", "nowhere")
        spec.add_scoped_assignment("u", "R", "nowhere")
        issues = " ; ".join(str(i) for i in validate_policy(spec))
        assert "missing-parent" in issues
        assert "nowhere" in issues

    def test_differ_orders_scope_ops_safely(self):
        old = parse_policy(TENANTS)
        new = old.clone()
        new.scoped_assignments = [
            row for row in new.scoped_assignments
            if row != ("dana", "Editor", "acme")]
        new.scoped_grants = [
            row for row in new.scoped_grants
            if row != ("Editor", "write", "document", "globex")]
        new.scopes = [row for row in new.scopes if row[0] != "globex"]
        new.add_scope("initech")
        new.add_scoped_grant("Auditor", "read", "document", "initech")
        new.add_scoped_assignment("kit", "Admin", "initech")
        diff = diff_specs(old, new)
        ops = [op[0] for op in diff.model_ops]
        # teardown before build-up; scope removal last, creation before
        # the scoped grants/assignments that reference it
        assert ops.index("revoke_scoped") < ops.index("remove_scope")
        assert ops.index("remove_scope") < ops.index("add_scope")
        assert ops.index("add_scope") < ops.index("grant_scoped")
        assert ops.index("grant_scoped") < ops.index("assign_scoped")
        assert ("deassign_scoped", "dana", "Editor", "acme") \
            in diff.model_ops

    def test_lifecycle_applies_a_scoped_push(self, engine, tmp_path):
        from repro.config import ConfigSet
        from repro.config.lifecycle import PolicyLifecycle

        lifecycle = PolicyLifecycle(engine, state_dir=str(tmp_path))
        lifecycle.adopt(1)
        new = engine.policy.clone()
        new.add_scope("initech")
        new.add_scoped_grant("Auditor", "write", "document", "initech")
        lifecycle.stage(ConfigSet.from_spec(new, 2))
        lifecycle.promote(force=True)
        rei = session(engine, "rei", "Auditor")
        assert engine.check_access(rei, "write", "document",
                                   scope="initech")
        assert not engine.check_access(rei, "write", "document")

    def test_federation_map_delta_sets_the_flag(self):
        old = parse_policy(TENANTS)
        new = old.clone()
        new.add_federation_map("Auditor", "lab", "Visitor")
        diff = diff_specs(old, new)
        assert diff.federation_changed
        assert not diff_specs(old, old.clone()).federation_changed


HOME = """
policy home {
  role Engineer;
  user wei;
  assign wei to Engineer;
  federate Engineer to lab as Visitor;
}
"""

LAB = """
policy lab {
  role Visitor;
  permission read on logs;
  grant read on logs to Visitor;
}
"""


class TestFederationSync:
    @pytest.fixture
    def router(self):
        from repro.serve import ShardRouter

        r = ShardRouter()
        r.add_shard("home", ActiveRBACEngine.from_policy(
            parse_policy(HOME)))
        r.add_shard("lab", ActiveRBACEngine.from_policy(
            parse_policy(LAB)))
        return r

    def test_declared_maps_sync_and_serve(self, router):
        report = router.sync_federation()
        assert len(report["added"]) == 1
        assert router.check("wei@home", "read", "logs",
                            domain="lab")["allowed"]
        # idempotent
        again = router.sync_federation()
        assert again == {"added": [], "removed": [], "skipped": []}

    def test_dropped_declaration_is_withdrawn(self, router):
        router.sync_federation()
        router.shard("home").engine.policy.federation_maps.clear()
        report = router.sync_federation()
        assert len(report["removed"]) == 1

    def test_hand_registered_mappings_survive_sync(self, router):
        hand = RoleMapping("home", "Engineer", "lab", "Visitor")
        router.add_mapping(hand)
        router.shard("home").engine.policy.federation_maps.clear()
        report = router.sync_federation()
        assert report["removed"] == []
        assert hand in router.federation._mappings

    def test_unresolvable_declaration_skipped_fail_closed(self, router):
        router.shard("home").engine.policy.federation_maps.append(
            ("Engineer", "lab", "NoSuchRole"))
        report = router.sync_federation()
        assert len(report["skipped"]) == 1
        assert "NoSuchRole" in report["skipped"][0]["mapping"]


class TestConfigWatcher:
    def _boot(self, tmp_path, watch_interval=0.05):
        from repro.serve import ServeApp, ShardRouter

        path = tmp_path / "t.rbac"
        path.write_text(TENANTS)  # raw DSL config file
        engine = ActiveRBACEngine.from_policy(parse_policy(TENANTS))
        router = ShardRouter()
        shard = router.add_shard("t", engine, config_path=str(path))
        shard.ensure_lifecycle().adopt(1)
        app = ServeApp(router, watch_interval=watch_interval)
        return app, shard, path

    def test_first_observation_is_baseline_only(self, tmp_path):
        app, shard, _ = self._boot(tmp_path)
        app.poll_config_files()
        assert shard.ensure_lifecycle().status()["phase"] == "idle"

    def test_changed_file_stages_without_sighup(self, tmp_path):
        import os

        app, shard, path = self._boot(tmp_path)
        app.poll_config_files()  # baseline
        path.write_text(TENANTS.replace("user kit;",
                                        "user kit; user new1;"))
        os.utime(path, ns=(os.stat(path).st_atime_ns,
                           os.stat(path).st_mtime_ns + 1_000_000))
        app.poll_config_files()
        assert shard.ensure_lifecycle().status()["phase"] == "canary"

    def test_touch_without_change_is_a_noop(self, tmp_path):
        import os

        app, shard, path = self._boot(tmp_path)
        app.poll_config_files()
        os.utime(path, ns=(os.stat(path).st_atime_ns,
                           os.stat(path).st_mtime_ns + 1_000_000))
        app.poll_config_files()
        assert shard.ensure_lifecycle().status()["phase"] == "idle"

    def test_watcher_off_by_default(self):
        from repro.serve import ServeApp, ShardRouter

        app = ServeApp(ShardRouter())
        assert app.watch_interval == 0.0


class TestServeScopedChecks:
    def test_shard_counts_and_answers_scoped_checks(self):
        from repro.serve import ShardRouter

        router = ShardRouter()
        engine = ActiveRBACEngine.from_policy(parse_policy(TENANTS))
        shard = router.add_shard("t", engine)
        flat = router.check("rei", "read", "document")
        scoped = router.check("dana", "write", "document",
                              scope="acme/wiki")
        denied = router.check("dana", "write", "document",
                              scope="globex")
        assert flat["allowed"] and scoped["allowed"]
        assert not denied["allowed"]
        assert scoped["path"] == "kernel"
        assert shard.scoped_checks == 2
        assert shard.health()["serve"]["scoped_checks"] == 2

    def test_router_explain_threads_the_scope(self):
        from repro.serve import ShardRouter

        router = ShardRouter()
        router.add_shard("t", ActiveRBACEngine.from_policy(
            parse_policy(TENANTS)))
        report = router.explain("dana", "write", "document",
                                scope="globex")
        assert not report["allowed"]
        assert report["scope"] == "globex"
        assert "globex" in (report["deny_cause"] or "")
