"""Unit tests for policy specification objects and the model builder."""

import pytest

from repro.extensions.cfd import PrerequisiteRole, TransactionActivation
from repro.gtrbac.constraints import DurationConstraint, EnablingWindow
from repro.gtrbac.periodic import PeriodicInterval
from repro.policy.spec import PolicySpec, build_model


@pytest.fixture
def spec():
    s = PolicySpec(name="demo")
    s.add_role("PM").add_role("PC").add_role("AC").add_role("Clerk")
    s.add_user("bob").add_user("carol")
    s.add_hierarchy("PM", "PC").add_hierarchy("PC", "Clerk")
    s.add_ssd("conflict", {"PC", "AC"})
    s.add_dsd("dyn", {"PM", "AC"})
    s.add_grant("PC", "create", "purchase_order")
    s.add_assignment("bob", "PM")
    return s


class TestBuilders:
    def test_add_grant_registers_permission(self, spec):
        assert ("create", "purchase_order") in spec.permissions
        assert ("PC", "create", "purchase_order") in spec.grants

    def test_chaining(self):
        s = PolicySpec().add_role("A").add_user("u").add_hierarchy("A", "A")
        assert "A" in s.roles and "u" in s.users

    def test_role_flags(self, spec):
        assert spec.role_in_hierarchy("PM")
        assert not spec.role_in_hierarchy("AC")
        assert spec.role_in_ssd("AC")
        assert not spec.role_in_ssd("PM")
        assert spec.role_in_dsd("PM")
        assert not spec.role_in_dsd("PC")

    def test_constraints_summary_flags(self, spec):
        spec.durations.append(DurationConstraint("PC", 100.0))
        spec.prerequisites.append(PrerequisiteRole("AC", "Clerk"))
        summary_pc = spec.role_constraints_summary("PC")
        assert summary_pc["hierarchy"] and summary_pc["static_sod"]
        assert summary_pc["temporal"] and not summary_pc["cfd"]
        summary_ac = spec.role_constraints_summary("AC")
        assert summary_ac["cfd"] and not summary_ac["temporal"]

    def test_clone_isolated(self, spec):
        clone = spec.clone()
        clone.add_role("Extra")
        clone.assignments.append(("carol", "AC"))
        assert "Extra" not in spec.roles
        assert ("carol", "AC") not in spec.assignments

    def test_transaction_flag(self, spec):
        spec.transactions.append(TransactionActivation("PC", "PM"))
        assert spec.role_constraints_summary("PC")["cfd"]
        assert spec.role_constraints_summary("PM")["cfd"]


class TestBuildModel:
    def test_state_loaded(self, spec):
        model = build_model(spec)
        assert set(model.users) == {"bob", "carol"}
        assert set(model.roles) == {"PM", "PC", "AC", "Clerk"}
        assert model.is_assigned("bob", "PM")
        assert model.hierarchy.is_senior("PM", "Clerk")
        assert model.role_has_permission("PM", "create", "purchase_order")
        assert not model.sod.ssd_ok({"PC"}, "AC")
        assert not model.sod.dsd_ok({"PM"}, "AC")

    def test_cardinalities_loaded(self):
        s = PolicySpec()
        s.add_role("Programmer", max_active_users=5)
        s.add_user("jane", max_active_roles=5)
        model = build_model(s)
        assert model.roles["Programmer"].max_active_users == 5
        assert model.users["jane"].max_active_roles == 5

    def test_limited_hierarchy_propagates(self):
        s = PolicySpec(hierarchy_limited=True)
        s.add_role("a").add_role("b").add_role("c")
        s.add_hierarchy("a", "b")
        s.add_hierarchy("a", "c")
        from repro.errors import LimitedHierarchyError
        with pytest.raises(LimitedHierarchyError):
            build_model(s)

    def test_invalid_assignment_fails_build(self, spec):
        spec.add_assignment("carol", "AC")
        spec.add_assignment("carol", "PC")  # violates SSD {PC, AC}
        from repro.errors import SsdViolationError
        with pytest.raises(SsdViolationError):
            build_model(spec)

    def test_windows_not_applied_by_build(self, spec):
        # enabling windows are enforced by the engines, not by build_model
        spec.enabling_windows.append(
            EnablingWindow("PC", PeriodicInterval.daily("08:00", "16:00")))
        model = build_model(spec)
        assert model.is_role_enabled("PC")
