"""Unit tests for the compiled decision plane (PolicyKernel).

The kernel is a per-epoch immutable compile of the policy: interned
ids, hierarchy-closure bitsets, a role->permission grant relation, and
a checkAccess fast path that must answer exactly like the interpreted
OWTE pipeline or fall back to it.  These tests pin the compile
artifacts, the decision protocol, the fallback triggers, and the
staleness/invalidation machinery.
"""

import pytest

from repro import (
    KERNEL_DENY,
    KERNEL_FALLBACK,
    KERNEL_GRANT,
    ActiveRBACEngine,
    parse_policy,
)
from repro.kernel import compile_kernel

POLICY = """
policy kerneltest {
  role PM; role PC; role AC; role Clerk;
  hierarchy PM > PC > Clerk;
  user alice; user bob;
  assign alice to PM; assign alice to PC;
  assign bob to Clerk; assign bob to AC;
  permission read on ledger; permission write on ledger;
  permission read on memo;
  grant read on memo to Clerk;
  grant write on ledger to PC;
  grant read on ledger to AC;
  ssd Approval roles PC, AC;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine(parse_policy(POLICY))


@pytest.fixture
def kernel(engine):
    return engine.kernel()


class TestCompile:
    def test_full_coverage_on_generated_pool(self, kernel):
        assert kernel.coverage_gap is None

    def test_interning_is_dense_and_sorted(self, kernel):
        assert sorted(kernel.role_ids.values()) == list(
            range(len(kernel.role_ids)))
        assert kernel.role_names == sorted(kernel.role_ids)
        assert len(kernel.perm_ids) == 3

    def test_hierarchy_closure_bitsets(self, kernel):
        rid = kernel.role_ids
        pm_juniors = kernel.juniors_mask[rid["PM"]]
        # reflexive-transitive: PM sees itself, PC, Clerk — not AC
        for role in ("PM", "PC", "Clerk"):
            assert pm_juniors & (1 << rid[role])
        assert not pm_juniors & (1 << rid["AC"])
        # seniors is the transpose
        clerk_seniors = kernel.seniors_mask[rid["Clerk"]]
        for role in ("Clerk", "PC", "PM"):
            assert clerk_seniors & (1 << rid[role])

    def test_grant_masks_fold_junior_closure(self, kernel):
        rid, pid = kernel.role_ids, kernel.perm_ids
        pm = kernel.grant_masks[rid["PM"]]
        # PM inherits PC's write-ledger and Clerk's read-memo
        assert pm & (1 << pid[("write", "ledger")])
        assert pm & (1 << pid[("read", "memo")])
        assert not pm & (1 << pid[("read", "ledger")])

    def test_ssd_conflict_pairs(self, kernel):
        pairs = kernel.ssd_conflict_pairs()
        assert ("Approval", "AC", "PC") in pairs or \
            ("Approval", "PC", "AC") in pairs

    def test_stats_surface(self, kernel):
        stats = kernel.stats()
        assert stats["roles"] == 4
        assert stats["permissions"] == 3
        assert stats["coverage_gap"] is None
        assert stats["static_rules"] >= 1
        assert stats["build_us"] > 0
        assert set(stats["fallbacks"]) == {
            "coverage", "quarantine", "instrumented", "unknown_entity",
            "context_role", "privacy", "stale_privacy"}


class TestEvaluate:
    def test_grant_deny_and_unknown_session(self, engine, kernel):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        assert kernel.evaluate(sid, "read", "memo") == KERNEL_GRANT
        assert kernel.evaluate(sid, "write", "ledger") == KERNEL_DENY
        assert kernel.evaluate("ghost", "read", "memo") == KERNEL_DENY

    def test_unknown_permission_pair_is_deny(self, engine, kernel):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        assert kernel.evaluate(sid, "shred", "memo") == KERNEL_DENY

    def test_locked_user_is_deny(self, engine, kernel):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        engine.locked_users.add("bob")
        assert kernel.evaluate(sid, "read", "memo") == KERNEL_DENY

    def test_quarantined_rule_falls_back(self, engine, kernel):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        kernel._ca.quarantined = True
        try:
            assert kernel.evaluate(sid, "read", "memo") == KERNEL_FALLBACK
            assert kernel.fallbacks["quarantine"] == 1
            assert kernel.last_fallback == "quarantine"
        finally:
            kernel._ca.quarantined = False

    def test_rewired_clauses_fall_back(self, engine, kernel):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        ca = kernel._ca
        saved = ca.actions
        ca.actions = tuple(ca.actions)  # new object, same behavior
        try:
            assert kernel.evaluate(sid, "read", "memo") == KERNEL_FALLBACK
            assert kernel.fallbacks["instrumented"] == 1
            assert kernel.last_fallback == "instrumented"
        finally:
            ca.actions = saved

    def test_evaluate_is_pure(self, engine, kernel):
        """No events, no audit, no rule counters from the kernel itself."""
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        before_raised = engine.detector.stats()["raised"]
        fired = kernel._ca.fired_count
        audit = len(engine.audit)
        kernel.evaluate(sid, "read", "memo")
        kernel.evaluate(sid, "write", "ledger")
        assert engine.detector.stats()["raised"] == before_raised
        assert kernel._ca.fired_count == fired
        assert len(engine.audit) == audit


class TestDynamicFallbacks:
    def test_context_gated_role(self):
        engine = ActiveRBACEngine(parse_policy("""
        policy ctx {
          role Field;
          user u0; assign u0 to Field;
          permission read on doc;
          grant read on doc to Field;
          context Field requires network == "secure" for access;
        }
        """))
        kernel = engine.kernel()
        sid = engine.create_session("u0")
        engine.add_active_role(sid, "Field")
        assert kernel.evaluate(sid, "read", "doc") == KERNEL_FALLBACK
        assert kernel.fallbacks["context_role"] == 1
        # and check_access still answers correctly through the fallback
        engine.context.set("network", "secure")
        assert engine.check_access(sid, "read", "doc")
        engine.context.set("network", "open")
        assert not engine.check_access(sid, "read", "doc")

    def test_privacy_regulated_object(self):
        engine = ActiveRBACEngine(parse_policy("""
        policy priv {
          role Desk;
          user u0; assign u0 to Desk;
          permission read on secret; permission read on public;
          grant read on secret to Desk;
          grant read on public to Desk;
          purpose ops;
          object_policy read on secret for ops;
        }
        """))
        kernel = engine.kernel()
        sid = engine.create_session("u0")
        engine.add_active_role(sid, "Desk")
        assert kernel.evaluate(sid, "read", "public") == KERNEL_GRANT
        assert kernel.evaluate(sid, "read", "secret") == KERNEL_FALLBACK
        assert kernel.fallbacks["privacy"] == 1

    def test_privacy_added_after_compile(self, engine, kernel):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        assert kernel.evaluate(sid, "read", "memo") == KERNEL_GRANT
        from repro.extensions.privacy import ObjectPolicy
        engine.privacy.add_purposes([("ops", None)])
        engine.privacy.add_policy(
            ObjectPolicy(obj="memo", operation="read", purpose="ops"))
        assert kernel.evaluate(sid, "read", "memo") == KERNEL_FALLBACK
        assert kernel.fallbacks["stale_privacy"] == 1


class TestStaleness:
    def test_fresh_kernel_round_trips(self, engine, kernel):
        assert kernel.fresh(engine)
        assert kernel.stale_reason(engine) is None

    def test_policy_edit_staleness(self, engine, kernel):
        engine.grant_permission("Clerk", "read", "ledger")
        assert not kernel.fresh(engine)
        assert kernel.stale_reason(engine) == "epoch"

    def test_wrong_engine_staleness(self, engine, kernel):
        other = ActiveRBACEngine(parse_policy(POLICY))
        assert kernel.stale_reason(other) == "engine"

    def test_engine_kernel_recompiles_when_stale(self, engine):
        first = engine.kernel()
        assert engine.kernel() is first  # cached while fresh
        engine.grant_permission("Clerk", "read", "ledger")
        second = engine.kernel()
        assert second is not first
        assert second.fresh(engine)

    def test_invalidate_kernel_forces_recompile(self, engine):
        first = engine.kernel()
        engine.invalidate_kernel()
        assert engine.kernel() is not first

    def test_recompiled_kernel_sees_new_grant(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        assert engine.kernel().evaluate(
            sid, "read", "ledger") == KERNEL_DENY
        engine.grant_permission("Clerk", "read", "ledger")
        assert engine.kernel().evaluate(
            sid, "read", "ledger") == KERNEL_GRANT


class TestEngineFastPath:
    def test_kernel_path_matches_interpreted(self, engine):
        sid = engine.create_session("alice")
        engine.add_active_role(sid, "PM")
        engine.kernel_enabled = True
        on = [engine.check_access(sid, "write", "ledger"),
              engine.check_access(sid, "read", "ledger"),
              engine.check_access(sid, "read", "memo")]
        engine.kernel_enabled = False
        off = [engine.check_access(sid, "write", "ledger"),
               engine.check_access(sid, "read", "ledger"),
               engine.check_access(sid, "read", "memo")]
        assert on == off == [True, False, True]

    def test_kernel_path_keeps_side_effect_parity(self, engine):
        """Audit records, rule counters and decision metrics must be
        indistinguishable between the compiled and interpreted paths."""
        def observe(run):
            probe = ActiveRBACEngine(parse_policy(POLICY))
            probe.kernel_enabled = run
            sid = probe.create_session("bob")
            probe.add_active_role(sid, "Clerk")
            probe.check_access(sid, "read", "memo")
            probe.check_access(sid, "write", "ledger")
            ca = probe.rules.rules_for_event("checkAccess")[0]
            audit = [r.kind for r in probe.audit
                     if r.kind.startswith(("decision.", "rule.else"))]
            return (ca.fired_count, ca.then_count, ca.else_count, audit)

        assert observe(True) == observe(False)

    def test_explicit_deadline_bypasses_kernel(self, engine):
        from repro.clock import Deadline
        engine.kernel()  # compile
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Clerk")
        before = engine.obs.kernel_decisions.labels("grant").value
        assert engine.check_access(
            sid, "read", "memo",
            deadline=Deadline(engine.clock, virtual_budget=10.0))
        assert engine.obs.kernel_decisions.labels("grant").value == before

    def test_stats_and_health_surface(self, engine):
        stats = engine.stats()
        assert stats["kernel_enabled"] == 1
        assert stats["kernel_compiled"] == 0
        assert engine.health()["kernel"] == "cold"
        engine.kernel()
        assert engine.stats()["kernel_compiled"] == 1
        assert engine.health()["kernel"] == "fresh"
        engine.grant_permission("Clerk", "read", "ledger")
        assert engine.health()["kernel"] == "stale"
        engine.kernel_enabled = False
        assert engine.health()["kernel"] == "off"

    def test_compile_kernel_helper(self, engine):
        kernel = compile_kernel(engine)
        assert kernel.fresh(engine)


class TestCacheCounters:
    def test_dispatch_cache_round_trip(self, engine):
        rules = engine.rules
        first = rules._dispatch_snapshot("checkAccess")
        assert rules._dispatch_snapshot("checkAccess") is first
        version = rules.version
        ca = rules.rules_for_event("checkAccess")[0]
        rules.quarantine(ca.name)
        assert rules.version > version
        assert rules._dispatch_snapshot("checkAccess") is not first

    def test_hierarchy_invalidations_counter(self, engine):
        hierarchy = engine.model.hierarchy
        hierarchy.seniors("Clerk")  # populate the closure cache
        before = hierarchy.invalidations
        engine.delete_inheritance("PC", "Clerk")
        assert hierarchy.invalidations > before
        assert "PC" not in hierarchy.seniors("Clerk")
        assert engine.model.stats()["closure_invalidations"] == \
            hierarchy.invalidations
