"""Unit tests for the structured tracer: span nesting across the
addActiveRole → addSessionRole (cardinality) → roleActivated cascade,
ELSE-branch spans carrying typed denial errors, and exports."""

import json

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.errors import ActivationDenied, CardinalityExceeded
from repro.obs import Span, Tracer

POLICY = """
policy demo {
  role A max_active_users 1; role B;
  user u; user v;
  assign u to A;
  assign v to A;
  permission read on doc;
  grant read on doc to A;
}
"""


def traced_engine(policy: str = POLICY) -> ActiveRBACEngine:
    engine = ActiveRBACEngine.from_policy(parse_policy(policy))
    engine.obs.tracer.enabled = True
    return engine


class TestSpanPrimitives:
    def test_nesting_via_stack(self):
        tracer = Tracer(enabled=True)
        root = tracer.start("outer")
        child = tracer.start("inner", "rule")
        tracer.end(child)
        tracer.end(root)
        assert tracer.roots() == [root]
        assert root.children == [child]
        assert not tracer.in_flight

    def test_span_context_manager_records_error(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("op") as span:
                raise RuntimeError("boom")
        assert span.error == "RuntimeError"
        assert span.error_message == "boom"
        assert span.end_ns is not None

    def test_capacity_bound_drops_oldest(self):
        tracer = Tracer(capacity=2, enabled=True)
        for i in range(4):
            with tracer.span(f"r{i}"):
                pass
        assert [r.name for r in tracer.roots()] == ["r2", "r3"]
        assert tracer.dropped == 2

    def test_end_pops_abandoned_children(self):
        tracer = Tracer(enabled=True)
        root = tracer.start("outer")
        tracer.start("leaked")
        tracer.end(root)  # must close the leaked child too
        assert not tracer.in_flight

    def test_walk_find_and_has_error(self):
        root = Span("a")
        child = Span("b", "rule")
        root.children.append(child)
        child.set_error(ValueError("x"))
        assert [s.name for s in root.walk()] == ["a", "b"]
        assert root.find("b") is child
        assert root.has_error()


class TestCascadeSpans:
    def test_activation_cascade_nests_three_levels(self):
        """addActiveRole.A → AAR rule → addSessionRole.A cascade →
        CC (cardinality) rule → roleActivated.A cascade."""
        engine = traced_engine()
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        roots = engine.obs.tracer.roots()
        root = next(r for r in roots if r.name == "addActiveRole.A")
        assert root.kind == "event"
        aar = root.children[0]
        assert aar.kind == "rule"
        assert aar.name.startswith("AAR")
        assert aar.attrs["outcome"] == "then"
        cascade = aar.find("addSessionRole.A")
        assert cascade is not None and cascade.kind == "cascade"
        cc = cascade.find("CC.A")
        assert cc is not None and cc.attrs["outcome"] == "then"
        activated = cc.find("roleActivated.A")
        assert activated is not None and activated.kind == "cascade"

    def test_else_branch_span_carries_typed_denial(self):
        engine = traced_engine()
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        other = engine.create_session("v")
        with pytest.raises(CardinalityExceeded):
            # role A caps at one active user: the CC rule's ELSE vetoes
            engine.add_active_role(other, "A")
        root = engine.obs.tracer.roots()[-1]
        assert root.name == "addActiveRole.A"
        assert root.error == "CardinalityExceeded"
        cc = root.find("CC.A")
        assert cc is not None
        assert cc.attrs["outcome"] == "else"
        assert cc.error == "CardinalityExceeded"
        assert "Maximum Number of Roles" in cc.error_message

    def test_unassigned_activation_denied_at_the_aar_rule(self):
        engine = traced_engine()
        sid = engine.create_session("v")
        engine.obs.tracer.clear()
        with pytest.raises(ActivationDenied):
            engine.add_active_role(sid, "B")  # v is not assigned to B
        root = engine.obs.tracer.roots()[0]
        rule_spans = [s for s in root.walk() if s.kind == "rule"]
        assert rule_spans, "no rule span recorded for the denial"
        assert any(s.attrs.get("outcome") == "else" for s in rule_spans)
        assert root.error == "ActivationDenied"

    def test_denied_check_access_trace_is_explainable(self):
        engine = traced_engine()
        sid = engine.create_session("u")
        engine.obs.tracer.clear()
        assert not engine.check_access(sid, "read", "doc")
        root = engine.obs.tracer.roots()[0]
        assert root.name == "checkAccess"
        ca = root.find("CA.checkAccess")
        assert ca.attrs["outcome"] == "else"
        assert ca.error == "OperationDenied"
        # the denial event cascaded for the active-security monitor
        assert root.find("accessDenied").kind == "cascade"


class TestTracerToggling:
    def test_disabled_tracer_records_nothing(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        assert len(engine.obs.tracer) == 0

    def test_hub_disable_trumps_tracer_enable(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        engine.obs.enabled = False
        engine.obs.tracer.enabled = True
        engine.create_session("u")
        assert len(engine.obs.tracer) == 0


class TestExports:
    def test_json_export(self):
        engine = traced_engine()
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        data = json.loads(engine.obs.tracer.to_json())
        names = [root["name"] for root in data]
        assert "addActiveRole.A" in names
        activation = data[names.index("addActiveRole.A")]
        assert activation["children"][0]["kind"] == "rule"
        assert activation["children"][0]["attrs"]["outcome"] == "then"
        assert activation["duration_ns"] > 0

    def test_text_tree_render(self):
        engine = traced_engine()
        sid = engine.create_session("u")
        engine.obs.tracer.clear()
        assert not engine.check_access(sid, "read", "doc")
        tree = engine.obs.tracer.render_forest(only_errors=True)
        lines = tree.splitlines()
        assert lines[0].startswith("checkAccess (event)")
        assert any(line.startswith("  CA.checkAccess (rule)")
                   for line in lines)
        assert "outcome='else'" in tree
        assert "!OperationDenied" in tree

    def test_render_forest_limit(self):
        tracer = Tracer(enabled=True)
        for i in range(5):
            with tracer.span(f"r{i}"):
                pass
        text = tracer.render_forest(limit=2)
        assert "r3" in text and "r4" in text and "r0" not in text
