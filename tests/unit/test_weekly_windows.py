"""Unit tests for weekly (day-of-week) periodic intervals."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.clock import SECONDS_PER_DAY as DAY
from repro.clock import SECONDS_PER_HOUR as H
from repro.gtrbac.periodic import (
    EPOCH_WEEKDAY,
    PeriodicInterval,
    parse_days,
    weekday_of,
)

# the simulated epoch (Jan 1 2005) is a Saturday
assert EPOCH_WEEKDAY == 5


class TestParseDays:
    def test_names_and_prefixes(self):
        assert parse_days(["mon", "Tuesday", "WED"]) == frozenset({0, 1, 2})

    def test_unknown_day_rejected(self):
        with pytest.raises(ValueError):
            parse_days(["funday"])

    def test_weekday_of(self):
        assert weekday_of(0.0) == 5            # Saturday
        assert weekday_of(DAY) == 6            # Sunday
        assert weekday_of(2 * DAY) == 0        # Monday


class TestWeeklyContains:
    def test_weekday_only_window(self):
        weekdays = PeriodicInterval.daily(
            "09:00", "17:00", days=["mon", "tue", "wed", "thu", "fri"])
        assert not weekdays.contains(12 * H)            # Saturday noon
        assert not weekdays.contains(DAY + 12 * H)      # Sunday noon
        assert weekdays.contains(2 * DAY + 12 * H)      # Monday noon
        assert not weekdays.contains(2 * DAY + 8 * H)   # Monday 08:00

    def test_wrapping_window_belongs_to_start_day(self):
        # Monday night shift 22:00 -> 06:00 covers Tuesday 03:00
        monday_night = PeriodicInterval.daily("22:00", "06:00",
                                              days=["mon"])
        assert monday_night.contains(2 * DAY + 23 * H)   # Mon 23:00
        assert monday_night.contains(3 * DAY + 3 * H)    # Tue 03:00
        assert not monday_night.contains(3 * DAY + 23 * H)  # Tue 23:00

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicInterval(0.0, 3600.0, days=frozenset())
        with pytest.raises(ValueError):
            PeriodicInterval(0.0, 3600.0, days=frozenset({7}))

    def test_describe_mentions_days(self):
        interval = PeriodicInterval.daily("09:00", "17:00",
                                          days=["fri", "mon"])
        assert "on mon,fri" in interval.describe()


class TestWeeklyBoundaries:
    def test_boundary_skips_disallowed_days(self):
        monday = PeriodicInterval.daily("09:00", "17:00", days=["mon"])
        # from Saturday epoch, the next boundary is Monday 09:00
        instant, opens = monday.next_boundary(0.0)
        assert (instant, opens) == (2 * DAY + 9 * H, True)
        instant, opens = monday.next_boundary(2 * DAY + 10 * H)
        assert (instant, opens) == (2 * DAY + 17 * H, False)
        # then a whole week passes
        instant, opens = monday.next_boundary(2 * DAY + 18 * H)
        assert (instant, opens) == (9 * DAY + 9 * H, True)

    def test_boundaries_alternate_across_weeks(self):
        monday = PeriodicInterval.daily("09:00", "17:00", days=["mon"])
        instant, states = 0.0, []
        for _ in range(6):
            instant, opens = monday.next_boundary(instant)
            states.append(opens)
        assert states == [True, False] * 3


class TestWeeklyEngineIntegration:
    POLICY = """
    policy weekly {
      role WeekdayOps;
      user bob;
      assign bob to WeekdayOps;
      enable WeekdayOps daily 09:00 to 17:00 on mon, tue, wed, thu, fri;
    }
    """

    def test_weekend_disabled_weekday_enabled(self):
        from repro.errors import ActivationDenied
        engine = ActiveRBACEngine.from_policy(parse_policy(self.POLICY))
        sid = engine.create_session("bob")
        engine.advance_time(12 * H)  # Saturday noon
        with pytest.raises(ActivationDenied):
            engine.add_active_role(sid, "WeekdayOps")
        engine.advance_time(2 * DAY)  # Monday noon
        engine.add_active_role(sid, "WeekdayOps")
        assert "WeekdayOps" in engine.model.session_roles(sid)
        engine.advance_time(5 * H)  # Monday 17:00: window closes
        assert "WeekdayOps" not in engine.model.session_roles(sid)

    def test_transition_count_over_one_week(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(self.POLICY))
        engine.advance_time(7 * DAY)
        enables = len(engine.audit.by_kind("role.enable"))
        disables = len(engine.audit.by_kind("role.disable"))
        assert enables == 5 and disables == 5  # one week of weekdays

    def test_dsl_round_trip_preserves_days(self):
        from repro.policy.dsl import render_policy
        spec = parse_policy(self.POLICY)
        reparsed = parse_policy(render_policy(spec))
        assert reparsed.enabling_windows == spec.enabling_windows

    def test_weekly_disabling_sod(self):
        from repro.errors import DeactivationDenied
        engine = ActiveRBACEngine.from_policy(parse_policy("""
        policy cov {
          role A; role B;
          disabling_sod c roles A, B daily 00:00 to 23:59 on sat;
        }"""))
        engine.disable_role("A")          # Saturday: constraint active
        with pytest.raises(DeactivationDenied):
            engine.disable_role("B")
        engine.enable_role("A")
        engine.advance_time(2 * DAY)      # Monday
        engine.disable_role("A")
        engine.disable_role("B")          # allowed: not Saturday
