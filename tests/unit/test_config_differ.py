"""Unit tests for the config differ: the deployment change script, the
rule-relevant seed set, and — the property the whole staged-promotion
design leans on — rule-object identity surviving deployments that do
not change rule shape."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.config.differ import diff_specs, rule_signature
from repro.synthesis.regenerate import regenerate_diff

BASE = """
policy p {
  role doctor;
  role nurse;
  role clerk;
  user alice;
  user bob;
  hierarchy doctor > nurse;
  permission read on chart;
  permission write on chart;
  grant read on chart to nurse;
  grant write on chart to doctor;
  assign alice to doctor;
  assign bob to nurse;
}
"""


def spec():
    return parse_policy(BASE)


class TestDiffSpecs:
    def test_identical_specs_diff_empty(self):
        diff = diff_specs(spec(), spec())
        assert diff.is_empty
        assert diff.summary()["empty"] is True

    def test_added_entities_are_dependency_ordered(self):
        new = spec()
        new.add_role("auditor")
        new.permissions.append(("audit", "chart"))
        new.grants.append(("auditor", "audit", "chart"))
        new.assignments.append(("alice", "auditor"))
        ops = [op[0] for op in diff_specs(spec(), new).model_ops]
        assert ops.index("add_role") < ops.index("grant")
        assert ops.index("add_permission") < ops.index("grant")
        assert ops.index("grant") < ops.index("assign_user")

    def test_removals_precede_additions(self):
        old = spec()
        new = spec()
        new.grants.remove(("nurse", "read", "chart"))
        new.add_role("auditor")
        ops = [op[0] for op in diff_specs(old, new).model_ops]
        assert ops.index("revoke") < ops.index("add_role")

    def test_removed_role_is_torn_down_after_its_references(self):
        old = spec()
        new = spec()
        new.roles.pop("clerk")
        diff = diff_specs(old, new)
        assert diff.removed_roles == {"clerk"}
        assert ("delete_role", "clerk") in diff.model_ops

    def test_grant_only_change_seeds_no_regeneration(self):
        # grants are decision-time model state, not rule shape: the
        # differ must not seed regeneration for them
        new = spec()
        new.grants.append(("clerk", "read", "chart"))
        diff = diff_specs(spec(), new)
        assert diff.regen_seeds == set()
        assert ("grant", "clerk", "read", "chart") in diff.model_ops

    def test_descriptor_change_seeds_exactly_its_role(self):
        from repro.gtrbac.constraints import DurationConstraint
        new = spec()
        new.durations.append(DurationConstraint("nurse", 60.0, None))
        diff = diff_specs(spec(), new)
        assert diff.changed_roles == {"nurse"}
        assert diff.regen_seeds == {"nurse"}

    def test_new_role_is_a_regen_seed(self):
        new = spec()
        new.add_role("auditor")
        assert diff_specs(spec(), new).regen_seeds == {"auditor"}

    def test_privacy_and_threshold_flags(self):
        new = spec()
        new.purposes.append(("ops", None))
        diff = diff_specs(spec(), new)
        assert diff.privacy_changed
        assert not diff.thresholds_changed


class TestRuleSignature:
    def test_signature_ignores_grants(self):
        new = spec()
        new.grants.append(("clerk", "read", "chart"))
        assert rule_signature(spec(), "clerk") \
            == rule_signature(new, "clerk")

    def test_signature_sees_cardinality(self):
        new = spec()
        new.add_role("clerk", 2)
        assert rule_signature(spec(), "clerk") \
            != rule_signature(new, "clerk")


class TestRuleIdentityPreservation:
    """The ISSUE's headline satellite: a policy push whose delta does
    not touch a role's rule shape must leave that role's rule objects
    untouched — same identity, same quarantine/fault state."""

    def test_grant_only_push_regenerates_nothing(self):
        engine = ActiveRBACEngine.from_policy(spec())
        new = spec()
        new.grants.append(("clerk", "read", "chart"))
        before = {rule.name: id(rule) for rule in engine.rules}
        report = regenerate_diff(engine, diff_specs(engine.policy, new))
        assert report.rules_touched == 0
        assert {rule.name: id(rule) for rule in engine.rules} == before

    def test_untouched_roles_keep_identity_and_quarantine(self):
        from repro.gtrbac.constraints import DurationConstraint
        engine = ActiveRBACEngine.from_policy(spec())
        # poison one clerk rule's containment state: a deployment that
        # does not change clerk must not reset it
        clerk_rules = engine.rules.by_tags(**{"role:clerk": "1"})
        assert clerk_rules
        victim = clerk_rules[0]
        victim.quarantined = True
        victim.fault_count = 7
        before = {rule.name: id(rule) for rule in engine.rules}

        new = spec()
        new.durations.append(DurationConstraint("nurse", 60.0, None))
        diff = diff_specs(engine.policy, new)
        engine.policy.durations.append(
            DurationConstraint("nurse", 60.0, None))
        report = regenerate_diff(engine, diff)

        assert report.affected_roles == {"nurse"}
        after = {rule.name: id(rule) for rule in engine.rules}
        for name, ident in after.items():
            if "nurse" not in name.lower():
                assert before.get(name) == ident, (
                    f"rule {name} was churned by an unrelated push")
        survivor = engine.rules.by_tags(**{"role:clerk": "1"})[0]
        assert survivor is victim
        assert survivor.quarantined
        assert survivor.fault_count == 7

    def test_removed_roles_are_excluded_from_seeds(self):
        engine = ActiveRBACEngine.from_policy(spec())
        new = spec()
        new.roles.pop("clerk")
        diff = diff_specs(engine.policy, new)
        # clerk is removed, not regenerated; seeds must not include it
        assert "clerk" not in diff.regen_seeds
        report = regenerate_diff(engine, diff)
        assert "clerk" not in report.affected_roles

    def test_empty_seed_set_is_a_true_noop(self):
        engine = ActiveRBACEngine.from_policy(spec())
        version_before = engine.rules.version
        report = regenerate_diff(engine, diff_specs(spec(), spec()))
        assert report.rules_touched == 0
        assert engine.rules.version == version_before
