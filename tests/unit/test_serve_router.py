"""Unit: shard routing rules and the RCU epoch-swap surface."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.errors import AdministrationError
from repro.federation import RoleMapping, guest_principal
from repro.kernel import KERNEL_DENY, KERNEL_GRANT
from repro.serve import ADMIN_OPS, ShardRouter

ALPHA = """
policy alpha {
  role Writer; role Reader;
  hierarchy Writer > Reader;
  user ada; user bob;
  assign ada to Writer;
  assign bob to Reader;
  permission edit on doc;
  permission view on doc;
  grant edit on doc to Writer;
  grant view on doc to Reader;
}
"""

BETA = """
policy beta {
  role Guest;
  user eve;
  assign eve to Guest;
  permission ping on host;
  grant ping on host to Guest;
}
"""


def engine_for(text):
    return ActiveRBACEngine.from_policy(parse_policy(text))


@pytest.fixture
def router():
    r = ShardRouter()
    r.add_shard("alpha", engine_for(ALPHA))
    r.add_shard("beta", engine_for(BETA))
    r.add_mapping(RoleMapping("alpha", "Writer", "beta", "Guest"))
    return r


class TestRouting:
    def test_home_qualified_user_routes_home(self, router):
        shard, principal = router.resolve("ada@alpha")
        assert shard.name == "alpha"
        assert principal == "ada"

    def test_explicit_domain_wins_over_sole_shard(self):
        r = ShardRouter()
        r.add_shard("alpha", engine_for(ALPHA))
        shard, principal = r.resolve("ada", domain="alpha")
        assert (shard.name, principal) == ("alpha", "ada")

    def test_bare_user_with_one_shard_routes_there(self):
        r = ShardRouter()
        r.add_shard("beta", engine_for(BETA))
        shard, principal = r.resolve("eve")
        assert (shard.name, principal) == ("beta", "eve")

    def test_bare_user_with_many_shards_is_ambiguous(self, router):
        with pytest.raises(AdministrationError):
            router.resolve("ada")

    def test_unknown_shard_rejected(self, router):
        with pytest.raises(AdministrationError):
            router.resolve("ada", domain="gamma")
        with pytest.raises(AdministrationError):
            router.shard("gamma")

    def test_empty_user_rejected(self, router):
        with pytest.raises(AdministrationError):
            router.resolve("@alpha")

    def test_cross_shard_visit_provisions_guest(self, router):
        # ada is a Writer at home; the mapping entitles Guest in beta
        result = router.check("ada@alpha", "ping", "host", domain="beta")
        assert result["allowed"] is True
        assert result["shard"] == "beta"
        beta = router.shard("beta").engine
        principal = guest_principal("ada", "alpha")
        assert principal in beta.model.users
        # second touch reuses the provisioned guest session
        again = router.check("ada@alpha", "ping", "host", domain="beta")
        assert again["session"] == result["session"]

    def test_unentitled_visitor_fails_closed(self, router):
        # bob is only a Reader; no mapping entitles beta roles
        with pytest.raises(AdministrationError):
            router.check("bob@alpha", "ping", "host", domain="beta")


class TestCheck:
    def test_kernel_path_with_session_reuse(self, router):
        first = router.check("ada@alpha", "edit", "doc")
        assert first["allowed"] is True
        assert first["path"] == "kernel"
        second = router.check("ada@alpha", "view", "doc")
        assert second["session"] == first["session"]

    def test_denied_check_reports_not_allowed(self, router):
        result = router.check("bob@alpha", "edit", "doc")
        assert result["allowed"] is False

    def test_tracing_falls_back_to_interpreted(self, router):
        shard = router.shard("alpha")
        shard.engine.obs.tracer.enabled = True
        result = router.check("ada@alpha", "edit", "doc")
        assert result["allowed"] is True
        assert result["path"] == "interpreted"

    def test_stale_session_recreated(self, router):
        first = router.check("ada@alpha", "edit", "doc")
        shard = router.shard("alpha")
        shard.engine.delete_session(first["session"])
        second = router.check("ada@alpha", "edit", "doc")
        assert second["allowed"] is True
        assert second["session"] != first["session"]

    def test_explain_carries_shard_and_epoch(self, router):
        payload = router.explain("ada@alpha", "edit", "doc")
        assert payload["allowed"] is True
        assert payload["shard"] == "alpha"
        assert payload["epoch"] == router.shard("alpha").epoch


class TestRoutePurity:
    def test_route_is_side_effect_free(self, router):
        """The front-end consults route() before committing work to a
        shard, so it must not provision anything."""
        shard, principal = router.route("ada@alpha", "beta")
        assert shard.name == "beta"
        assert principal == guest_principal("ada", "alpha")
        beta = router.shard("beta").engine
        assert principal not in beta.model.users
        assert not shard._sessions

    def test_route_resolve_agree_on_target(self, router):
        routed = router.route("ada@alpha", "beta")
        resolved = router.resolve("ada@alpha", "beta")
        assert routed[0] is resolved[0]
        assert routed[1] == resolved[1]


class TestDeadline:
    def test_live_deadline_keeps_the_kernel_fast_path(self, router):
        from repro.clock import Deadline

        result = router.check("ada@alpha", "edit", "doc",
                              deadline=Deadline(wall_budget=30.0))
        assert result["allowed"] is True
        assert result["path"] == "kernel"
        assert "timed_out" not in result

    def test_exhausted_deadline_denies_with_timed_out(self, router):
        from repro.clock import Deadline

        clock = [100.0]
        dead = Deadline(wall_budget=0.5, wall=lambda: clock[0])
        clock[0] += 1.0  # budget spent while queued
        result = router.check("ada@alpha", "edit", "doc",
                              deadline=dead)
        assert result["allowed"] is False
        assert result["timed_out"] is True
        assert result["path"] == "interpreted"


class TestDegradedMode:
    def test_warm_session_answers_from_frozen_kernel(self, router):
        shard = router.shard("alpha")
        warm = router.check("ada@alpha", "edit", "doc")
        assert warm["allowed"] is True
        result = shard.check_degraded("ada", "edit", "doc")
        assert result["allowed"] is True
        assert result["path"] == "degraded"
        assert result["degraded"] is True
        assert result["epoch"] == warm["epoch"]
        assert result["session"] == warm["session"]

    def test_cold_caller_denied_fail_closed(self, router):
        shard = router.shard("alpha")
        result = shard.check_degraded("ada", "edit", "doc")
        assert result["allowed"] is False
        assert result["session"] is None

    def test_degraded_denies_what_the_kernel_denies(self, router):
        shard = router.shard("alpha")
        router.check("bob@alpha", "edit", "doc")  # warm bob
        result = shard.check_degraded("bob", "edit", "doc")
        assert result["allowed"] is False

    def test_degraded_reads_never_touch_the_engine_pipeline(self, router):
        shard = router.shard("alpha")
        router.check("ada@alpha", "edit", "doc")
        fired_before = shard.engine.obs.decisions.labels("grant").value
        shard.check_degraded("ada", "edit", "doc")
        assert shard.engine.obs.decisions.labels("grant").value == \
            fired_before

    def test_degraded_decisions_land_in_the_flight_recorder(self, router):
        shard = router.shard("alpha")
        router.check("ada@alpha", "edit", "doc")
        shard.check_degraded("ada", "edit", "doc")
        records = [r for r in shard.engine.flight.snapshot()
                   if r["kind"] == "decision"
                   and r["path"] == "degraded"]
        assert records
        assert records[-1]["deny_cause"] == "breaker_open"
        assert records[-1]["decision"] == "grant"


class TestEpochSwap:
    def test_admin_op_swaps_epoch(self, router):
        shard = router.shard("alpha")
        before = shard.epoch
        summary = shard.admin_op("grant", {
            "role": "Reader", "operation": "edit", "object": "doc"})
        assert summary["swapped"] is True
        assert summary["previous_epoch"] == before
        assert shard.epoch > before

    def test_old_reference_keeps_answering_old_epoch(self, router):
        """The RCU contract: a reader holding the pre-swap kernel keeps
        deciding against the old policy; the router serves the new."""
        shard = router.shard("alpha")
        sid = shard.session_for("bob")
        old_kernel = shard.kernel
        assert old_kernel.evaluate(sid, "edit", "doc") == KERNEL_DENY

        shard.admin_op("grant", {
            "role": "Reader", "operation": "edit", "object": "doc"})

        # the old reference is immutable: same epoch, same verdict
        assert old_kernel.epoch < shard.kernel.epoch
        assert old_kernel.evaluate(sid, "edit", "doc") == KERNEL_DENY
        # the published kernel serves the new policy
        assert shard.kernel.evaluate(sid, "edit", "doc") == KERNEL_GRANT
        assert router.check("bob@alpha", "edit", "doc")["allowed"] is True

    def test_readers_never_recompile(self, router):
        """After a publish, request traffic must not trigger another
        kernel build: the published reference stays identity-stable."""
        shard = router.shard("alpha")
        shard.admin_op("grant", {
            "role": "Reader", "operation": "edit", "object": "doc"})
        published = shard.kernel
        for _ in range(20):
            router.check("bob@alpha", "edit", "doc")
        assert shard.kernel is published
        assert shard.engine._kernel is published

    def test_unknown_admin_op_rejected(self, router):
        with pytest.raises(AdministrationError):
            router.shard("alpha").admin_op("drop_table", {})

    def test_admin_ops_registry_covers_lifecycle(self):
        assert {"grant", "revoke", "assign", "deassign", "add_role",
                "enable_role", "disable_role", "lock_user",
                "unlock_user"} <= set(ADMIN_OPS)


class TestHealth:
    def test_shard_health_has_serve_fields(self, router):
        router.check("ada@alpha", "edit", "doc")
        report = router.shard("alpha").health()
        serve = report["serve"]
        assert serve["shard"] == "alpha"
        assert serve["published_epoch"] == router.shard("alpha").epoch
        assert serve["checks"] >= 1
        assert serve["sessions"] >= 1
        assert serve["wal_attached"] is False

    def test_router_health_aggregates(self, router):
        report = router.health()
        assert report["status"] == "ok"
        assert set(report["shards"]) == {"alpha", "beta"}

    def test_quarantine_degrades_aggregate(self, router):
        engine = router.shard("beta").engine
        victim = next(iter(engine.rules)).name
        engine.rules.quarantine(victim, reason="unit-test")
        assert router.health()["status"] == "degraded"

    def test_describe_lists_shards(self, router):
        text = router.describe()
        assert "alpha" in text and "beta" in text
