"""Unit tests for privacy-aware RBAC: purposes and object policies."""

import pytest

from repro.extensions.privacy import ObjectPolicy, PrivacyRegistry, PurposeTree


@pytest.fixture
def purposes():
    tree = PurposeTree()
    tree.add("healthcare")
    tree.add("treatment", parent="healthcare")
    tree.add("billing", parent="healthcare")
    tree.add("emergency", parent="treatment")
    tree.add("marketing")
    return tree


class TestPurposeTree:
    def test_membership(self, purposes):
        assert "treatment" in purposes
        assert "ghost" not in purposes
        assert sorted(purposes.purposes()) == [
            "billing", "emergency", "healthcare", "marketing", "treatment"]

    def test_duplicate_rejected(self, purposes):
        with pytest.raises(ValueError):
            purposes.add("treatment")

    def test_unknown_parent_rejected(self, purposes):
        with pytest.raises(ValueError):
            purposes.add("x", parent="ghost")

    def test_ancestors_inclusive(self, purposes):
        assert purposes.ancestors_inclusive("emergency") == {
            "emergency", "treatment", "healthcare"}
        assert purposes.ancestors_inclusive("marketing") == {"marketing"}

    def test_descendants_inclusive(self, purposes):
        assert purposes.descendants_inclusive("healthcare") == {
            "healthcare", "treatment", "billing", "emergency"}

    def test_unknown_purpose_queries_raise(self, purposes):
        with pytest.raises(ValueError):
            purposes.ancestors_inclusive("ghost")
        with pytest.raises(ValueError):
            purposes.descendants_inclusive("ghost")

    def test_covers_downward_only(self, purposes):
        assert purposes.covers("healthcare", "emergency")
        assert purposes.covers("treatment", "treatment")
        assert not purposes.covers("emergency", "healthcare")
        assert not purposes.covers("marketing", "treatment")
        assert not purposes.covers("ghost", "treatment")


@pytest.fixture
def registry(purposes):
    reg = PrivacyRegistry(purposes=purposes)
    reg.add_policy(ObjectPolicy("patient.dat", "read", "treatment",
                                obligations=("notify-owner",)))
    reg.add_policy(ObjectPolicy("patient.dat", "write", "emergency"))
    return reg


class TestPrivacyRegistry:
    def test_unregulated_object_allowed_without_purpose(self, registry):
        allowed, obligations = registry.compliant("public.txt", "read", None)
        assert allowed and obligations == ()

    def test_regulated_object_requires_purpose(self, registry):
        allowed, _ = registry.compliant("patient.dat", "read", None)
        assert not allowed

    def test_unknown_purpose_denied(self, registry):
        allowed, _ = registry.compliant("patient.dat", "read", "ghost")
        assert not allowed

    def test_covered_purpose_allowed_with_obligations(self, registry):
        allowed, obligations = registry.compliant(
            "patient.dat", "read", "emergency")  # under treatment
        assert allowed
        assert obligations == ("notify-owner",)

    def test_exact_purpose_allowed(self, registry):
        allowed, _ = registry.compliant("patient.dat", "read", "treatment")
        assert allowed

    def test_too_general_purpose_denied(self, registry):
        # policy grants 'treatment'; requesting under the broader
        # 'healthcare' purpose is NOT covered
        allowed, _ = registry.compliant("patient.dat", "read", "healthcare")
        assert not allowed

    def test_operation_mismatch_denied(self, registry):
        # write is only allowed for 'emergency'
        allowed, _ = registry.compliant("patient.dat", "write", "treatment")
        assert not allowed
        allowed, _ = registry.compliant("patient.dat", "write", "emergency")
        assert allowed

    def test_regulated_object_any_operation(self, registry):
        # 'delete' has no policy but the object is regulated -> denied
        allowed, _ = registry.compliant("patient.dat", "delete", "treatment")
        assert not allowed

    def test_policy_with_unknown_purpose_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add_policy(ObjectPolicy("x", "read", "ghost"))

    def test_is_regulated(self, registry):
        assert registry.is_regulated("patient.dat")
        assert not registry.is_regulated("public.txt")

    def test_add_purposes_bulk(self):
        registry = PrivacyRegistry()
        registry.add_purposes([("a", None), ("b", "a")])
        assert registry.purposes.covers("a", "b")

    def test_policies_for(self, registry):
        policies = registry.policies_for("patient.dat", "read")
        assert len(policies) == 1
        assert policies[0].purpose == "treatment"
        assert "notify-owner" in policies[0].describe()
