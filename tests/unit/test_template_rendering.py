"""Golden tests: generated rules render in the paper's textual style.

The paper presents its rules as ``RULE [ name ON ... WHEN ... THEN ...
ELSE ... ]`` listings with conditions like ``user IN userL`` and
``checkAssignedR1(user) IS TRUE``.  These tests pin the rendered text of
one instance of every template so the condition vocabulary stays
recognisably the paper's.
"""

import pytest

from repro import ActiveRBACEngine, parse_policy

POLICY = """
policy golden {
  role R1; role Senior; role Partner; role Dep; role Anchor;
  role Twin; role Audit;
  user bob;
  hierarchy Senior > R1;
  dsd pair roles R1, Partner;
  role Limited max_active_users 5;
  duration R1 7200;
  duration R1 3600 for bob;
  transaction Dep during Anchor;
  disabling_sod cov roles Twin, Audit daily 10:00 to 17:00;
  require Audit when enabling Twin;
  prerequisite Dep requires R1;
  context Dep requires location == "office";
}
"""


@pytest.fixture(scope="module")
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


def rendered(engine, name):
    return engine.rules.get(name).render()


class TestActivationRuleText:
    def test_aar4_full_condition_vocabulary(self, engine):
        text = rendered(engine, "AAR4.R1")
        for fragment in (
            "RULE [ AAR4.R1",
            "ON    addActiveRole.R1",
            "(user IN userL)",
            "(sessionId IN sessionL)",
            "(sessionId IN checkUserSessions(user))",
            "(R1 NOT IN checkSessionRoles(user))",
            "(checkAuthorizationR1(user) IS TRUE)",
            "(checkDynamicSoDSet(user, R1) IS TRUE)",
            "THEN  addSessionRoleR1(sessionId)",
            'ELSE  raise error "Access Denied Cannot Activate"',
        ):
            assert fragment in text, fragment

    def test_aar1_uses_check_assigned(self, engine):
        text = rendered(engine, "AAR1.Anchor")
        assert "checkAssignedAnchor(user) IS TRUE" in text
        assert "checkAuthorization" not in text

    def test_prerequisite_and_anchor_and_context_conditions(self, engine):
        text = rendered(engine, "AAR1.Dep")
        assert "prerequisiteRoles(Dep) active in session" in text
        assert "anchorRole(Dep) currently activated" in text
        assert "contextConstraints(Dep, activate) satisfied" in text


class TestCommitRuleText:
    def test_cardinality_condition_mirrors_paper(self, engine):
        text = rendered(engine, "CC.Limited")
        assert "Cardinality" in text and "INCR" in text
        assert 'raise error "Maximum Number of Roles Reached"' in text

    def test_plain_commit_has_user_bound_only(self, engine):
        text = rendered(engine, "CC.Anchor")
        assert "activeRoleCount(user) < maxActiveRoles(user)" in text
        assert "INCR" not in text


class TestTemporalAndCfdText:
    def test_duration_rules_exist_for_both_scopes(self, engine):
        role_wide = rendered(engine, "TSOD.R1")
        per_user = rendered(engine, "TSOD.R1.bob")
        assert "ON    durationExpired.R1" in role_wide
        assert "ON    durationExpired.R1.bob" in per_user
        assert "deactivateRoleR1(sessionId)" in role_wide

    def test_disable_rule_mentions_partner_and_interval(self, engine):
        text = rendered(engine, "DR.Twin")
        assert "checkActive(Audit) IS TRUE within (I, P)" in text
        assert 'raise error "Denied as partner Already Disabled"' in text

    def test_enable_rule_mentions_cfd_partner(self, engine):
        text = rendered(engine, "ER.Twin")
        assert "enableRoleTwin()" in text
        assert "enableRoleAudit()" in text

    def test_anchor_cleanup_rule(self, engine):
        text = rendered(engine, "ASEC.Anchor")
        assert "activeUserCount(Anchor) == 0" in text
        assert "deactivate Dep" in text


class TestGlobalRuleText:
    def test_check_access_for_any_clause(self, engine):
        text = rendered(engine, "CA.checkAccess")
        assert "ForANY role IN getSessionRoles(sessionId)" in text
        assert ("checkPermissions(operation, object, role, scope) "
                "IS TRUE") in text
        assert 'ELSE  raise error "Permission Denied"' in text

    def test_assign_user_rule(self, engine):
        text = rendered(engine, "GR.assignUser")
        assert "checkStaticSoD(user, role) IS TRUE" in text
        assert "role NOT IN assignedRoles(user)" in text

    def test_pool_rendering_groups(self, engine):
        pool = engine.rules.render_pool()
        assert "-- administrative rules" in pool
        assert "-- activity_control rules" in pool
        assert "-- active_security rules" in pool
