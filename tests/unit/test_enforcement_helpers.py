"""Unit tests for the shared enforcement predicates (both engines)."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.extensions.context import ContextConstraint, ContextOp

POLICY = """
policy helpers {
  role Programmer max_active_users 2;
  role Nurse; role Doctor; role Manager; role JuniorEmp;
  role FileUser;
  user jane max_active_roles 2;
  user bob; user amy;
  assign jane to Programmer;
  assign jane to Nurse;
  assign jane to Doctor;
  assign bob to Programmer;
  assign amy to Programmer;
  assign bob to Manager;
  assign bob to JuniorEmp;
  assign bob to FileUser;
  prerequisite Doctor requires Nurse;
  transaction JuniorEmp during Manager;
  disabling_sod cov roles Nurse, Doctor daily 10:00 to 17:00;
  duration Programmer 1000;
  duration Programmer 500 for jane;
  context FileUser requires network == "secure";
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestCardinalityHelpers:
    def test_role_cardinality_counts_distinct_users(self, engine):
        s_bob = engine.create_session("bob")
        s_amy = engine.create_session("amy")
        engine.add_active_role(s_bob, "Programmer")
        assert engine.role_cardinality_ok("Programmer", "amy")
        engine.add_active_role(s_amy, "Programmer")
        assert not engine.role_cardinality_ok("Programmer", "jane")
        # a user already active does not count again
        assert engine.role_cardinality_ok("Programmer", "bob")

    def test_user_cardinality(self, engine):
        sid = engine.create_session("jane")
        engine.add_active_role(sid, "Programmer")
        engine.context.set("ignored", 0)
        engine.add_active_role(sid, "Nurse")
        assert not engine.user_cardinality_ok("jane", "Doctor")
        assert engine.user_cardinality_ok("jane", "Nurse")  # already active
        assert engine.user_cardinality_ok("bob", "Nurse")   # no limit

    def test_unknown_user_unlimited(self, engine):
        assert engine.user_cardinality_ok("ghost", "Nurse")


class TestCfdHelpers:
    def test_prerequisites_ok(self, engine):
        sid = engine.create_session("jane")
        assert not engine.prerequisites_ok(sid, "Doctor")
        engine.add_active_role(sid, "Nurse")
        assert engine.prerequisites_ok(sid, "Doctor")
        assert engine.prerequisites_ok(sid, "Programmer")  # none declared
        assert not engine.prerequisites_ok("ghost", "Doctor")

    def test_transaction_anchor_ok(self, engine):
        assert not engine.transaction_anchor_ok("JuniorEmp")
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Manager")
        assert engine.transaction_anchor_ok("JuniorEmp")
        assert engine.transaction_anchor_ok("Nurse")  # not a dependent

    def test_transaction_dependents_of(self, engine):
        assert engine.transaction_dependents_of("Manager") == ["JuniorEmp"]
        assert engine.transaction_dependents_of("Nurse") == []


class TestTemporalHelpers:
    def test_disabling_sod_inside_interval(self, engine):
        engine.advance_time(12 * 3600)  # noon: interval 10:00-17:00
        assert engine.disabling_sod_ok("Nurse")  # Doctor still enabled
        engine.model.set_role_enabled("Doctor", False)
        assert not engine.disabling_sod_ok("Nurse")

    def test_disabling_sod_outside_interval(self, engine):
        engine.model.set_role_enabled("Doctor", False)
        assert engine.disabling_sod_ok("Nurse")  # midnight: no constraint

    def test_duration_for_prefers_per_user(self, engine):
        assert engine.duration_for("Programmer", "jane") == 500.0
        assert engine.duration_for("Programmer", "bob") == 1000.0
        assert engine.duration_for("Nurse", "bob") is None


class TestContextHelpers:
    def test_activation_context_defaults_unsatisfied(self, engine):
        # 'network' unset -> EQ 'secure' is false
        assert not engine.activation_context_ok("FileUser")
        engine.context.set("network", "secure")
        assert engine.activation_context_ok("FileUser")
        assert engine.activation_context_ok("Nurse")  # unconstrained

    def test_access_context_separate_family(self, engine):
        engine.policy.context_constraints.append(ContextConstraint(
            "FileUser", "network", ContextOp.EQ, "secure",
            applies_to="access"))
        engine.context.set("network", "insecure")
        assert not engine.access_context_ok("FileUser")
        engine.context.set("network", "secure")
        assert engine.access_context_ok("FileUser")


class TestCanActivateReasons:
    def test_reason_strings(self, engine):
        sid = engine.create_session("jane")
        assert engine.can_activate("ghost", "Nurse") == (
            False, "unknown session")
        assert engine.can_activate(sid, "ghost") == (False, "unknown role")
        ok, reason = engine.can_activate(sid, "Doctor")
        assert not ok and reason == "prerequisite role not active"
        engine.add_active_role(sid, "Nurse")
        assert engine.can_activate(sid, "Doctor") == (True, "")
        engine.add_active_role(sid, "Doctor")
        assert engine.can_activate(sid, "Doctor") == (
            False, "role already active in session")
        ok, reason = engine.can_activate(sid, "Programmer")
        assert not ok and reason == "Maximum Number of Roles Reached"

    def test_locked_user_reason(self, engine):
        sid = engine.create_session("bob")
        engine.locked_users.add("bob")
        ok, reason = engine.can_activate(sid, "Manager")
        assert not ok and "locked" in reason

    def test_disabled_role_reason(self, engine):
        sid = engine.create_session("bob")
        engine.model.set_role_enabled("Manager", False)
        ok, reason = engine.can_activate(sid, "Manager")
        assert not ok and reason == "role not enabled"

    def test_unauthorized_reason(self, engine):
        sid = engine.create_session("amy")
        ok, reason = engine.can_activate(sid, "Manager")
        assert not ok and reason == "Access Denied Cannot Activate"
