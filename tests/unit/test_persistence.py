"""Unit tests for engine snapshot/restore."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.persistence import dumps, loads, restore, snapshot

POLICY = """
policy persisted {
  role A; role B; role Timed; role Windowed;
  user bob; user carol;
  assign bob to A; assign bob to Timed;
  assign carol to B;
  permission read on doc;
  grant read on doc to A;
  duration Timed 1000;
  enable Windowed daily 08:00 to 16:00;
  context A requires site == "hq";
}
"""


@pytest.fixture
def engine():
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    engine.context.set("site", "hq")
    return engine


class TestSnapshotShape:
    def test_snapshot_is_json_serialisable(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        text = dumps(engine)
        assert '"version": 2' in text

    def test_snapshot_captures_sessions(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        snap = snapshot(engine)
        (session,) = snap["sessions"]
        assert session["id"] == sid and session["user"] == "bob"
        assert "A" in session["activations"]

    def test_unsupported_version_rejected(self, engine):
        snap = snapshot(engine)
        snap["version"] = 99
        with pytest.raises(ValueError):
            restore(snap)


class TestRoundTrip:
    def test_sessions_and_decisions_survive(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        assert engine.check_access(sid, "read", "doc")
        revived = loads(dumps(engine))
        assert revived.model.session_roles(sid) == {"A"}
        assert revived.check_access(sid, "read", "doc")

    def test_clock_continues(self, engine):
        engine.advance_time(500.0)
        revived = restore(snapshot(engine))
        assert revived.clock.now == 500.0

    def test_locked_users_and_context_survive(self, engine):
        engine.lock_user("carol")
        revived = restore(snapshot(engine))
        assert "carol" in revived.locked_users
        assert revived.context.get("site") == "hq"

    def test_role_status_overrides_window_default(self, engine):
        # at t=0 Windowed is disabled by its 08:00-16:00 window; force
        # it enabled, snapshot, restore: the override survives
        engine.model.set_role_enabled("Windowed", True)
        revived = restore(snapshot(engine))
        assert revived.model.is_role_enabled("Windowed")

    def test_session_ids_do_not_collide_after_restore(self, engine):
        engine.create_session("bob")
        revived = restore(snapshot(engine))
        fresh = revived.create_session("carol")
        assert fresh not in ("s1",)  # counter resumed past s1

    def test_rule_pool_regenerated(self, engine):
        revived = restore(snapshot(engine))
        assert {rule.name for rule in revived.rules} == \
               {rule.name for rule in engine.rules}


class TestDurationRearming:
    def test_remaining_duration_owed_after_restore(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Timed")
        engine.advance_time(400.0)  # 600 s remain of the 1000 s budget
        revived = restore(snapshot(engine))
        revived.advance_time(599.0)
        assert "Timed" in revived.model.session_roles(sid)
        revived.advance_time(1.0)
        assert "Timed" not in revived.model.session_roles(sid)

    def test_expired_while_down_deactivates_on_restore(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Timed")
        snap = snapshot(engine)
        snap["clock"] = 5000.0  # the engine was down past expiry
        revived = restore(snap)
        assert "Timed" not in revived.model.session_roles(sid)

    def test_rearmed_timer_respects_reactivation(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Timed")
        engine.advance_time(400.0)
        revived = restore(snapshot(engine))
        revived.drop_active_role(sid, "Timed")
        revived.add_active_role(sid, "Timed")  # fresh 1000 s budget
        revived.advance_time(700.0)  # old remainder would fire at 600
        assert "Timed" in revived.model.session_roles(sid)
        revived.advance_time(300.0)
        assert "Timed" not in revived.model.session_roles(sid)


class TestSnapshotPurity:
    def test_snapshot_does_not_consume_counters(self, engine):
        """The seed drained the id allocators with next() — two
        snapshots in a row must agree, and session ids must continue
        exactly where they would have without any snapshot."""
        engine.create_session("bob")  # consumes s1
        first = snapshot(engine)["counters"]
        second = snapshot(engine)["counters"]
        assert first == second == {"session_seq": 2,
                                   "activation_seq": 1}
        assert engine.create_session("carol") == "s2"

    def test_snapshot_is_pure(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        before = dumps(engine)
        snapshot(engine)
        assert dumps(engine) == before


class TestInFlightDetections:
    def test_sequence_initiator_survives_round_trip(self, engine):
        """A buffered SEQUENCE initiator (half a detection) must not
        be lost: the terminator arriving *after* the restart still
        completes the composite."""
        fired = []
        for eng in (engine,):
            eng.detector.ensure_primitive("evA")
            eng.detector.ensure_primitive("evB")
            eng.detector.define_sequence("seqAB", "evA", "evB")
        engine.detector.raise_event("evA")  # in-flight half
        snap = snapshot(engine)
        assert "seqAB" in snap["detector"]

        revived = restore(snap)
        revived.detector.ensure_primitive("evA")
        revived.detector.ensure_primitive("evB")
        revived.detector.define_sequence("seqAB", "evA", "evB")
        revived.detector.state_restore(snap["detector"])
        revived.detector.subscribe("seqAB",
                                   lambda occ: fired.append(occ))
        revived.detector.raise_event("evB")
        assert len(fired) == 1

    def test_plus_countdown_in_snapshot(self, engine):
        """Duration countdowns are PLUS nodes; an active one shows up
        in the v2 detector state with its absolute deadline."""
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Timed")
        snap = snapshot(engine)
        plus_states = [s for s in snap["detector"].values()
                       if s["kind"] == "PlusNode" and s["pending"]]
        assert plus_states
        assert plus_states[0]["pending"][0]["deadline"] == 1000.0


class TestStalePolicyEntities:
    def test_removed_user_sessions_skipped(self, engine):
        sid = engine.create_session("carol")
        snap = snapshot(engine)
        snap["policy"] = snap["policy"].replace("user carol;", "")
        snap["policy"] = snap["policy"].replace(
            "assign carol to B;", "")
        revived = restore(snap)
        assert sid not in revived.model.sessions

    def test_restore_recorded_in_audit(self, engine):
        revived = restore(snapshot(engine))
        assert revived.audit.by_kind("admin.restore")

    def test_dropped_state_is_audited_and_counted(self, engine):
        """Silently `continue`-ing past removed users/roles hid data
        loss; every drop is now an audit record and the admin.restore
        record carries the totals."""
        sid_gone = engine.create_session("carol")
        sid_kept = engine.create_session("bob")
        engine.add_active_role(sid_kept, "Timed")
        snap = snapshot(engine)
        snap["policy"] = snap["policy"].replace("user carol;", "")
        snap["policy"] = snap["policy"].replace("assign carol to B;", "")
        snap["policy"] = snap["policy"].replace("role Timed;", "")
        snap["policy"] = snap["policy"].replace(
            "assign bob to Timed;", "")
        snap["policy"] = snap["policy"].replace("duration Timed 1000;", "")
        revived = restore(snap)
        assert sid_gone not in revived.model.sessions
        (drop_s,) = revived.audit.by_kind("restore.drop_session")
        assert drop_s.detail["session"] == sid_gone
        (drop_a,) = revived.audit.by_kind("restore.drop_activation")
        assert drop_a.detail["role"] == "Timed"
        (record,) = revived.audit.by_kind("admin.restore")
        assert record.detail["dropped_sessions"] == 1
        assert record.detail["dropped_activations"] == 1
