"""Unit tests for the fluent event-expression builder."""

import pytest

from repro.clock import TimerService, VirtualClock
from repro.events import EventDetector
from repro.events.expr import (
    E,
    aperiodic,
    aperiodic_star,
    negation,
    periodic,
    periodic_star,
)


@pytest.fixture
def det():
    detector = EventDetector(TimerService(VirtualClock()))
    for name in ("E1", "E2", "E3"):
        detector.define_primitive(name)
    return detector


def collect(det, name):
    hits = []
    det.subscribe(name, hits.append)
    return hits


class TestOperators:
    def test_or(self, det):
        (E("E1") | E("E2")).define(det, "O")
        hits = collect(det, "O")
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(hits) == 2

    def test_or_chain_flattens(self, det):
        expr = E("E1") | E("E2") | E("E3")
        expr.define(det, "O")
        hits = collect(det, "O")
        for name in ("E1", "E2", "E3"):
            det.raise_event(name)
        assert len(hits) == 3
        # flattened: exactly one composite defined
        assert len(det) == 4

    def test_and(self, det):
        (E("E1") & E("E2")).define(det, "A")
        hits = collect(det, "A")
        det.raise_event("E2")
        det.raise_event("E1")
        assert len(hits) == 1

    def test_sequence_shift_operator(self, det):
        (E("E1") >> E("E2")).define(det, "S")
        hits = collect(det, "S")
        det.raise_event("E2")
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(hits) == 1

    def test_then_method(self, det):
        E("E1").then(E("E2")).define(det, "S")
        hits = collect(det, "S")
        det.raise_event("E1")
        det.raise_event("E2")
        assert len(hits) == 1

    def test_plus(self, det):
        E("E1").plus(100).define(det, "P")
        hits = collect(det, "P")
        det.raise_event("E1")
        det.advance_time(100)
        assert len(hits) == 1

    def test_negation(self, det):
        negation("E1", "E2", "E3").define(det, "N")
        hits = collect(det, "N")
        det.raise_event("E1")
        det.raise_event("E3")
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E3")
        assert len(hits) == 1

    def test_aperiodic_and_star(self, det):
        aperiodic("E1", "E2", "E3").define(det, "AP")
        aperiodic_star("E1", "E2", "E3").define(det, "APS")
        ap, aps = collect(det, "AP"), collect(det, "APS")
        det.raise_event("E1")
        det.raise_event("E2")
        det.raise_event("E2")
        det.raise_event("E3")
        assert len(ap) == 2
        assert len(aps) == 1

    def test_periodic_and_star(self, det):
        periodic("E1", 10.0, "E3").define(det, "PD")
        periodic_star("E1", 10.0, "E3").define(det, "PS")
        pd, ps = collect(det, "PD"), collect(det, "PS")
        det.raise_event("E1")
        det.advance_time(25.0)
        det.raise_event("E3")
        assert len(pd) == 2
        assert len(ps) == 1 and ps[0].get("ticks") == 2


class TestComposition:
    def test_nested_expression_auto_names(self, det):
        """SEQ(OR(E1,E2), E3): the OR gets a derived name."""
        ((E("E1") | E("E2")) >> E("E3")).define(det, "root")
        hits = collect(det, "root")
        det.raise_event("E2")
        det.raise_event("E3")
        assert len(hits) == 1
        assert "root#1" in det  # the anonymous OR

    def test_paper_rule6_event_tree(self, det):
        """The paper's ET4 = Aperiodic(Start, Aperiodic(DailyOpen,
        OR(ET1, ET2), DailyClose), End) builds and detects."""
        for name in ("ET1", "ET2", "DailyOpen", "DailyClose",
                     "Start", "End"):
            det.ensure_primitive(name)
        et3 = E("ET1") | E("ET2")
        et5 = aperiodic(E("DailyOpen"), et3, E("DailyClose"))
        et4 = aperiodic(E("Start"), et5, E("End"))
        et4.define(det, "ET4")
        hits = collect(det, "ET4")
        det.raise_event("ET1")          # both windows closed: nothing
        det.raise_event("Start")        # outer window opens
        det.raise_event("ET1")          # inner window closed: nothing
        assert hits == []
        det.raise_event("DailyOpen")    # inner window opens
        det.raise_event("ET1")          # inside both windows
        det.raise_event("ET2")
        assert len(hits) == 2
        det.raise_event("DailyClose")
        det.raise_event("ET2")          # inner closed again
        assert len(hits) == 2
        det.raise_event("End")

    def test_string_coercion(self, det):
        ("E1" | E("E2")) if False else (E("E1") | "E2")
        expr = E("E1") | "E2"
        expr.define(det, "O")
        hits = collect(det, "O")
        det.raise_event("E2")
        assert len(hits) == 1

    def test_primitives_created_on_demand(self, det):
        (E("fresh1") >> E("fresh2")).define(det, "S")
        assert "fresh1" in det and "fresh2" in det

    def test_leaf_cannot_be_renamed(self, det):
        with pytest.raises(ValueError):
            E("E1").define(det, "alias")

    def test_leaf_define_under_own_name(self, det):
        assert E("E9").define(det, "E9") == "E9"
        assert "E9" in det

    def test_type_error_on_bad_operand(self, det):
        with pytest.raises(TypeError):
            E("E1") | 42  # type: ignore[operator]
