"""Unit tests for the rule pool manager: priorities, cascades, toggles."""

import pytest

from repro.clock import TimerService, VirtualClock
from repro.errors import (
    AccessDenied,
    DuplicateRuleError,
    RuleCascadeError,
    UnknownRuleError,
)
from repro.events import EventDetector
from repro.rules import RuleManager
from repro.rules.rule import (
    Action,
    Condition,
    Granularity,
    OWTERule,
    RuleClass,
    RuleOutcome,
)


@pytest.fixture
def det():
    detector = EventDetector(TimerService(VirtualClock()))
    for name in ("E1", "E2", "E3"):
        detector.define_primitive(name)
    return detector


@pytest.fixture
def mgr(det):
    return RuleManager(det)


def simple_rule(name, event, log, priority=0, enabled=True, **kwargs):
    return OWTERule(
        name=name, event=event, priority=priority, enabled=enabled,
        actions=[Action("log", lambda ctx: log.append(name))], **kwargs)


class TestPool:
    def test_add_and_get(self, mgr):
        log = []
        rule = simple_rule("R1", "E1", log)
        mgr.add(rule)
        assert len(mgr) == 1
        assert "R1" in mgr
        assert mgr.get("R1") is rule

    def test_duplicate_name_rejected(self, mgr):
        log = []
        mgr.add(simple_rule("R1", "E1", log))
        with pytest.raises(DuplicateRuleError):
            mgr.add(simple_rule("R1", "E2", log))

    def test_unknown_rule_raises(self, mgr):
        with pytest.raises(UnknownRuleError):
            mgr.get("ghost")
        with pytest.raises(UnknownRuleError):
            mgr.remove("ghost")

    def test_remove_stops_firing(self, mgr, det):
        log = []
        mgr.add(simple_rule("R1", "E1", log))
        mgr.remove("R1")
        det.raise_event("E1")
        assert log == []

    def test_remove_by_tags(self, mgr):
        log = []
        mgr.add(simple_rule("R1", "E1", log, tags={"role:PC": "1"}))
        mgr.add(simple_rule("R2", "E1", log, tags={"role:AC": "1"}))
        removed = mgr.remove_by_tags(**{"role:PC": "1"})
        assert [r.name for r in removed] == ["R1"]
        assert len(mgr) == 1


class TestFiring:
    def test_rule_fires_on_event(self, mgr, det):
        log = []
        mgr.add(simple_rule("R1", "E1", log))
        det.raise_event("E1")
        det.raise_event("E2")
        assert log == ["R1"]

    def test_multiple_rules_priority_order(self, mgr, det):
        log = []
        mgr.add(simple_rule("low", "E1", log, priority=0))
        mgr.add(simple_rule("high", "E1", log, priority=10))
        det.raise_event("E1")
        assert log == ["high", "low"]

    def test_equal_priority_insertion_order(self, mgr, det):
        log = []
        mgr.add(simple_rule("first", "E1", log))
        mgr.add(simple_rule("second", "E1", log))
        det.raise_event("E1")
        assert log == ["first", "second"]

    def test_disabled_rule_skipped(self, mgr, det):
        log = []
        mgr.add(simple_rule("R1", "E1", log, enabled=False))
        det.raise_event("E1")
        assert log == []
        mgr.enable("R1")
        det.raise_event("E1")
        assert log == ["R1"]

    def test_else_branch_fires_alt_actions(self, mgr, det):
        log = []
        mgr.add(OWTERule(
            name="R1", event="E1",
            conditions=[Condition("never", lambda ctx: False)],
            actions=[Action("then", lambda ctx: log.append("then"))],
            alt_actions=[Action("else", lambda ctx: log.append("else"))],
        ))
        det.raise_event("E1")
        assert log == ["else"]

    def test_veto_exception_propagates_to_raiser(self, mgr, det):
        mgr.add(OWTERule(
            name="R1", event="E1",
            conditions=[Condition("never", lambda ctx: False)],
            alt_actions=[Action("deny", lambda ctx: (_ for _ in ()).throw(
                AccessDenied("no")))],
        ))
        with pytest.raises(AccessDenied):
            det.raise_event("E1")

    def test_rule_added_mid_firing_not_run_this_round(self, mgr, det):
        log = []

        def add_rule(ctx):
            if "late" not in mgr:
                mgr.add(simple_rule("late", "E1", log))
            log.append("adder")

        mgr.add(OWTERule(name="adder", event="E1",
                         actions=[Action("add", add_rule)]))
        det.raise_event("E1")
        assert log == ["adder"]
        det.raise_event("E1")
        assert log == ["adder", "adder", "late"]


class TestCascades:
    def test_action_raising_event_triggers_nested_rules(self, mgr, det):
        log = []
        mgr.add(OWTERule(
            name="R1", event="E1",
            actions=[Action("cascade",
                            lambda ctx: ctx.raise_event("E2", hop=1))]))
        mgr.add(simple_rule("R2", "E2", log))
        det.raise_event("E1")
        assert log == ["R2"]

    def test_cascade_depth_limit(self, det):
        mgr = RuleManager(det, max_cascade_depth=5)
        mgr.add(OWTERule(
            name="loop", event="E1",
            actions=[Action("again", lambda ctx: ctx.raise_event("E1"))]))
        with pytest.raises(RuleCascadeError):
            det.raise_event("E1")

    def test_depth_resets_after_cascade(self, det):
        mgr = RuleManager(det, max_cascade_depth=3)
        log = []
        mgr.add(OWTERule(
            name="hop", event="E1",
            actions=[Action("to E2", lambda ctx: ctx.raise_event("E2"))]))
        mgr.add(simple_rule("leaf", "E2", log))
        det.raise_event("E1")
        det.raise_event("E1")
        assert log == ["leaf", "leaf"]


class TestQueriesAndToggles:
    def _populate(self, mgr):
        log = []
        mgr.add(simple_rule("a", "E1", log,
                            classification=RuleClass.ADMINISTRATIVE,
                            granularity=Granularity.GLOBALIZED,
                            tags={"role:PC": "1"}))
        mgr.add(simple_rule("b", "E1", log,
                            classification=RuleClass.ACTIVITY_CONTROL,
                            granularity=Granularity.LOCALIZED,
                            tags={"role:PC": "1", "kind": "activation"}))
        mgr.add(simple_rule("c", "E2", log,
                            classification=RuleClass.ACTIVE_SECURITY,
                            granularity=Granularity.SPECIALIZED))
        return log

    def test_by_classification(self, mgr):
        self._populate(mgr)
        names = [r.name for r in
                 mgr.by_classification(RuleClass.ACTIVE_SECURITY)]
        assert names == ["c"]

    def test_by_granularity(self, mgr):
        self._populate(mgr)
        names = [r.name for r in mgr.by_granularity(Granularity.LOCALIZED)]
        assert names == ["b"]

    def test_by_tags(self, mgr):
        self._populate(mgr)
        names = sorted(r.name for r in mgr.by_tags(**{"role:PC": "1"}))
        assert names == ["a", "b"]

    def test_set_enabled_by_tags(self, mgr, det):
        log = self._populate(mgr)
        changed = mgr.set_enabled_by_tags(False, **{"role:PC": "1"})
        assert changed == 2
        det.raise_event("E1")
        assert log == []
        assert mgr.set_enabled_by_tags(True, **{"role:PC": "1"}) == 2

    def test_set_enabled_by_classification(self, mgr):
        self._populate(mgr)
        changed = mgr.set_enabled_by_classification(
            RuleClass.ACTIVITY_CONTROL, False)
        assert changed == 1
        assert not mgr.get("b").enabled

    def test_summary(self, mgr):
        self._populate(mgr)
        summary = mgr.summary()
        assert summary["total"] == 3
        assert summary["class.administrative"] == 1
        assert summary["granularity.localized"] == 1
        assert summary["quarantined"] == 0

    def test_render_pool_groups_by_classification(self, mgr):
        self._populate(mgr)
        text = mgr.render_pool()
        assert "-- administrative rules (1) --" in text
        assert "-- active_security rules (1) --" in text


class TestObservers:
    def test_observer_sees_outcomes(self, mgr, det):
        seen = []
        mgr.observe(lambda rule, occurrence, outcome, error:
                    seen.append((rule.name, outcome, error)))
        mgr.add(OWTERule(
            name="R1", event="E1",
            conditions=[Condition("flip",
                                  lambda ctx: ctx.get("ok", False))]))
        det.raise_event("E1", ok=True)
        det.raise_event("E1", ok=False)
        assert seen[0] == ("R1", RuleOutcome.THEN, None)
        assert seen[1] == ("R1", RuleOutcome.ELSE, None)

    def test_observer_sees_denial_error(self, mgr, det):
        seen = []
        mgr.observe(lambda rule, occurrence, outcome, error:
                    seen.append((outcome, type(error).__name__
                                 if error else None)))
        mgr.add(OWTERule(
            name="R1", event="E1",
            conditions=[Condition("never", lambda ctx: False)],
            alt_actions=[Action("deny", lambda ctx: (_ for _ in ()).throw(
                AccessDenied("no")))],
        ))
        with pytest.raises(AccessDenied):
            det.raise_event("E1")
        assert seen == [(RuleOutcome.ELSE, "AccessDenied")]
