"""Unit tests for the metrics registry: counter/gauge/histogram math,
exposition formats, and the engine's stats() merge."""

import json

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
)

POLICY = """
policy demo {
  role A; role B;
  user u;
  hierarchy A > B;
  assign u to A;
  permission read on doc;
  grant read on doc to B;
}
"""


class TestCounter:
    def test_basic_increment(self):
        c = Counter("hits_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = Counter("hits_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_children_and_family_total(self):
        c = Counter("hits_total", label_names=("kind",))
        c.labels("a").inc()
        c.labels("a").inc()
        c.labels("b").inc(3)
        assert c.labels("a").value == 2
        assert c.labels("b").value == 3
        assert c.total() == 5

    def test_labeled_counter_rejects_direct_write(self):
        c = Counter("hits_total", label_names=("kind",))
        with pytest.raises(ValueError):
            c.inc()

    def test_unlabeled_counter_rejects_labels(self):
        with pytest.raises(ValueError):
            Counter("hits_total").labels("a")

    def test_label_arity_checked(self):
        c = Counter("hits_total", label_names=("a", "b"))
        with pytest.raises(ValueError):
            c.labels("only-one")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5


class TestHistogram:
    def test_observation_math(self):
        h = Histogram("lat_ns", buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            h.observe(value)
        assert h.count == 4
        assert h.sum == 5555
        assert h.mean() == pytest.approx(5555 / 4)

    def test_cumulative_buckets(self):
        h = Histogram("lat_ns", buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            h.observe(value)
        assert h.cumulative_buckets() == [
            (10, 1), (100, 2), (1000, 3), (float("inf"), 4)]

    def test_boundary_value_lands_in_its_bucket(self):
        # le semantics: an observation equal to the bound counts in it
        h = Histogram("lat_ns", buckets=(10, 100))
        h.observe(10)
        assert h.cumulative_buckets()[0] == (10, 1)

    def test_quantile_estimate(self):
        h = Histogram("lat_ns", buckets=(10, 100, 1000))
        for value in (1, 2, 3, 50, 500):
            h.observe(value)
        assert h.quantile(0.5) == 10     # 3 of 5 in the first bucket
        assert h.quantile(1.0) == 1000
        assert Histogram("e", buckets=(1,)).quantile(0.5) == 0.0

    def test_default_buckets_cover_ns_latencies(self):
        assert DEFAULT_LATENCY_BUCKETS_NS[0] == 1_000
        assert DEFAULT_LATENCY_BUCKETS_NS[-1] == 1_000_000_000

    def test_quantile_clamps_to_highest_finite_bound(self):
        # an overflow-bucket rank reports the highest finite bound, per
        # Prometheus histogram_quantile convention — never inf, which
        # would poison downstream arithmetic (p99 dashboards, ratios)
        h = Histogram("lat_ns", buckets=(10, 100))
        h.observe(5000)
        h.observe(9000)
        assert h.quantile(0.99) == 100
        assert h.quantile(1.0) == 100


class TestHistogramExpositionPin:
    """Pin the wire formats exactly: cumulative le-buckets ending in
    ``+Inf`` per Prometheus convention, in both exposition formats.  A
    scraper-visible format change must show up as a diff here."""

    def _registry(self):
        r = MetricsRegistry()
        h = r.histogram("rule_lat_ns", "per-rule latency", ("rule",),
                        buckets=(10, 100))
        child = h.labels("a")
        for value in (5, 50, 5000):
            child.observe(value)
        return r

    def test_prometheus_text_is_pinned(self):
        assert self._registry().render_prometheus() == (
            "# HELP rule_lat_ns per-rule latency\n"
            "# TYPE rule_lat_ns histogram\n"
            'rule_lat_ns_bucket{rule="a",le="10"} 1\n'
            'rule_lat_ns_bucket{rule="a",le="100"} 2\n'
            'rule_lat_ns_bucket{rule="a",le="+Inf"} 3\n'
            'rule_lat_ns_sum{rule="a"} 5055\n'
            'rule_lat_ns_count{rule="a"} 3\n'
        )

    def test_json_buckets_are_cumulative_with_inf(self):
        data = json.loads(self._registry().render_json_text())
        [series] = data["rule_lat_ns"]["series"]
        assert series["count"] == 3
        assert series["sum"] == 5055
        buckets = series["buckets"]
        # cumulative counts, monotone, closed by the +Inf bucket
        assert [b["count"] for b in buckets] == [1, 2, 3]
        assert [b["le"] for b in buckets][:2] == [10, 100]
        assert buckets[-1]["le"] in ("+Inf", float("inf"), "inf")


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "help")
        b = r.counter("x_total")
        assert a is b

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError):
            r.gauge("x_total")

    def test_label_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x_total", label_names=("a",))
        with pytest.raises(ValueError):
            r.counter("x_total", label_names=("b",))

    def test_prometheus_text_format(self):
        r = MetricsRegistry()
        r.counter("req_total", "requests", ("kind",)).labels("x").inc(2)
        r.histogram("lat_ns", "latency", buckets=(100, 1000)).observe(50)
        text = r.render_prometheus()
        assert "# TYPE req_total counter" in text
        assert 'req_total{kind="x"} 2' in text
        assert "# TYPE lat_ns histogram" in text
        assert 'lat_ns_bucket{le="100"} 1' in text
        assert 'lat_ns_bucket{le="+Inf"} 1' in text
        assert "lat_ns_sum 50" in text
        assert "lat_ns_count 1" in text

    def test_prometheus_label_escaping(self):
        r = MetricsRegistry()
        r.counter("c_total", "", ("v",)).labels('he said "hi"\n').inc()
        text = r.render_prometheus()
        assert r'he said \"hi\"\n' in text

    def test_json_round_trips(self):
        r = MetricsRegistry()
        r.counter("req_total", "requests", ("kind",)).labels("x").inc(2)
        r.histogram("lat_ns", buckets=(100,)).observe(10)
        data = json.loads(r.render_json_text())
        assert data["req_total"]["type"] == "counter"
        assert data["req_total"]["series"][0] == {
            "labels": {"kind": "x"}, "value": 2}
        hist = data["lat_ns"]["series"][0]
        assert hist["count"] == 1 and hist["sum"] == 10

    def test_snapshot_flat(self):
        r = MetricsRegistry()
        r.counter("req_total", "", ("kind",)).labels("x").inc(2)
        r.histogram("lat_ns", buckets=(100,)).observe(10)
        flat = r.snapshot_flat(prefix="obs.")
        assert flat["obs.req_total{kind=x}"] == 2
        assert flat["obs.lat_ns.count"] == 1
        assert flat["obs.lat_ns.sum"] == 10

    def test_reset_zeroes_but_keeps_definitions(self):
        r = MetricsRegistry()
        c = r.counter("req_total")
        c.inc(5)
        r.reset()
        assert "req_total" in r
        assert r.counter("req_total").value == 0


class TestEngineStatsMerge:
    """Satellite: engine.stats() merges the registry snapshot under a
    pinned key namespace so existing callers see richer counters with
    no API change."""

    def test_legacy_keys_survive_and_obs_keys_are_namespaced(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        engine.check_access(sid, "read", "doc")
        stats = engine.stats()
        # legacy namespace intact
        for key in ("events_raised", "events_detected", "rules",
                    "audit_entries"):
            assert key in stats
        # every new key lives under the obs. prefix
        new_keys = [k for k in stats if k.startswith("obs.")]
        assert new_keys, "registry snapshot missing from stats()"
        legacy = {k for k in stats if not k.startswith("obs.")}
        baseline = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        assert legacy == {k for k in baseline.stats()
                          if not k.startswith("obs.")}
        # the merged counters reflect real activity
        assert stats["obs.repro_events_raised_total{event=checkAccess}"] == 1
        assert stats["obs.repro_check_access_total{decision=grant}"] == 1
        assert stats[
            "obs.repro_check_access_ns{decision=grant}.count"] == 1

    def test_disabled_hub_contributes_nothing(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        engine.obs.enabled = False
        engine.obs.metrics.reset()
        sid = engine.create_session("u")
        engine.check_access(sid, "read", "doc")
        moved = {k: v for k, v in engine.obs.metrics
                 .snapshot_flat().items() if v}
        assert moved == {}
        assert sid in engine.model.sessions  # behaviour unchanged


class TestPipelineCounters:
    def test_simulated_traffic_moves_every_pillar(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        engine.obs.set_timing_interval(1)  # time every firing (no sampling)
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        engine.check_access(sid, "read", "doc")      # grant
        engine.check_access(sid, "write", "doc")     # deny
        hub = engine.obs
        # fan-out, cascade fast path and audit mirrors are collect-time
        # series — fold them before asserting
        hub.metrics.collect()
        assert hub.events_raised.total() > 0
        assert hub.events_detected.total() > 0
        assert hub.rule_firings.total() > 0
        assert hub.decisions.labels("grant").value == 1
        assert hub.decisions.labels("deny").value == 1
        assert hub.condition_ns.labels("CA.checkAccess").count == 2
        assert hub.action_ns.labels("CA.checkAccess").count == 2
        assert hub.cascade_depth.count > 0
        assert hub.session_churn.labels("create").value == 1
        assert hub.activation_churn.labels("add").value == 1
        assert hub.listener_fanout.count > 0
        assert hub.listener_dispatch.value > 0
        assert hub.audit_records.total() == len(engine.audit)

    def test_else_outcome_and_error_counted(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        sid = engine.create_session("u")
        assert not engine.check_access(sid, "read", "doc")  # no role
        hub = engine.obs
        hub.metrics.collect()  # firing counts are mirrored from the pool
        assert hub.rule_firings.labels("CA.checkAccess", "else").value == 1
        assert hub.rule_errors.labels(
            "CA.checkAccess", "OperationDenied").value == 1

    def test_timer_callbacks_counted(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        fired = {"n": 0}
        engine.timers.schedule_after(5, lambda: fired.__setitem__(
            "n", fired["n"] + 1))
        engine.advance_time(10)
        assert fired["n"] == 1
        assert engine.obs.timer_callbacks.value == 1
        assert engine.obs.clock_advances.value == 1


class TestProfiler:
    def test_captures_wall_time_and_metric_delta(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        sid = engine.create_session("u")
        engine.add_active_role(sid, "A")
        with Profiler(registry=engine.obs.metrics, label="loop") as prof:
            for _ in range(10):
                engine.check_access(sid, "read", "doc")
        assert prof.elapsed_ns > 0
        delta = prof.delta()
        assert delta["repro_check_access_total{decision=grant}"] == 10
        assert "loop" in prof.report()
        assert "repro_check_access_ns" in prof.report()

    def test_without_registry_is_a_stopwatch(self):
        with Profiler() as prof:
            pass
        assert prof.elapsed_ns >= 0
        assert prof.delta() == {}
        assert "no metric movement" in prof.report()
