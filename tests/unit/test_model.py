"""Unit tests for the RBAC model: ANSI administrative commands and
system functions."""

import pytest

from repro.errors import (
    AdministrationError,
    DuplicateEntityError,
    SsdViolationError,
    UnknownPermissionError,
    UnknownRoleError,
    UnknownSessionError,
    UnknownUserError,
)
from repro.rbac.model import Permission, RBACModel


@pytest.fixture
def model():
    m = RBACModel()
    m.add_user("bob")
    m.add_user("carol")
    for role in ("PM", "PC", "AC", "Clerk"):
        m.add_role(role)
    m.add_inheritance("PM", "PC")
    m.add_inheritance("PC", "Clerk")
    m.add_inheritance("AC", "Clerk")
    m.add_permission("create", "purchase_order")
    m.add_permission("read", "ledger")
    m.grant_permission("PC", "create", "purchase_order")
    m.grant_permission("Clerk", "read", "ledger")
    return m


class TestElementAdministration:
    def test_duplicate_user_rejected(self, model):
        with pytest.raises(DuplicateEntityError):
            model.add_user("bob")

    def test_duplicate_role_rejected(self, model):
        with pytest.raises(DuplicateEntityError):
            model.add_role("PM")

    def test_delete_user_destroys_sessions(self, model):
        model.create_session_record("s1", "bob")
        model.delete_user("bob")
        assert "s1" not in model.sessions
        with pytest.raises(UnknownUserError):
            model.assigned_roles("bob")

    def test_delete_role_cleans_everywhere(self, model):
        model.assign_user("bob", "PC")
        model.create_session_record("s1", "bob")
        model.add_session_role_record("s1", "PC")
        model.create_ssd_set("s", {"PC", "AC"}, 2)
        model.delete_role("PC")
        assert "PC" not in model.roles
        assert model.assigned_roles("bob") == set()
        assert model.session_roles("s1") == set()
        assert "PC" not in model.hierarchy
        # SSD set of size 1 < cardinality 2 was dropped
        assert not list(model.sod.ssd_sets())

    def test_unknown_role_operations(self, model):
        with pytest.raises(UnknownRoleError):
            model.delete_role("ghost")
        with pytest.raises(UnknownRoleError):
            model.assign_user("bob", "ghost")
        with pytest.raises(UnknownUserError):
            model.assign_user("ghost", "PC")


class TestAssignment:
    def test_assign_and_deassign(self, model):
        model.assign_user("bob", "PC")
        assert model.is_assigned("bob", "PC")
        model.deassign_user("bob", "PC")
        assert not model.is_assigned("bob", "PC")

    def test_double_assign_rejected(self, model):
        model.assign_user("bob", "PC")
        with pytest.raises(AdministrationError):
            model.assign_user("bob", "PC")

    def test_deassign_unassigned_rejected(self, model):
        with pytest.raises(AdministrationError):
            model.deassign_user("bob", "PC")

    def test_deassign_deactivates_in_sessions(self, model):
        model.assign_user("bob", "PC")
        model.create_session_record("s1", "bob")
        model.add_session_role_record("s1", "PC")
        model.deassign_user("bob", "PC")
        assert model.session_roles("s1") == set()

    def test_assignment_respects_ssd(self, model):
        model.create_ssd_set("s", {"PC", "AC"}, 2)
        model.assign_user("bob", "PC")
        with pytest.raises(SsdViolationError):
            model.assign_user("bob", "AC")

    def test_ssd_sees_inherited_authorization(self, model):
        """Assigning PM authorizes PC (junior), so AC is then barred —
        enterprise XYZ's 'PM inherits the SSD constraints from PC'."""
        model.create_ssd_set("s", {"PC", "AC"}, 2)
        model.assign_user("bob", "PM")
        with pytest.raises(SsdViolationError):
            model.assign_user("bob", "AC")

    def test_unchecked_assignment_records(self, model):
        model.add_assignment_record("bob", "PC")
        assert model.is_assigned("bob", "PC")
        model.remove_assignment_record("bob", "PC")
        assert not model.is_assigned("bob", "PC")

    def test_ssd_allows_assignment_predicate(self, model):
        model.create_ssd_set("s", {"PC", "AC"}, 2)
        model.assign_user("bob", "PM")
        assert not model.ssd_allows_assignment("bob", "AC")
        assert model.ssd_allows_assignment("carol", "AC")
        assert not model.ssd_allows_assignment("ghost", "AC")


class TestPermissions:
    def test_grant_requires_registered_permission(self, model):
        with pytest.raises(UnknownPermissionError):
            model.grant_permission("PC", "delete", "ledger")

    def test_double_grant_rejected(self, model):
        with pytest.raises(AdministrationError):
            model.grant_permission("PC", "create", "purchase_order")

    def test_revoke(self, model):
        model.revoke_permission("PC", "create", "purchase_order")
        assert Permission("create", "purchase_order") not in \
            model.direct_role_permissions("PC")
        with pytest.raises(AdministrationError):
            model.revoke_permission("PC", "create", "purchase_order")

    def test_role_permissions_include_juniors(self, model):
        perms = model.role_permissions("PM")
        assert Permission("create", "purchase_order") in perms
        assert Permission("read", "ledger") in perms

    def test_direct_permissions_exclude_juniors(self, model):
        assert model.direct_role_permissions("PM") == set()


class TestInheritanceAdministration:
    def test_add_inheritance_rejected_on_ssd_violation(self, model):
        model.create_ssd_set("s", {"PC", "AC"}, 2)
        model.add_role("Super")
        model.assign_user("bob", "Super")
        model.assign_user("carol", "AC")
        model.add_inheritance("Super", "PC")  # fine: bob gets PC only
        model.delete_inheritance("Super", "PC")
        model.assign_user("bob", "AC")
        # now Super >> PC would authorize bob for both PC and AC
        with pytest.raises(SsdViolationError):
            model.add_inheritance("Super", "PC")
        # and the failed edge must have been rolled back
        assert not model.hierarchy.is_senior("Super", "PC")


class TestSessions:
    def test_session_lifecycle(self, model):
        model.create_session_record("s1", "bob")
        assert model.is_session("s1")
        assert model.session_user("s1") == "bob"
        model.delete_session_record("s1")
        assert not model.is_session("s1")

    def test_duplicate_session_rejected(self, model):
        model.create_session_record("s1", "bob")
        with pytest.raises(DuplicateEntityError):
            model.create_session_record("s1", "carol")

    def test_unknown_session_rejected(self, model):
        with pytest.raises(UnknownSessionError):
            model.delete_session_record("ghost")
        with pytest.raises(UnknownSessionError):
            model.session_roles("ghost")

    def test_session_role_records(self, model):
        model.create_session_record("s1", "bob")
        model.add_session_role_record("s1", "PC")
        assert model.session_roles("s1") == {"PC"}
        model.drop_session_role_record("s1", "PC")
        assert model.session_roles("s1") == set()

    def test_owns_session(self, model):
        model.create_session_record("s1", "bob")
        assert model.owns_session("bob", "s1")
        assert not model.owns_session("carol", "s1")
        assert not model.owns_session("bob", "ghost")


class TestCounters:
    def test_active_user_count_distinct_users(self, model):
        model.assign_user("bob", "PC")
        model.assign_user("carol", "PC")
        model.create_session_record("s1", "bob")
        model.create_session_record("s2", "bob")
        model.create_session_record("s3", "carol")
        model.add_session_role_record("s1", "PC")
        model.add_session_role_record("s2", "PC")  # same user twice
        model.add_session_role_record("s3", "PC")
        assert model.active_user_count("PC") == 2

    def test_active_role_count_across_sessions(self, model):
        model.create_session_record("s1", "bob")
        model.create_session_record("s2", "bob")
        model.add_session_role_record("s1", "PC")
        model.add_session_role_record("s2", "Clerk")
        assert model.active_role_count("bob") == 2


class TestEnabling:
    def test_enable_disable_flag(self, model):
        assert model.is_role_enabled("PC")
        model.set_role_enabled("PC", False)
        assert not model.is_role_enabled("PC")

    def test_disable_deactivates_sessions(self, model):
        model.create_session_record("s1", "bob")
        model.add_session_role_record("s1", "PC")
        model.set_role_enabled("PC", False)
        assert model.session_roles("s1") == set()

    def test_stats_shape(self, model):
        stats = model.stats()
        assert stats["users"] == 2
        assert stats["roles"] == 4
        assert stats["hierarchy_edges"] == 3
