"""Properties of the Snoop event algebra on random streams."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import TimerService, VirtualClock
from repro.events import ConsumptionMode, EventDetector

#: a random stream is a list of (event_name, gap_seconds) pairs
streams = st.lists(
    st.tuples(st.sampled_from(["E1", "E2", "E3"]),
              st.floats(min_value=0.0, max_value=10.0)),
    min_size=0, max_size=40,
)


def build(*composites):
    detector = EventDetector(TimerService(VirtualClock()))
    for name in ("E1", "E2", "E3"):
        detector.define_primitive(name)
    hits = {}
    for define in composites:
        name = define(detector)
        hits[name] = []
        detector.subscribe(name, hits[name].append)
    return detector, hits


def play(detector, stream):
    for name, gap in stream:
        detector.advance_time(gap)
        detector.raise_event(name)


class TestSequenceProperties:
    @settings(max_examples=100, deadline=None)
    @given(stream=streams)
    def test_recent_seq_detects_iff_e1_precedes_e2(self, stream):
        detector, hits = build(
            lambda d: d.define_sequence("S", "E1", "E2").name)
        play(detector, stream)
        # reference: in recent mode, S fires on each E2 with at least
        # one prior E1 (the most recent initiator keeps initiating)
        expected = 0
        seen_e1 = False
        for name, _gap in stream:
            if name == "E1":
                seen_e1 = True
            elif name == "E2" and seen_e1:
                expected += 1
        assert len(hits["S"]) == expected

    @settings(max_examples=100, deadline=None)
    @given(stream=streams)
    def test_every_detection_interval_ordered(self, stream):
        detector, hits = build(
            lambda d: d.define_sequence("S", "E1", "E2").name)
        play(detector, stream)
        for occurrence in hits["S"]:
            first, second = occurrence.constituents
            assert first.end < second.start
            assert occurrence.start <= occurrence.end


class TestChronicleConservation:
    @settings(max_examples=100, deadline=None)
    @given(stream=streams)
    def test_chronicle_and_detections_conserve_occurrences(self, stream):
        """In chronicle mode every constituent is used exactly once:
        #detections == min(#E1, #E2)."""
        detector, hits = build(
            lambda d: d.define_and("A", "E1", "E2",
                                   mode="chronicle").name)
        play(detector, stream)
        count_e1 = sum(1 for name, _ in stream if name == "E1")
        count_e2 = sum(1 for name, _ in stream if name == "E2")
        assert len(hits["A"]) == min(count_e1, count_e2)


class TestOrCount:
    @settings(max_examples=100, deadline=None)
    @given(stream=streams)
    def test_or_fires_once_per_constituent(self, stream):
        detector, hits = build(
            lambda d: d.define_or("O", "E1", "E2").name)
        play(detector, stream)
        expected = sum(1 for name, _ in stream if name in ("E1", "E2"))
        assert len(hits["O"]) == expected


class TestAperiodicWindowing:
    @settings(max_examples=100, deadline=None)
    @given(stream=streams)
    def test_aperiodic_counts_middles_inside_windows(self, stream):
        detector, hits = build(
            lambda d: d.define_aperiodic("AP", "E1", "E2", "E3").name)
        play(detector, stream)
        expected = 0
        window_open = False
        for name, _gap in stream:
            if name == "E1":
                window_open = True
            elif name == "E3":
                window_open = False
            elif name == "E2" and window_open:
                expected += 1
        assert len(hits["AP"]) == expected


class TestPlusExactness:
    @settings(max_examples=60, deadline=None)
    @given(gaps=st.lists(st.floats(min_value=0.1, max_value=100.0),
                         min_size=1, max_size=10),
           delta=st.floats(min_value=0.5, max_value=50.0))
    def test_plus_fires_once_per_source_at_exact_offset(self, gaps, delta):
        detector = EventDetector(TimerService(VirtualClock()))
        detector.define_primitive("E1")
        detector.define_plus("P", "E1", delta)
        hits = []
        detector.subscribe("P", hits.append)
        raise_times = []
        for gap in gaps:
            detector.advance_time(gap)
            raise_times.append(detector.clock.now)
            detector.raise_event("E1")
        detector.advance_time(delta + max(gaps) + 1.0)
        assert len(hits) == len(gaps)
        for occurrence, raised_at in zip(hits, sorted(raise_times)):
            assert occurrence.end.seconds == \
                   __import__("pytest").approx(raised_at + delta)


class TestDetectorDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(stream=streams, mode=st.sampled_from(list(ConsumptionMode)))
    def test_replay_is_identical(self, stream, mode):
        def run():
            detector, hits = build(
                lambda d: d.define_and("A", "E1", "E2", mode=mode).name)
            play(detector, stream)
            return [occurrence.describe() for occurrence in hits["A"]]

        assert run() == run()
