"""Property: analysis explanations always agree with the engine.

:func:`repro.analysis.explain_access` / ``explain_activation`` must
predict exactly what the engine decides, in any reachable state —
otherwise the explanation tool would lie to administrators.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ActiveRBACEngine
from repro.analysis import explain_access, explain_activation
from repro.errors import ReproError
from repro.workloads import EnterpriseShape, generate_enterprise


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 1000), walk_seed=st.integers(0, 1000))
def test_explanations_match_engine(shape_seed, walk_seed):
    spec = generate_enterprise(EnterpriseShape(
        roles=12, users=8, ssd_sets=1, dsd_sets=2,
        role_cardinality_fraction=0.4, seed=shape_seed))
    engine = ActiveRBACEngine(spec)
    rng = random.Random(walk_seed)
    users = sorted(spec.users)
    roles = sorted(spec.roles)
    sessions = []

    for step in range(60):
        draw = rng.random()
        if draw < 0.25 or not sessions:
            sid = f"s{step}"
            try:
                engine.create_session(rng.choice(users), session_id=sid)
                sessions.append(sid)
            except ReproError:
                pass
        elif draw < 0.6:
            sid = rng.choice(sessions)
            role = rng.choice(roles)
            predicted = explain_activation(engine, sid, role).allowed
            try:
                engine.add_active_role(sid, role)
                actual = True
            except ReproError:
                actual = False
            assert predicted == actual, (
                f"activation prediction diverged for {role} in {sid}: "
                f"{explain_activation(engine, sid, role).describe()}")
        elif draw < 0.9:
            sid = rng.choice(sessions)
            operation, obj = rng.choice(
                spec.permissions or [("op", "obj")])
            predicted = explain_access(engine, sid, operation,
                                       obj).allowed
            actual = engine.check_access(sid, operation, obj)
            assert predicted == actual, (
                f"access prediction diverged: "
                f"{explain_access(engine, sid, operation, obj).describe()}")
        else:
            sid = rng.choice(sessions)
            role = rng.choice(roles)
            try:
                engine.drop_active_role(sid, role)
            except ReproError:
                pass
