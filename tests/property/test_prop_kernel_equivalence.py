"""Property: the compiled decision plane (PolicyKernel) and the
interpreted OWTE pipeline make identical decisions.

The kernel is an optimization, not a semantics change: for any random
enterprise, any stream of session churn, activations, access checks
*and live policy mutations* (which bump the policy epoch and force
recompiles), an engine answering kernel-first must produce exactly the
outcome trace of an engine with the kernel disabled — including the
denial types, the post-mutation flips, and the state both engines end
in.  A third property pins the equivalence across a WAL crash/recovery
cycle, where the kernel is recompiled eagerly from the replayed state.
"""

from __future__ import annotations

import random
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ActiveRBACEngine
from repro.errors import ReproError
from repro.workloads import EnterpriseShape, generate_enterprise


def outcome_of(callable_):
    try:
        return ("ok", callable_())
    except ReproError as exc:
        return ("err", type(exc).__name__)


def run_stream(engine, spec, seed, length):
    """Deterministic stream mixing authorization checks with policy
    mutations; returns the outcome trace."""
    rng = random.Random(seed)
    users = sorted(spec.users)
    roles = sorted(spec.roles)
    perms = spec.permissions or [("op0", "obj0")]
    sessions: list[str] = []
    trace = []
    for step in range(length):
        draw = rng.random()
        if draw < 0.12 or not sessions:
            user = rng.choice(users)
            sid = f"s{step}"
            trace.append(outcome_of(
                lambda: engine.create_session(user, session_id=sid)))
            if sid in engine.model.sessions:
                sessions.append(sid)
        elif draw < 0.35:
            sid = rng.choice(sessions)
            role = rng.choice(roles)
            trace.append(outcome_of(
                lambda: engine.add_active_role(sid, role)))
        elif draw < 0.70:
            # checks dominate: this is the path the kernel answers
            sid = rng.choice(sessions)
            operation, obj = rng.choice(perms)
            trace.append(("check",
                          engine.check_access(sid, operation, obj)))
        elif draw < 0.80:
            # policy-epoch bump: grant or revoke a permission
            role = rng.choice(roles)
            operation, obj = rng.choice(perms)
            if rng.random() < 0.5:
                trace.append(outcome_of(
                    lambda: engine.grant_permission(role, operation,
                                                    obj)))
            else:
                trace.append(outcome_of(
                    lambda: engine.revoke_permission(role, operation,
                                                     obj)))
        elif draw < 0.88:
            user = rng.choice(users)
            role = rng.choice(roles)
            if rng.random() < 0.5:
                trace.append(outcome_of(
                    lambda: engine.assign_user(user, role)))
            else:
                trace.append(outcome_of(
                    lambda: engine.deassign_user(user, role)))
        elif draw < 0.94:
            # hierarchy edit: recompile with new closure bitsets
            senior = rng.choice(roles)
            junior = rng.choice(roles)
            if rng.random() < 0.5:
                trace.append(outcome_of(
                    lambda: engine.add_inheritance(senior, junior)))
            else:
                trace.append(outcome_of(
                    lambda: engine.delete_inheritance(senior, junior)))
        else:
            role = rng.choice(roles)
            if rng.random() < 0.5:
                trace.append(outcome_of(
                    lambda: engine.disable_role(role)))
            else:
                trace.append(outcome_of(
                    lambda: engine.enable_role(role)))
    return trace


def state_fingerprint(engine):
    return {
        "sessions": {
            sid: (session.user, tuple(sorted(session.active_roles)))
            for sid, session in engine.model.sessions.items()
        },
        "enabled": {
            name: role.enabled
            for name, role in engine.model.roles.items()
        },
        "epoch": engine.policy_epoch,
    }


def check_sweep(engine, spec, seed, count=40):
    """Pure access-check sweep over existing sessions (no mutations)."""
    rng = random.Random(seed)
    sessions = sorted(engine.model.sessions)
    perms = spec.permissions or [("op0", "obj0")]
    if not sessions:
        return []
    return [
        engine.check_access(rng.choice(sessions), *rng.choice(perms))
        for _ in range(count)
    ]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 10_000),
       stream_seed=st.integers(0, 10_000))
def test_kernel_and_interpreted_decide_identically(shape_seed,
                                                   stream_seed):
    spec = generate_enterprise(EnterpriseShape(
        roles=12, users=8, tree_fanout=3, tree_depth=2,
        operations=2, objects=6, grants_per_role=2,
        ssd_sets=1, dsd_sets=1, seed=shape_seed))
    compiled = ActiveRBACEngine(spec)
    interpreted = ActiveRBACEngine(spec)
    compiled.kernel_enabled = True
    interpreted.kernel_enabled = False
    compiled_trace = run_stream(compiled, spec, stream_seed, length=90)
    interpreted_trace = run_stream(interpreted, spec, stream_seed,
                                   length=90)
    assert compiled_trace == interpreted_trace
    assert state_fingerprint(compiled) == state_fingerprint(interpreted)
    # the fast path actually ran (this policy has no dynamic features,
    # so kernel-answered decisions should dominate)
    answered = sum(
        compiled.obs.kernel_decisions.labels(path).value
        for path in ("grant", "deny"))
    assert answered > 0


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream_seed=st.integers(0, 10_000))
def test_kernel_agrees_on_dynamic_features(stream_seed):
    """Context-gated roles and privacy-regulated objects force the
    kernel to fall back — and the fallback must be seamless."""
    from repro.policy import parse_policy
    spec = parse_policy("""
    policy aware {
      role Field; role Desk;
      user u0; user u1;
      assign u0 to Field; assign u1 to Desk;
      permission read on secret; permission read on public;
      grant read on secret to Field;
      grant read on public to Desk;
      context Field requires network == "secure" for access;
      purpose ops; purpose audit under ops;
      object_policy read on secret for ops;
    }
    """)
    compiled = ActiveRBACEngine(spec)
    interpreted = ActiveRBACEngine(spec)
    compiled.kernel_enabled = True
    interpreted.kernel_enabled = False
    rng = random.Random(stream_seed)
    sessions: list[str] = []
    traces = ([], [])
    for step in range(60):
        draw = rng.random()
        if draw < 0.15:
            value = rng.choice(["secure", "insecure"])
            for engine in (compiled, interpreted):
                engine.context.set("network", value)
            continue
        if draw < 0.3 or not sessions:
            user = rng.choice(["u0", "u1"])
            sid = f"s{step}"
            for trace, engine in zip(traces, (compiled, interpreted)):
                trace.append(outcome_of(
                    lambda e=engine: e.create_session(user,
                                                      session_id=sid)))
            sessions.append(sid)
        elif draw < 0.55:
            sid = rng.choice(sessions)
            role = rng.choice(["Field", "Desk"])
            for trace, engine in zip(traces, (compiled, interpreted)):
                trace.append(outcome_of(
                    lambda e=engine: e.add_active_role(sid, role)))
        else:
            sid = rng.choice(sessions)
            obj = rng.choice(["secret", "public"])
            purpose = rng.choice([None, "ops", "audit", "marketing"])
            for trace, engine in zip(traces, (compiled, interpreted)):
                trace.append(("check", engine.check_access(
                    sid, "read", obj, purpose=purpose)))
    assert traces[0] == traces[1]


def explain_sweep(engine, spec, seed, count=40, purposes=(None,)):
    """For random (session, operation, object, purpose) probes assert
    ``engine.explain`` predicts exactly what the live check decides —
    explain first (it must be read-only), live check second."""
    rng = random.Random(seed)
    sessions = sorted(engine.model.sessions) or ["no-such-session"]
    perms = spec.permissions or [("op0", "obj0")]
    for _ in range(count):
        sid = rng.choice(sessions)
        operation, obj = rng.choice(perms)
        purpose = rng.choice(purposes)
        explanation = engine.explain(sid, operation, obj,
                                     purpose=purpose)
        try:
            live = engine.check_access(sid, operation, obj,
                                       purpose=purpose)
        except ReproError:
            live = False
        assert explanation.allowed == live, (
            f"explain said {explanation.allowed} "
            f"({explanation.deny_cause}) but the live check said "
            f"{live} for {sid}/{operation}/{obj}/{purpose}")
        assert (explanation.to_dict()["verdict"]
                == ("grant" if live else "deny"))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 10_000),
       stream_seed=st.integers(0, 10_000),
       kernel_on=st.booleans())
def test_explain_matches_live_verdict(shape_seed, stream_seed,
                                      kernel_on):
    """``engine.explain`` predicts the live verdict on both serving
    paths, across random policies and post-mutation states."""
    spec = generate_enterprise(EnterpriseShape(
        roles=12, users=8, tree_fanout=3, tree_depth=2,
        operations=2, objects=6, grants_per_role=2,
        ssd_sets=1, dsd_sets=1, seed=shape_seed))
    engine = ActiveRBACEngine(spec)
    engine.kernel_enabled = kernel_on
    run_stream(engine, spec, stream_seed, length=90)
    explain_sweep(engine, spec, stream_seed)
    # unknown entities must also agree (deny on both sides)
    explanation = engine.explain("no-such-session", "nope", "nothing")
    assert not explanation.allowed
    assert explanation.deny_cause == "unknown session"


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream_seed=st.integers(0, 10_000))
def test_explain_matches_on_dynamic_features(stream_seed):
    """Context-gated roles and privacy purposes: the explanation must
    track the context registry and purpose tree, not just the grants."""
    from repro.policy import parse_policy
    spec = parse_policy("""
    policy aware {
      role Field; role Desk;
      user u0; user u1;
      assign u0 to Field; assign u1 to Desk;
      permission read on secret; permission read on public;
      grant read on secret to Field;
      grant read on public to Desk;
      context Field requires network == "secure" for access;
      purpose ops; purpose audit under ops;
      object_policy read on secret for ops;
    }
    """)
    engine = ActiveRBACEngine(spec)
    rng = random.Random(stream_seed)
    sessions: list[str] = []
    for step in range(40):
        draw = rng.random()
        if draw < 0.2:
            engine.context.set("network",
                               rng.choice(["secure", "insecure"]))
        elif draw < 0.45 or not sessions:
            sid = f"s{step}"
            outcome_of(lambda: engine.create_session(
                rng.choice(["u0", "u1"]), session_id=sid))
            if sid in engine.model.sessions:
                sessions.append(sid)
        else:
            outcome_of(lambda: engine.add_active_role(
                rng.choice(sessions), rng.choice(["Field", "Desk"])))
    explain_sweep(engine, spec, stream_seed,
                  purposes=(None, "ops", "audit", "marketing"))


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 10_000),
       stream_seed=st.integers(0, 10_000))
def test_explain_matches_after_wal_recovery(shape_seed, stream_seed):
    """A recovered engine's explanations must track its replayed state."""
    from repro import wal as wal_mod

    spec = generate_enterprise(EnterpriseShape(
        roles=8, users=6, tree_fanout=3, tree_depth=2,
        operations=2, objects=4, grants_per_role=2,
        ssd_sets=1, dsd_sets=0, seed=shape_seed))
    with tempfile.TemporaryDirectory() as directory:
        engine = ActiveRBACEngine(spec)
        durability = wal_mod.Durability(engine, directory)
        run_stream(engine, spec, stream_seed, length=50)
        durability.wal.sync()
        recovered, _report = wal_mod.recover(directory)
        explain_sweep(recovered, spec, stream_seed)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 10_000),
       stream_seed=st.integers(0, 10_000))
def test_promote_then_rollback_equals_never_promoted(shape_seed,
                                                     stream_seed):
    """Safe-rollout property: force-promoting a config and rolling it
    back leaves the engine indistinguishable from one that never saw
    the candidate — even when identical concurrent administration
    lands between the promote and the rollback.  The candidate delta
    touches only freshly-named entities, so the concurrent stream
    (which draws from the original spec) can never overlap it."""
    import copy

    from repro.config import ConfigSet, PolicyLifecycle, RolloutBudget

    spec = generate_enterprise(EnterpriseShape(
        roles=10, users=8, tree_fanout=3, tree_depth=2,
        operations=2, objects=5, grants_per_role=2,
        ssd_sets=1, dsd_sets=1, seed=shape_seed))
    subject = ActiveRBACEngine(spec)
    reference = ActiveRBACEngine(spec)
    assert run_stream(subject, spec, stream_seed, length=40) \
        == run_stream(reference, spec, stream_seed, length=40)

    with tempfile.TemporaryDirectory() as state_dir:
        lifecycle = PolicyLifecycle(
            subject, state_dir=state_dir,
            budget=RolloutBudget(min_samples=1, hold_checks=100_000))
        lifecycle.adopt(1)
        candidate = copy.deepcopy(subject.policy)
        candidate.add_role("rollout_probe")
        candidate.grants.append(("rollout_probe",
                                 *candidate.permissions[0]))
        lifecycle.stage(ConfigSet.from_spec(candidate, 2))
        lifecycle.promote(force=True)
        assert "rollout_probe" in subject.model.roles

        # identical concurrent administration on pre-existing entities
        assert run_stream(subject, spec, stream_seed + 1, length=40) \
            == run_stream(reference, spec, stream_seed + 1, length=40)

        lifecycle.rollback("property-probe")

    assert "rollout_probe" not in subject.model.roles
    assert subject.config_version == 1
    assert subject.config_last_rollback["from_version"] == 2
    fp_subject = state_fingerprint(subject)
    fp_reference = state_fingerprint(reference)
    # the subject's epoch moved with each swap; everything else must
    # converge exactly
    fp_subject.pop("epoch")
    fp_reference.pop("epoch")
    assert fp_subject == fp_reference
    assert check_sweep(subject, spec, stream_seed) \
        == check_sweep(reference, spec, stream_seed)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 10_000),
       stream_seed=st.integers(0, 10_000))
def test_equivalence_survives_wal_recovery(shape_seed, stream_seed):
    """Crash + WAL replay, then kernel-first vs interpreted answers on
    the recovered state must agree (recover() recompiles eagerly)."""
    from repro import wal as wal_mod

    spec = generate_enterprise(EnterpriseShape(
        roles=8, users=6, tree_fanout=3, tree_depth=2,
        operations=2, objects=4, grants_per_role=2,
        ssd_sets=1, dsd_sets=0, seed=shape_seed))
    with tempfile.TemporaryDirectory() as directory:
        engine = ActiveRBACEngine(spec)
        durability = wal_mod.Durability(engine, directory)
        run_stream(engine, spec, stream_seed, length=50)
        durability.wal.sync()  # crash here: nothing else gets flushed

        recovered_a, report_a = wal_mod.recover(directory)
        recovered_b, report_b = wal_mod.recover(directory)
        assert report_a["kernel_rebuild_us"] is not None
        assert recovered_a._kernel is not None  # eager recompile
        recovered_a.kernel_enabled = True
        recovered_b.kernel_enabled = False
        assert state_fingerprint(recovered_a) == \
            state_fingerprint(recovered_b)
        sweep_a = check_sweep(recovered_a, spec, stream_seed)
        sweep_b = check_sweep(recovered_b, spec, stream_seed)
        assert sweep_a == sweep_b
