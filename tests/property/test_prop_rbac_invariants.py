"""Properties: RBAC model invariants hold in every reachable state.

* the hierarchy stays a strict partial order (irreflexive, transitive,
  antisymmetric);
* no user's authorized role set ever violates an SSD constraint;
* no session's active role set ever violates a DSD constraint;
* cardinality bounds are never exceeded;
* active roles are always authorized and enabled.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ActiveRBACEngine
from repro.errors import ReproError
from repro.workloads import EnterpriseShape, generate_enterprise


def random_walk(engine, seed, steps=60):
    """Drive the engine through random operations, ignoring denials."""
    rng = random.Random(seed)
    users = sorted(engine.policy.users)
    roles = sorted(engine.policy.roles)
    sessions = []
    for step in range(steps):
        draw = rng.random()
        try:
            if draw < 0.2 or not sessions:
                sid = engine.create_session(rng.choice(users),
                                            session_id=f"s{step}")
                sessions.append(sid)
            elif draw < 0.55:
                engine.add_active_role(rng.choice(sessions),
                                       rng.choice(roles))
            elif draw < 0.65:
                engine.drop_active_role(rng.choice(sessions),
                                        rng.choice(roles))
            elif draw < 0.75:
                engine.assign_user(rng.choice(users), rng.choice(roles))
            elif draw < 0.8:
                engine.deassign_user(rng.choice(users), rng.choice(roles))
            elif draw < 0.9:
                role = rng.choice(roles)
                if rng.random() < 0.5:
                    engine.disable_role(role)
                else:
                    engine.enable_role(role)
            else:
                engine.advance_time(rng.choice([1.0, 300.0]))
        except ReproError:
            pass
    return engine


def check_invariants(engine):
    model = engine.model
    # hierarchy: strict partial order
    for role in model.roles:
        juniors = model.hierarchy.juniors(role)
        assert role not in juniors, "irreflexive"
        for junior in juniors:
            assert role not in model.hierarchy.juniors(junior), \
                "antisymmetric"
            # transitivity is by construction (BFS closure); spot-check
            assert model.hierarchy.juniors(junior) <= juniors

    # SSD over authorized roles
    for user in model.users:
        authorized = model.authorized_roles(user)
        for constraint in model.sod.ssd_sets():
            assert not constraint.violated_by(authorized), (
                f"user {user} violates SSD {constraint.name}")

    # DSD over session active sets
    for sid, session in model.sessions.items():
        for constraint in model.sod.dsd_sets():
            assert not constraint.violated_by(session.active_roles), (
                f"session {sid} violates DSD {constraint.name}")
        # active roles authorized and enabled
        for role in session.active_roles:
            assert model.is_authorized(session.user, role)
            assert model.roles[role].enabled

    # cardinality bounds
    for name, role in model.roles.items():
        if role.max_active_users is not None:
            assert model.active_user_count(name) <= role.max_active_users
    for name, user in model.users.items():
        if user.max_active_roles is not None:
            assert model.active_role_count(name) <= user.max_active_roles


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 10_000), walk_seed=st.integers(0, 10_000))
def test_invariants_after_random_walk(shape_seed, walk_seed):
    spec = generate_enterprise(EnterpriseShape(
        roles=15, users=10, tree_fanout=3, tree_depth=2,
        ssd_sets=2, dsd_sets=2, role_cardinality_fraction=0.4,
        seed=shape_seed))
    engine = ActiveRBACEngine(spec)
    random_walk(engine, walk_seed)
    check_invariants(engine)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(walk_seed=st.integers(0, 10_000))
def test_invariants_with_specialized_cardinality(walk_seed):
    from repro.policy import parse_policy
    spec = parse_policy("""
    policy tight {
      role A max_active_users 1; role B; role C;
      user u0 max_active_roles 1; user u1; user u2;
      assign u0 to A; assign u0 to B;
      assign u1 to A; assign u1 to C;
      assign u2 to B; assign u2 to C;
      dsd x roles B, C;
    }
    """)
    engine = ActiveRBACEngine(spec)
    random_walk(engine, walk_seed, steps=50)
    check_invariants(engine)
