"""Properties of the S-A-O-C scope layer.

Two invariants over random scope trees:

* **explain fidelity** — ``engine.explain(..., scope=S)`` must report
  exactly the verdict the live path returns, for any reachable state
  and any scope (known, unknown, or flat);
* **containment monotonicity** — a grant at scope S makes the kernel
  grant at *every* descendant of S, and **never** at any scope outside
  S's subtree (in particular never at the root: a scoped grant must
  not leak into flat checks).
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ActiveRBACEngine
from repro.errors import ReproError
from repro.rbac.scopes import SCOPE_ROOT
from repro.workloads import EnterpriseShape, generate_enterprise


def random_tree(spec, rng, size):
    """Grow a random scope tree on the spec; returns the scope names."""
    scopes: list[str] = []
    for index in range(size):
        parent = rng.choice(scopes) if scopes and rng.random() < 0.7 \
            else None
        name = f"s{index}" if parent is None else f"{parent}.{index}"
        spec.add_scope(name, parent)
        scopes.append(name)
    return scopes


def subtree(scopes, anchor):
    """Descendants-inclusive by the dotted naming scheme."""
    return {s for s in scopes
            if s == anchor or s.startswith(anchor + ".")}


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 1000), walk_seed=st.integers(0, 1000))
def test_scoped_explain_matches_live_verdict(shape_seed, walk_seed):
    rng = random.Random(walk_seed)
    spec = generate_enterprise(EnterpriseShape(
        roles=10, users=8, ssd_sets=0, dsd_sets=1, seed=shape_seed))
    scopes = random_tree(spec, rng, size=rng.randint(3, 12))
    roles = sorted(spec.roles)
    perms = list(spec.permissions)
    for _ in range(rng.randint(2, 6)):
        operation, obj = rng.choice(perms)
        spec.add_scoped_grant(rng.choice(roles), operation, obj,
                              rng.choice(scopes))
    users = sorted(spec.users)
    bounded = set((u, r) for u, r, _s in spec.scoped_assignments)
    for _ in range(rng.randint(1, 5)):
        user, role = rng.choice(users), rng.choice(roles)
        if (user, role) not in bounded:
            bounded.add((user, role))
            spec.add_scoped_assignment(user, role, rng.choice(scopes))
    engine = ActiveRBACEngine(spec)
    sessions = []
    scope_draws = scopes + [None, SCOPE_ROOT, "no-such-scope"]

    for step in range(50):
        draw = rng.random()
        if draw < 0.2 or not sessions:
            sid = f"s{step}"
            try:
                engine.create_session(rng.choice(users), session_id=sid)
                sessions.append(sid)
            except ReproError:
                pass
        elif draw < 0.5:
            try:
                engine.add_active_role(rng.choice(sessions),
                                       rng.choice(roles))
            except ReproError:
                pass
        else:
            sid = rng.choice(sessions)
            operation, obj = rng.choice(perms)
            scope = rng.choice(scope_draws)
            live = engine.check_access(sid, operation, obj, scope=scope)
            explained = engine.explain(sid, operation, obj, scope=scope)
            assert explained.allowed == live, (
                f"explain diverged at scope {scope!r}:\n"
                f"{explained.describe()}")


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree_seed=st.integers(0, 1000), anchor_seed=st.integers(0, 1000))
def test_ancestor_grant_covers_exactly_the_subtree(tree_seed,
                                                   anchor_seed):
    rng = random.Random(tree_seed)
    spec = generate_enterprise(EnterpriseShape(
        roles=4, users=3, ssd_sets=0, dsd_sets=0,
        grants_per_role=0, seed=tree_seed))
    scopes = random_tree(spec, rng, size=rng.randint(4, 15))
    anchor = random.Random(anchor_seed).choice(scopes)
    operation, obj = spec.permissions[0] if spec.permissions \
        else ("op", "obj")
    spec.add_role("Probe")
    spec.add_user("probe")
    spec.add_scoped_grant("Probe", operation, obj, anchor)
    spec.add_assignment("probe", "Probe")
    engine = ActiveRBACEngine(spec)
    sid = engine.create_session("probe")
    engine.add_active_role(sid, "Probe")

    covered = subtree(scopes, anchor)
    for scope in scopes:
        expected = scope in covered
        assert engine.check_access(sid, operation, obj,
                                   scope=scope) is expected, (
            f"grant at {anchor!r}, check at {scope!r}: "
            f"expected {expected}")
    # never the reverse: the grant below the root must not satisfy the
    # flat (root-scope) check
    assert engine.check_access(sid, operation, obj) is False
    assert engine.check_access(sid, operation, obj,
                               scope=SCOPE_ROOT) is False
