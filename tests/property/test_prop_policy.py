"""Properties of the policy layer: DSL round-trips, validator
consistency with the model, calendar scheduling, regeneration fixpoints.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ActiveRBACEngine, parse_policy
from repro.events.calendar import CalendarExpression
from repro.policy.dsl import render_policy
from repro.policy.validator import validate_policy
from repro.synthesis.regenerate import full_regeneration
from repro.workloads import EnterpriseShape, generate_enterprise

shapes = st.builds(
    EnterpriseShape,
    roles=st.integers(3, 40),
    users=st.integers(1, 30),
    tree_fanout=st.integers(1, 4),
    tree_depth=st.integers(1, 3),
    assignments_per_user=st.integers(1, 3),
    ssd_sets=st.integers(0, 3),
    dsd_sets=st.integers(0, 3),
    role_cardinality_fraction=st.floats(0.0, 1.0),
    seed=st.integers(0, 100_000),
)


class TestGeneratedPolicies:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=shapes)
    def test_generated_enterprises_always_validate(self, shape):
        assert validate_policy(generate_enterprise(shape)) == []

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=shapes)
    def test_dsl_round_trip_on_generated_policies(self, shape):
        spec = generate_enterprise(shape)
        reparsed = parse_policy(render_policy(spec))
        assert reparsed.roles == spec.roles
        assert reparsed.users == spec.users
        assert reparsed.hierarchy == spec.hierarchy
        assert reparsed.ssd == spec.ssd
        assert reparsed.dsd == spec.dsd
        assert reparsed.grants == spec.grants
        assert reparsed.assignments == spec.assignments

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=shapes)
    def test_rule_pool_size_is_deterministic(self, shape):
        spec = generate_enterprise(shape)
        first = ActiveRBACEngine(spec)
        second = ActiveRBACEngine(spec)
        assert {rule.name for rule in first.rules} == \
               {rule.name for rule in second.rules}

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=shapes)
    def test_full_regeneration_is_a_fixpoint(self, shape):
        engine = ActiveRBACEngine(generate_enterprise(shape))
        before = {rule.name for rule in engine.rules}
        full_regeneration(engine)
        assert {rule.name for rule in engine.rules} == before


class TestCalendarProperties:
    @settings(max_examples=100, deadline=None)
    @given(hour=st.one_of(st.none(), st.integers(0, 23)),
           minute=st.one_of(st.none(), st.integers(0, 59)),
           second=st.one_of(st.none(), st.integers(0, 59)),
           start=st.floats(min_value=0, max_value=30 * 86400))
    def test_next_after_returns_matching_future_instant(
            self, hour, minute, second, start):
        expr = CalendarExpression(hour, minute, second, None, None, None)
        instant = expr.next_after(start)
        assert instant is not None
        assert instant > start
        assert expr.matches_seconds(instant)

    @settings(max_examples=50, deadline=None)
    @given(hour=st.integers(0, 23), start=st.floats(0, 10 * 86400))
    def test_no_earlier_match_exists_for_daily_pattern(self, hour, start):
        expr = CalendarExpression(hour, 0, 0, None, None, None)
        instant = expr.next_after(start)
        # the previous daily occurrence is <= start
        previous = instant - 86400
        assert previous <= start

    @settings(max_examples=50, deadline=None)
    @given(text=st.sampled_from([
        "10:00:00/*/*/*", "*:30:00/*/*/*", "00:00:00/01/15/*",
        "23:59:59/*/*/*", "*:*:00/*/*/*",
    ]))
    def test_parse_str_round_trip(self, text):
        expr = CalendarExpression.parse(text)
        assert CalendarExpression.parse(str(expr)) == expr


class TestPeriodicIntervalProperties:
    @settings(max_examples=100, deadline=None)
    @given(start=st.integers(0, 86399), end=st.integers(0, 86399),
           now=st.floats(0, 10 * 86400))
    def test_next_boundary_flips_containment(self, start, end, now):
        from repro.gtrbac.periodic import PeriodicInterval
        interval = PeriodicInterval(float(start), float(end))
        if start == end:
            return  # full-day window: no boundaries
        inside_now = interval.contains(now)
        instant, opens = interval.next_boundary(now)
        assert instant > now
        # immediately after an opening boundary the window contains the
        # instant; after a closing boundary it does not
        assert interval.contains(instant) == opens
        # and containment is constant between now and the boundary
        midpoint = (now + instant) / 2
        if now < midpoint < instant:  # guard float-degenerate midpoints
            assert interval.contains(midpoint) == inside_now


class TestVerifierOnGeneratedPolicies:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(shape=shapes)
    def test_generated_pools_always_verify_clean(self, shape):
        from repro.synthesis.verify import errors_only, verify_rule_pool
        engine = ActiveRBACEngine(generate_enterprise(shape))
        assert errors_only(verify_rule_pool(engine)) == []


class TestWeeklyIntervalProperties:
    @settings(max_examples=100, deadline=None)
    @given(start=st.integers(0, 86399), end=st.integers(0, 86399),
           days=st.frozensets(st.integers(0, 6), min_size=1, max_size=7),
           now=st.floats(0, 20 * 86400))
    def test_weekly_boundary_flips_containment(self, start, end, days,
                                               now):
        from repro.gtrbac.periodic import PeriodicInterval
        interval = PeriodicInterval(float(start), float(end), days=days)
        inside_now = interval.contains(now)
        instant, opens = interval.next_boundary(now)
        if instant == float("inf"):
            return
        assert instant > now
        epsilon = 1e-6
        assert interval.contains(instant + epsilon) == opens or \
            interval.contains(instant) == opens
        midpoint = (now + instant) / 2
        if now < midpoint < instant:  # guard float-degenerate midpoints
            assert interval.contains(midpoint) == inside_now

    @settings(max_examples=100, deadline=None)
    @given(days=st.frozensets(st.integers(0, 6), min_size=1, max_size=7),
           now=st.floats(0, 20 * 86400))
    def test_containment_respects_day_set(self, days, now):
        from repro.gtrbac.periodic import PeriodicInterval, weekday_of
        interval = PeriodicInterval(9 * 3600.0, 17 * 3600.0, days=days)
        if interval.contains(now):
            assert weekday_of(now) in days
