"""Property: InitiatorBuffer matches an executable reference model.

The buffer implements five retention/consumption policies; this test
re-implements each policy as the most naive possible list program and
checks both agree on random add/match interleavings.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import Timestamp
from repro.events.consumption import ConsumptionMode, InitiatorBuffer
from repro.events.occurrence import Occurrence


def occ(index: int) -> Occurrence:
    return Occurrence(f"e{index}", Timestamp(float(index), index),
                      Timestamp(float(index), index))


class ReferenceBuffer:
    """Deliberately naive re-statement of the documented semantics."""

    def __init__(self, mode: ConsumptionMode) -> None:
        self.mode = mode
        self.items: list[Occurrence] = []

    def add(self, item: Occurrence) -> None:
        if self.mode is ConsumptionMode.RECENT:
            self.items = [item]
        else:
            self.items = self.items + [item]

    def take(self, eligible) -> list[list[Occurrence]]:
        candidates = [i for i in self.items if eligible(i)]
        if not candidates:
            return []
        if self.mode is ConsumptionMode.RECENT:
            return [[candidates[-1]]]
        if self.mode is ConsumptionMode.CHRONICLE:
            chosen = candidates[0]
            self.items = [i for i in self.items if i is not chosen]
            return [[chosen]]
        if self.mode is ConsumptionMode.CONTINUOUS:
            self.items = [i for i in self.items if i not in candidates]
            return [[c] for c in candidates]
        if self.mode is ConsumptionMode.CUMULATIVE:
            self.items = [i for i in self.items if i not in candidates]
            return [candidates]
        return [[c] for c in candidates]  # UNRESTRICTED


#: an operation is ("add",) or ("take", parity_filter)
operations = st.lists(
    st.one_of(
        st.just(("add",)),
        st.tuples(st.just("take"), st.sampled_from([0, 1, 2])),
    ),
    max_size=30,
)


@settings(max_examples=150, deadline=None)
@given(ops=operations, mode=st.sampled_from(list(ConsumptionMode)))
def test_buffer_matches_reference(ops, mode):
    buffer = InitiatorBuffer(mode)
    reference = ReferenceBuffer(mode)
    counter = 0
    for op in ops:
        if op[0] == "add":
            item = occ(counter)
            counter += 1
            buffer.add(item)
            reference.add(item)
        else:
            modulus = op[1]
            if modulus == 0:
                def eligible(item):
                    return True
            else:
                def eligible(item, m=modulus):
                    return int(item.start.seconds) % (m + 1) == 0
            assert buffer.take_matches(eligible) == reference.take(eligible)
    assert buffer.peek_all() == reference.items
