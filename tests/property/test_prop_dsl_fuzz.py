"""Property: the DSL front-end is total — any input either parses or
raises :class:`~repro.errors.PolicySyntaxError`, never anything else.

Administrators feed this parser by hand; a stray ValueError or
IndexError on malformed input would be a bug.  We fuzz by mutating a
valid policy (deleting spans, duplicating spans, swapping characters)
and by feeding arbitrary printable garbage.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolicySyntaxError
from repro.policy.dsl import parse_policy

SEED_POLICY = """
policy full {
  limited_hierarchy;
  role A max_active_users 3; role B; role C;
  user u max_active_roles 2;
  hierarchy A > B;
  ssd s roles B, C cardinality 2;
  dsd d roles A, C;
  permission read on obj1;
  grant read on obj1 to A;
  assign u to A;
  prerequisite C requires B;
  require C when enabling A;
  transaction B during A;
  duration A 100 for u;
  enable B daily 08:00 to 16:00;
  disabling_sod cov roles A, C daily 10:00 to 17:00;
  context A requires network == "secure" for access;
  purpose p1; purpose p2 under p1;
  object_policy read on obj1 for p2 obliges notify;
  threshold t event activationDenied group_by role count 3 window 30;
}
"""


def parse_is_total(text: str) -> None:
    try:
        parse_policy(text)
    except PolicySyntaxError:
        pass  # the only acceptable failure mode


class TestMutationFuzz:
    @settings(max_examples=200, deadline=None)
    @given(start=st.integers(0, len(SEED_POLICY) - 1),
           length=st.integers(1, 40))
    def test_deleting_a_span_never_crashes(self, start, length):
        mutated = SEED_POLICY[:start] + SEED_POLICY[start + length:]
        parse_is_total(mutated)

    @settings(max_examples=200, deadline=None)
    @given(start=st.integers(0, len(SEED_POLICY) - 1),
           length=st.integers(1, 30),
           target=st.integers(0, len(SEED_POLICY) - 1))
    def test_duplicating_a_span_never_crashes(self, start, length,
                                              target):
        span = SEED_POLICY[start:start + length]
        mutated = SEED_POLICY[:target] + span + SEED_POLICY[target:]
        parse_is_total(mutated)

    @settings(max_examples=200, deadline=None)
    @given(position=st.integers(0, len(SEED_POLICY) - 1),
           replacement=st.characters(
               min_codepoint=32, max_codepoint=126))
    def test_flipping_a_character_never_crashes(self, position,
                                                replacement):
        mutated = (SEED_POLICY[:position] + replacement
                   + SEED_POLICY[position + 1:])
        parse_is_total(mutated)


class TestGarbageFuzz:
    @settings(max_examples=200, deadline=None)
    @given(text=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=200))
    def test_arbitrary_printable_garbage(self, text):
        parse_is_total(text)

    @settings(max_examples=100, deadline=None)
    @given(text=st.text(max_size=100))
    def test_arbitrary_unicode_garbage(self, text):
        parse_is_total(text)


class TestBadDescriptorValues:
    """Constructor validation surfaces as located syntax errors."""

    def test_zero_duration(self):
        with pytest_raises_syntax("duration must be positive"):
            parse_policy("policy p { role A; duration A 0; }")

    def test_single_role_disabling_sod(self):
        with pytest_raises_syntax("needs >= 2 roles"):
            parse_policy(
                "policy p { role A; disabling_sod d roles A "
                "daily 08:00 to 16:00; }")

    def test_bad_time_of_day(self):
        with pytest_raises_syntax("out of range"):
            parse_policy(
                "policy p { role A; enable A daily 25:00 to 26:00; }")

    def test_zero_threshold(self):
        with pytest_raises_syntax("threshold must be >= 1"):
            parse_policy(
                "policy p { threshold t count 0 window 10; }")


import contextlib  # noqa: E402

import pytest  # noqa: E402


@contextlib.contextmanager
def pytest_raises_syntax(fragment: str):
    with pytest.raises(PolicySyntaxError) as excinfo:
        yield
    assert fragment in str(excinfo.value)
