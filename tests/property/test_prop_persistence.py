"""Property: snapshot/restore is behaviour-preserving.

Run a random walk on an engine, snapshot it, restore, then run the
*same* continuation stream on both the original and the restored engine
— every outcome and the final states must match.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ActiveRBACEngine
from repro.errors import ReproError
from repro.persistence import loads, dumps
from repro.workloads import EnterpriseShape, generate_enterprise


def walk(engine, seed, steps, session_prefix=""):
    """Deterministic operation stream; returns the outcome trace."""
    rng = random.Random(seed)
    users = sorted(engine.policy.users)
    roles = sorted(engine.policy.roles)
    trace = []
    sessions = sorted(engine.model.sessions)
    for step in range(steps):
        draw = rng.random()
        try:
            if draw < 0.2 or not sessions:
                sid = f"{session_prefix}s{step}"
                engine.create_session(rng.choice(users), session_id=sid)
                sessions.append(sid)
                trace.append(("session", sid))
            elif draw < 0.5:
                sid, role = rng.choice(sessions), rng.choice(roles)
                engine.add_active_role(sid, role)
                trace.append(("activate", sid, role))
            elif draw < 0.6:
                sid, role = rng.choice(sessions), rng.choice(roles)
                engine.drop_active_role(sid, role)
                trace.append(("drop", sid, role))
            elif draw < 0.9:
                sid = rng.choice(sessions)
                operation, obj = rng.choice(
                    engine.policy.permissions or [("op", "obj")])
                trace.append(("check", sid,
                              engine.check_access(sid, operation, obj)))
            else:
                engine.advance_time(rng.choice([1.0, 120.0, 3600.0]))
                trace.append(("tick",))
        except ReproError as exc:
            trace.append(("err", type(exc).__name__))
    return trace


def fingerprint(engine):
    return (
        {sid: (s.user, tuple(sorted(s.active_roles)))
         for sid, s in engine.model.sessions.items()},
        {name: role.enabled for name, role in engine.model.roles.items()},
        engine.clock.now,
    )


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 1000),
       walk_seed=st.integers(0, 1000),
       continuation_seed=st.integers(0, 1000))
def test_restore_preserves_future_behaviour(shape_seed, walk_seed,
                                            continuation_seed):
    spec = generate_enterprise(EnterpriseShape(
        roles=10, users=6, seed=shape_seed))
    # give the policy some temporal structure so timers matter
    from repro.gtrbac.constraints import DurationConstraint
    spec.durations.append(
        DurationConstraint(sorted(spec.roles)[0], 1800.0))

    original = ActiveRBACEngine(spec)
    walk(original, walk_seed, steps=40)

    revived = loads(dumps(original))
    assert fingerprint(revived) == fingerprint(original)

    original_trace = walk(original, continuation_seed, steps=40,
                          session_prefix="c")
    revived_trace = walk(revived, continuation_seed, steps=40,
                         session_prefix="c")
    assert original_trace == revived_trace
    assert fingerprint(revived) == fingerprint(original)


def check_matrix(engine):
    """check_access answers over every session x permission — the B3
    kernel shape; typed denials are part of the answer."""
    matrix = {}
    for sid in sorted(engine.model.sessions):
        for operation, obj in engine.policy.permissions:
            try:
                matrix[(sid, operation, obj)] = engine.check_access(
                    sid, operation, obj)
            except ReproError as exc:
                matrix[(sid, operation, obj)] = type(exc).__name__
    return matrix


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 1000), walk_seed=st.integers(0, 1000))
def test_restore_preserves_check_access_answers(shape_seed, walk_seed):
    """Property: restore(snapshot(e)) answers the B3 check-access
    workload identically to the engine it was taken from, for every
    (session, permission) pair — including the denials."""
    spec = generate_enterprise(EnterpriseShape(
        roles=12, users=8, tree_depth=2, tree_fanout=2, seed=shape_seed))
    original = ActiveRBACEngine(spec)
    walk(original, walk_seed, steps=50)

    revived = loads(dumps(original))
    assert check_matrix(revived) == check_matrix(original)
    # answering the matrix is read-only: both engines stayed equal
    assert fingerprint(revived) == fingerprint(original)
