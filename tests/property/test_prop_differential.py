"""Property: the active (OWTE-rule) engine and the direct baseline make
identical decisions on random operation streams.

This is the reproduction's central correctness claim: the paper changes
the enforcement *mechanism*, not the policy semantics.  We generate a
random enterprise, run the same random stream of operations (session
churn, activations/deactivations, access checks, role disable/enable,
time advancement) against both engines, and assert that every operation
has the same outcome (success, or the same denial type) and that both
engines end in the same state.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ActiveRBACEngine, DirectRBACEngine
from repro.errors import ReproError
from repro.workloads import EnterpriseShape, generate_enterprise


def outcome_of(callable_):
    """Run an operation; normalize to ('ok', value) or the error type."""
    try:
        return ("ok", callable_())
    except ReproError as exc:
        return ("err", type(exc).__name__)


def run_stream(engine, spec, seed, length):
    """Deterministic operation stream; returns the outcome trace."""
    rng = random.Random(seed)
    users = sorted(spec.users)
    roles = sorted(spec.roles)
    perms = spec.permissions or [("op0", "obj0")]
    sessions: list[str] = []
    trace = []
    for step in range(length):
        draw = rng.random()
        if draw < 0.15 or not sessions:
            user = rng.choice(users)
            sid = f"s{step}"
            trace.append(outcome_of(
                lambda: engine.create_session(user, session_id=sid)))
            if sid in engine.model.sessions:
                sessions.append(sid)
        elif draw < 0.45:
            sid = rng.choice(sessions)
            role = rng.choice(roles)
            trace.append(outcome_of(
                lambda: engine.add_active_role(sid, role)))
        elif draw < 0.55:
            sid = rng.choice(sessions)
            role = rng.choice(roles)
            trace.append(outcome_of(
                lambda: engine.drop_active_role(sid, role)))
        elif draw < 0.78:
            sid = rng.choice(sessions)
            operation, obj = rng.choice(perms)
            trace.append(("check",
                          engine.check_access(sid, operation, obj)))
        elif draw < 0.85:
            user = rng.choice(users)
            role = rng.choice(roles)
            if rng.random() < 0.5:
                trace.append(outcome_of(
                    lambda: engine.assign_user(user, role)))
            else:
                trace.append(outcome_of(
                    lambda: engine.deassign_user(user, role)))
        elif draw < 0.92:
            role = rng.choice(roles)
            if rng.random() < 0.5:
                trace.append(outcome_of(
                    lambda: engine.disable_role(role)))
            else:
                trace.append(outcome_of(
                    lambda: engine.enable_role(role)))
        else:
            engine.advance_time(rng.choice([1.0, 60.0, 3600.0]))
            trace.append(("tick", None))
    return trace


def state_fingerprint(engine):
    return {
        "sessions": {
            sid: (session.user, tuple(sorted(session.active_roles)))
            for sid, session in engine.model.sessions.items()
        },
        "enabled": {
            name: role.enabled
            for name, role in engine.model.roles.items()
        },
    }


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(shape_seed=st.integers(0, 10_000),
       stream_seed=st.integers(0, 10_000))
def test_engines_decide_identically(shape_seed, stream_seed):
    spec = generate_enterprise(EnterpriseShape(
        roles=12, users=8, tree_fanout=3, tree_depth=2,
        operations=2, objects=6, grants_per_role=2,
        ssd_sets=1, dsd_sets=1, role_cardinality_fraction=0.3,
        seed=shape_seed))
    active = ActiveRBACEngine(spec)
    direct = DirectRBACEngine(spec)
    active_trace = run_stream(active, spec, stream_seed, length=80)
    direct_trace = run_stream(direct, spec, stream_seed, length=80)
    assert active_trace == direct_trace
    assert state_fingerprint(active) == state_fingerprint(direct)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream_seed=st.integers(0, 10_000))
def test_engines_agree_with_temporal_constraints(stream_seed):
    """Streams over a policy with durations, windows and CFD: the
    temporal machinery (timers vs PLUS events) must stay in lockstep."""
    from repro.policy import parse_policy
    spec = parse_policy("""
    policy temporal {
      role Anchor; role Dep; role Timed; role Windowed; role Plain;
      user u0; user u1; user u2;
      assign u0 to Anchor; assign u0 to Timed;
      assign u1 to Dep; assign u1 to Windowed;
      assign u2 to Plain; assign u2 to Timed;
      permission read on doc;
      grant read on doc to Plain;
      grant read on doc to Timed;
      transaction Dep during Anchor;
      duration Timed 1800;
      enable Windowed daily 06:00 to 18:00;
    }
    """)
    active = ActiveRBACEngine(spec)
    direct = DirectRBACEngine(spec)
    active_trace = run_stream(active, spec, stream_seed, length=60)
    direct_trace = run_stream(direct, spec, stream_seed, length=60)
    assert active_trace == direct_trace
    assert state_fingerprint(active) == state_fingerprint(direct)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream_seed=st.integers(0, 10_000))
def test_engines_agree_with_context_and_privacy(stream_seed):
    """Context flips and purpose-bound checks: both engines must flip
    decisions at exactly the same points."""
    from repro.policy import parse_policy
    spec = parse_policy("""
    policy aware {
      role Field; role Desk;
      user u0; user u1;
      assign u0 to Field; assign u1 to Desk;
      permission read on secret; permission read on public;
      grant read on secret to Field;
      grant read on public to Desk;
      context Field requires location == "hq";
      context Field requires network == "secure" for access;
      purpose ops; purpose audit under ops;
      object_policy read on secret for ops;
    }
    """)
    active = ActiveRBACEngine(spec)
    direct = DirectRBACEngine(spec)
    rng = random.Random(stream_seed)
    sessions: list[str] = []
    traces = ([], [])
    for step in range(60):
        draw = rng.random()
        if draw < 0.15:
            value = rng.choice(["hq", "field", "secure", "insecure"])
            variable = ("location" if value in ("hq", "field")
                        else "network")
            for engine in (active, direct):
                engine.context.set(variable, value)
            continue
        if draw < 0.3 or not sessions:
            user = rng.choice(["u0", "u1"])
            sid = f"s{step}"
            for trace, engine in zip(traces, (active, direct)):
                trace.append(outcome_of(
                    lambda e=engine: e.create_session(user,
                                                      session_id=sid)))
            sessions.append(sid)
        elif draw < 0.6:
            sid = rng.choice(sessions)
            role = rng.choice(["Field", "Desk"])
            for trace, engine in zip(traces, (active, direct)):
                trace.append(outcome_of(
                    lambda e=engine: e.add_active_role(sid, role)))
        else:
            sid = rng.choice(sessions)
            obj = rng.choice(["secret", "public"])
            purpose = rng.choice([None, "ops", "audit", "marketing"])
            for trace, engine in zip(traces, (active, direct)):
                trace.append(("check", engine.check_access(
                    sid, "read", obj, purpose=purpose)))
    assert traces[0] == traces[1]
    assert state_fingerprint(active) == state_fingerprint(direct)
