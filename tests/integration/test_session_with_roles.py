"""Integration: ANSI CreateSession with an initial active role set."""

import pytest

from repro import ActiveRBACEngine, DirectRBACEngine, parse_policy
from repro.errors import ActivationDenied, DsdViolationError

POLICY = """
policy sessions {
  role A; role B; role X;
  user bob;
  assign bob to A; assign bob to B; assign bob to X;
  dsd pair roles A, B;
}
"""


@pytest.fixture(params=["active", "direct"])
def engine(request):
    spec = parse_policy(POLICY)
    if request.param == "active":
        return ActiveRBACEngine.from_policy(spec)
    return DirectRBACEngine(spec)


class TestCreateSessionWithRoles:
    def test_initial_role_set_activated(self, engine):
        sid = engine.create_session("bob", roles=("A", "X"))
        assert engine.model.session_roles(sid) == {"A", "X"}

    def test_all_or_nothing_on_dsd_violation(self, engine):
        with pytest.raises(DsdViolationError):
            engine.create_session("bob", session_id="atomic",
                                  roles=("A", "B"))
        assert "atomic" not in engine.model.sessions

    def test_all_or_nothing_on_unassigned_role(self, engine):
        engine.add_role("Foreign")
        with pytest.raises(ActivationDenied):
            engine.create_session("bob", session_id="atomic",
                                  roles=("A", "Foreign"))
        assert "atomic" not in engine.model.sessions

    def test_empty_role_set_is_the_default(self, engine):
        sid = engine.create_session("bob")
        assert engine.model.session_roles(sid) == set()

    def test_engines_agree(self):
        spec = parse_policy(POLICY)
        active = ActiveRBACEngine.from_policy(spec)
        direct = DirectRBACEngine(spec)
        for roles in (("A",), ("A", "B"), ("A", "X"), ("B", "X")):
            outcomes = []
            for engine in (active, direct):
                try:
                    sid = engine.create_session(
                        "bob", session_id="probe", roles=roles)
                    outcomes.append(
                        ("ok", frozenset(engine.model.session_roles(sid))))
                    engine.delete_session(sid)
                except Exception as exc:  # noqa: BLE001 - comparison
                    outcomes.append(("err", type(exc).__name__))
            assert outcomes[0] == outcomes[1], roles
