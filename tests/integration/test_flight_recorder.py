"""Integration: the flight recorder's auto-dump triggers end to end.

The recorder is forensic infrastructure — it only earns its keep if
the ring actually reaches disk when something goes wrong.  This suite
drives the three degradation events through the real engine paths:

* a fault-injected quarantine trip must dump the ring (the run-up of
  decisions and the faulting firings) and audit the dump path;
* an active-security lockout must do the same;
* WAL crash recovery must dump the pre-recovery ring into the
  durability directory and report the path.

The CI chaos job runs this module under several ``CHAOS_SEED`` values;
locally it defaults to seed 0.
"""

import json
import os

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro import wal as wal_mod
from repro.testing.faults import FaultInjector

SEED = int(os.environ.get("CHAOS_SEED", "0"))

POLICY = """
policy flightchaos {
  role Analyst; role Auditor;
  user ana; user abe;
  assign ana to Analyst; assign abe to Auditor;
  permission read on ledger; permission write on ledger;
  grant read on ledger to Analyst;
  grant write on ledger to Auditor;
}
"""


@pytest.fixture
def engine(tmp_path):
    engine = ActiveRBACEngine(parse_policy(POLICY))
    engine.flight.dump_dir = str(tmp_path / "flightrec")
    return engine


def dumps_in(engine):
    directory = engine.flight.dump_dir
    if not os.path.isdir(directory):
        return []
    return sorted(os.path.join(directory, name)
                  for name in os.listdir(directory)
                  if name.startswith("flightrec-"))


class TestQuarantineDump:
    def test_fault_driven_quarantine_dumps_the_runup(self, engine):
        """Trip quarantine with a seeded fault schedule: the dump must
        exist, name the rule in its cause, and preserve the faulting
        firings plus the decisions that led up to them."""
        threshold = engine.rules.failure_policy.quarantine_threshold
        chaos = FaultInjector(seed=SEED, clock=engine.clock)
        victim = engine.rules.rules_for_event("checkAccess")[0]
        point = chaos.instrument_rule(victim, clause="then")
        chaos.arm(point, error=ZeroDivisionError)  # every call faults
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        try:
            for _ in range(threshold):
                assert engine.check_access(sid, "read", "ledger") is False
            assert engine.rules.get(victim.name).quarantined
        finally:
            chaos.restore()

        [dump] = dumps_in(engine)
        payload = json.loads(open(dump).read())
        assert payload["cause"] == f"rule.quarantine.{victim.name}"
        kinds = {record["kind"] for record in payload["records"]}
        assert "firing" in kinds  # the faulting firings made the ring
        # containment surfaces the injected fault as its typed wrapper
        errors = [record for record in payload["records"]
                  if record["kind"] == "firing" and record["error"]]
        assert errors and errors[0]["error"] == "RuleExecutionError"
        # the dump is audited with its path, so operators can find it
        audited = engine.audit.by_kind("flightrec.dump")
        assert audited and audited[-1].detail["path"] == dump
        assert audited[-1].detail["cause"] \
            == f"rule.quarantine.{victim.name}"
        assert engine.health()["flightrec_dumps"] == 1

    def test_lockout_dumps_the_runup(self, engine):
        sid = engine.create_session("abe")
        engine.add_active_role(sid, "Auditor")
        engine.check_access(sid, "write", "ledger")
        engine.lock_user("abe")
        [dump] = dumps_in(engine)
        payload = json.loads(open(dump).read())
        assert payload["cause"] == "security.lockout.abe"
        decisions = [record for record in payload["records"]
                     if record["kind"] == "decision"]
        assert any(record["user"] == "abe" for record in decisions)


class TestRecoveryDump:
    def test_wal_recovery_dumps_into_the_durability_dir(self, tmp_path):
        directory = str(tmp_path / "state")
        engine = ActiveRBACEngine(parse_policy(POLICY))
        durability = wal_mod.Durability(engine, directory)
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        engine.check_access(sid, "read", "ledger")
        durability.wal.sync()  # crash here

        recovered, report = wal_mod.recover(directory)
        path = report["flightrec"]
        assert path is not None and os.path.dirname(path) == directory
        payload = json.loads(open(path).read())
        assert payload["cause"] == "wal.recover"
        # replay folds WAL records through the commit functions (no
        # rule firings), so the ring is empty on a fresh recovery — the
        # dump still pins the post-replay health snapshot
        assert payload["records"] == []
        assert payload["context"]["health"]["status"] in ("ok",
                                                          "degraded")
        # a second recovery builds a fresh engine (fresh recorder), so
        # it re-dumps under its own counter — still a valid JSON record
        _again, report_again = wal_mod.recover(directory)
        assert report_again["flightrec"] is not None
        assert json.loads(open(report_again["flightrec"]).read())[
            "cause"] == "wal.recover"

    def test_recovery_dump_does_not_confuse_a_second_recovery(
            self, tmp_path):
        """The dump lands in the durability directory; recovery must
        still find its snapshot/WAL on the next pass (no directory-
        scan confusion from the extra JSON files)."""
        directory = str(tmp_path / "state")
        engine = ActiveRBACEngine(parse_policy(POLICY))
        durability = wal_mod.Durability(engine, directory)
        engine.create_session("ana")
        durability.wal.sync()
        _first, report_first = wal_mod.recover(directory)
        _second, report_second = wal_mod.recover(directory)
        assert report_second["replayed"] == report_first["replayed"]
