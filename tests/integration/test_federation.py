"""Integration: distributed access control across domains (paper §7
future work)."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.errors import (
    ActivationDenied,
    AdministrationError,
    UnknownRoleError,
)
from repro.federation import Federation, RoleMapping, guest_principal

HQ = """
policy hq {
  role Engineer; role Lead;
  hierarchy Lead > Engineer;
  user wei; user ana;
  assign wei to Lead;
  assign ana to Engineer;
}
"""

LAB = """
policy lab {
  role Visitor; role Operator max_active_users 1;
  permission run on reactor;
  permission read on logs;
  grant run on reactor to Operator;
  grant read on logs to Visitor;
}
"""


@pytest.fixture
def federation():
    fed = Federation()
    fed.add_domain("hq", ActiveRBACEngine.from_policy(parse_policy(HQ)))
    fed.add_domain("lab", ActiveRBACEngine.from_policy(parse_policy(LAB)))
    fed.add_mapping(RoleMapping("hq", "Engineer", "lab", "Visitor"))
    fed.add_mapping(RoleMapping("hq", "Lead", "lab", "Operator"))
    return fed


class TestSetup:
    def test_duplicate_domain_rejected(self, federation):
        with pytest.raises(AdministrationError):
            federation.add_domain("hq", ActiveRBACEngine())

    def test_unknown_domain_rejected(self, federation):
        with pytest.raises(AdministrationError):
            federation.domain("mars")

    def test_mapping_requires_existing_roles(self, federation):
        with pytest.raises(UnknownRoleError):
            federation.add_mapping(
                RoleMapping("hq", "Ghost", "lab", "Visitor"))

    def test_mapping_must_cross_domains(self):
        with pytest.raises(ValueError):
            RoleMapping("hq", "A", "hq", "B")


class TestEntitlements:
    def test_hierarchy_feeds_entitlements(self, federation):
        # wei is Lead, hence authorized for Engineer too -> both maps
        assert federation.entitled_host_roles("hq", "wei", "lab") == \
            {"Visitor", "Operator"}
        assert federation.entitled_host_roles("hq", "ana", "lab") == \
            {"Visitor"}

    def test_unknown_user_has_none(self, federation):
        assert federation.entitled_host_roles("hq", "ghost", "lab") == set()


class TestVisits:
    def test_guest_session_with_mapped_role(self, federation):
        sid = federation.visit("hq", "ana", "lab", roles=("Visitor",))
        lab = federation.domain("lab")
        principal = guest_principal("ana", "hq")
        assert lab.model.session_user(sid) == principal
        assert lab.check_access(sid, "read", "logs")
        assert not lab.check_access(sid, "run", "reactor")

    def test_unentitled_visit_rejected(self, federation):
        hq = federation.domain("hq")
        hq.add_user("mallory")
        with pytest.raises(AdministrationError):
            federation.visit("hq", "mallory", "lab")

    def test_guest_cannot_activate_unmapped_role(self, federation):
        sid = federation.visit("hq", "ana", "lab")
        lab = federation.domain("lab")
        with pytest.raises(ActivationDenied):
            lab.add_active_role(sid, "Operator")

    def test_host_constraints_apply_to_guests(self, federation):
        """Operator has max_active_users 1: a local taking the slot
        blocks the visiting Lead (host-side cardinality rules apply)."""
        lab = federation.domain("lab")
        lab.add_user("local")
        lab.assign_user("local", "Operator")
        local_sid = lab.create_session("local")
        lab.add_active_role(local_sid, "Operator")
        from repro.errors import CardinalityExceeded
        with pytest.raises(CardinalityExceeded):
            federation.visit("hq", "wei", "lab", roles=("Operator",))

    def test_repeat_visits_reuse_principal(self, federation):
        first = federation.visit("hq", "ana", "lab")
        second = federation.visit("hq", "ana", "lab")
        assert first != second
        lab = federation.domain("lab")
        principal = guest_principal("ana", "hq")
        assert len(lab.model.user_sessions(principal)) == 2


class TestRevocation:
    def test_home_deassignment_revokes_guest_access_eagerly(
            self, federation):
        sid = federation.visit("hq", "ana", "lab", roles=("Visitor",))
        lab = federation.domain("lab")
        federation.domain("hq").deassign_user("ana", "Engineer")
        principal = guest_principal("ana", "hq")
        assert lab.model.assigned_roles(principal) == set()
        assert "Visitor" not in lab.model.session_roles(sid)
        assert not lab.check_access(sid, "read", "logs")

    def test_demotion_keeps_surviving_entitlements(self, federation):
        sid = federation.visit("hq", "wei", "lab",
                               roles=("Operator", "Visitor"))
        hq = federation.domain("hq")
        hq.assign_user("wei", "Engineer")   # keep Engineer directly
        hq.deassign_user("wei", "Lead")     # demote
        lab = federation.domain("lab")
        principal = guest_principal("wei", "hq")
        assert lab.model.assigned_roles(principal) == {"Visitor"}
        assert "Operator" not in lab.model.session_roles(sid)
        assert "Visitor" in lab.model.session_roles(sid)

    def test_revalidate_guests_sweeps_stale_assignments(self, federation):
        federation.visit("hq", "ana", "lab")
        hq = federation.domain("hq")
        # bypass the eager hook by editing the model directly (e.g. a
        # restore from an older snapshot)
        hq.model.remove_assignment_record("ana", "Engineer")
        removed = federation.revalidate_guests()
        assert removed == 1
        lab = federation.domain("lab")
        assert lab.model.assigned_roles(
            guest_principal("ana", "hq")) == set()

    def test_describe_reports_guests(self, federation):
        federation.visit("hq", "ana", "lab")
        text = federation.describe()
        assert "2 domain(s)" in text
        assert "(1 guests)" in text
        assert "hq:Engineer -> lab:Visitor" in text


class TestLookupFailClosed:
    """The home-domain authorization lookup is a remote call in a real
    deployment: transient outages retry, a dead home domain exhausts
    the budget and FAILS CLOSED — no entitlement guess — and the
    refusal is audited on the host domain (satellite of ISSUE 7)."""

    def _chaos(self, seed=3, **arm_kwargs):
        from repro.testing.faults import FaultInjector

        chaos = FaultInjector(seed=seed)
        chaos.patch(Federation, "_home_is_authorized",
                    "federation.lookup")
        chaos.arm("federation.lookup", **arm_kwargs)
        return chaos

    def test_retry_exhaustion_fails_closed_and_audits(self, federation):
        from repro.errors import RetryExhausted

        lab = federation.domain("lab")
        chaos = self._chaos()  # default: fault on every call
        try:
            with pytest.raises(RetryExhausted):
                federation.entitled_host_roles("hq", "ana", "lab")
        finally:
            chaos.restore()
        # every attempt in the budget was burned before giving up
        assert chaos.calls("federation.lookup") == \
            federation.lookup_attempts
        # ... and the host audited the refusal with full context
        records = lab.audit.by_kind("federation.lookup_exhausted")
        assert len(records) == 1
        detail = records[0].detail
        assert detail["user"] == "ana"
        assert detail["home_domain"] == "hq"
        assert detail["host_domain"] == "lab"
        assert detail["home_role"] == "Engineer"
        assert detail["attempts"] == federation.lookup_attempts
        assert detail["error"] == "TransientError"

    def test_exhaustion_blocks_the_visit(self, federation):
        from repro.errors import RetryExhausted

        chaos = self._chaos()
        try:
            with pytest.raises(RetryExhausted):
                federation.visit("hq", "ana", "lab")
        finally:
            chaos.restore()
        # fail closed: no guest principal was provisioned
        lab = federation.domain("lab")
        assert guest_principal("ana", "hq") not in lab.model.users

    def test_transient_blip_recovers_without_audit(self, federation):
        # fault only the first call: the retry succeeds, nothing is
        # audited, and the retry counter surfaces the blip
        chaos = self._chaos(at=(1,))
        try:
            roles = federation.entitled_host_roles("hq", "ana", "lab")
        finally:
            chaos.restore()
        assert roles == {"Visitor"}
        lab = federation.domain("lab")
        assert lab.audit.by_kind("federation.lookup_exhausted") == []
        hq = federation.domain("hq")
        assert hq.obs.transient_retries.total() >= 1
