"""Integration: active engine surface beyond the paper's worked rules."""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.errors import (
    AdministrationError,
    DuplicateEntityError,
    OperationDenied,
    SecurityLockout,
    UnknownRoleError,
    UnknownSessionError,
    UnknownUserError,
)

POLICY = """
policy engine {
  role A; role B;
  user bob; user carol;
  assign bob to A;
  permission read on doc;
  grant read on doc to A;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestSessions:
    def test_session_ids_unique(self, engine):
        first = engine.create_session("bob")
        second = engine.create_session("bob")
        assert first != second

    def test_explicit_session_id(self, engine):
        assert engine.create_session("bob", session_id="mine") == "mine"

    def test_duplicate_session_id_denied(self, engine):
        engine.create_session("bob", session_id="mine")
        with pytest.raises(DuplicateEntityError):
            engine.create_session("carol", session_id="mine")

    def test_unknown_user_denied(self, engine):
        with pytest.raises(UnknownUserError):
            engine.create_session("ghost")

    def test_delete_session_deactivates_roles(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        engine.delete_session(sid)
        assert sid not in engine.model.sessions
        # roleDeactivated was cascaded (audit saw the drop)
        assert engine.audit.matching(session=sid, role="A")

    def test_delete_unknown_session(self, engine):
        with pytest.raises(UnknownSessionError):
            engine.delete_session("ghost")


class TestAssignmentRules:
    def test_assign_through_administrative_rule(self, engine):
        engine.assign_user("carol", "B")
        assert engine.model.is_assigned("carol", "B")
        assert engine.audit.by_kind("admin.assign_user")

    def test_assign_unknown_entities(self, engine):
        with pytest.raises(UnknownUserError):
            engine.assign_user("ghost", "A")
        with pytest.raises(UnknownRoleError):
            engine.assign_user("bob", "ghost")

    def test_double_assignment_denied(self, engine):
        with pytest.raises(AdministrationError):
            engine.assign_user("bob", "A")

    def test_deassign(self, engine):
        engine.deassign_user("bob", "A")
        assert not engine.model.is_assigned("bob", "A")
        with pytest.raises(AdministrationError):
            engine.deassign_user("bob", "A")

    def test_deassign_deactivates(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        engine.deassign_user("bob", "A")
        assert "A" not in engine.model.session_roles(sid)


class TestFailClosed:
    def test_disabled_activation_rule_fails_closed(self, engine):
        sid = engine.create_session("bob")
        engine.rules.disable("AAR1.A")
        from repro.errors import ActivationDenied
        with pytest.raises(ActivationDenied,
                           match="not committed"):
            engine.add_active_role(sid, "A")

    def test_disabled_commit_rule_fails_closed(self, engine):
        sid = engine.create_session("bob")
        engine.rules.disable("CC.A")
        from repro.errors import ActivationDenied
        with pytest.raises(ActivationDenied):
            engine.add_active_role(sid, "A")

    def test_disabled_session_rule_fails_closed(self, engine):
        engine.rules.disable("GR.createSession")
        with pytest.raises(OperationDenied):
            engine.create_session("bob")

    def test_disabled_check_access_rule_denies(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        assert engine.check_access(sid, "read", "doc")
        engine.rules.disable("CA.checkAccess")
        assert not engine.check_access(sid, "read", "doc")


class TestLocking:
    def test_locked_user_cannot_create_sessions(self, engine):
        engine.lock_user("bob")
        with pytest.raises(SecurityLockout):
            engine.create_session("bob")

    def test_lock_destroys_sessions(self, engine):
        sid = engine.create_session("bob")
        engine.lock_user("bob")
        assert sid not in engine.model.sessions

    def test_locked_user_denied_access(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        engine.locked_users.add("bob")  # lock without deleting session
        assert not engine.check_access(sid, "read", "doc")

    def test_unlock_restores(self, engine):
        engine.lock_user("bob")
        engine.unlock_user("bob")
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        assert engine.check_access(sid, "read", "doc")


class TestDynamicAdministration:
    def test_add_role_then_use(self, engine):
        engine.add_role("New")
        engine.assign_user("carol", "New")
        engine.add_permission("write", "doc")
        engine.grant_permission("New", "write", "doc")
        sid = engine.create_session("carol")
        engine.add_active_role(sid, "New")
        assert engine.check_access(sid, "write", "doc")

    def test_delete_role_denies_everything(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        engine.delete_role("A")
        assert not engine.check_access(sid, "read", "doc")
        with pytest.raises(UnknownRoleError):
            engine.add_active_role(sid, "A")

    def test_delete_user(self, engine):
        sid = engine.create_session("bob")
        engine.delete_user("bob")
        assert sid not in engine.model.sessions
        assert "bob" not in engine.policy.users

    def test_revoke_permission(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        engine.revoke_permission("A", "read", "doc")
        assert not engine.check_access(sid, "read", "doc")

    def test_inheritance_administration(self, engine):
        engine.add_inheritance("B", "A")
        sid = engine.create_session("carol")
        engine.assign_user("carol", "B")
        engine.add_active_role(sid, "B")
        assert engine.check_access(sid, "read", "doc")  # B inherits A
        engine.delete_inheritance("B", "A")
        assert not engine.check_access(sid, "read", "doc")

    def test_create_sod_sets_live(self, engine):
        engine.create_dsd_set("d", {"A", "B"})
        engine.assign_user("bob", "B")
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        from repro.errors import DsdViolationError
        # DSD is enforced through the (regenerated?) AAR rule only if
        # the rule knows about it; dynamic set creation regenerates
        # nothing, but can_activate checks the model directly, so the
        # deny path still fires with the right type.
        with pytest.raises(DsdViolationError):
            engine.detector.raise_event(
                "addActiveRole.B", user="bob", sessionId=sid, role="B",
                activationId=12345)


class TestStats:
    def test_stats_aggregate(self, engine):
        stats = engine.stats()
        assert stats["rules"] == len(engine.rules)
        assert stats["users"] == 2
        assert "events_defined" in stats
