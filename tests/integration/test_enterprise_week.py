"""Integration: one simulated week at a hospital using every constraint
family at once — the cross-feature interaction lock.

Constraints in play simultaneously:

* weekly enabling windows (ER staff on weekdays only),
* per-user and role-wide activation durations,
* transaction-based activation (residents only while an attending is on),
* prerequisite roles and dynamic SoD,
* disabling-time SoD on ward coverage,
* context-gated access (sterile field),
* privacy purposes on patient records,
* an active-security threshold watching for probing.

The simulated epoch (Jan 1 2005) is a Saturday; day 2 is Monday.
"""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.clock import SECONDS_PER_DAY as DAY
from repro.clock import SECONDS_PER_HOUR as H
from repro.errors import (
    ActivationDenied,
    DeactivationDenied,
    PrerequisiteNotMetError,
    RoleNotEnabledError,
    SecurityLockout,
)

POLICY = """
policy hospital_week {
  role Attending; role Resident; role Pharmacist;
  role ErStaff; role Surgeon;
  role Nurse; role Doctor;

  user dr_lee; user res_kim; user ph_roy; user mallory;

  assign dr_lee to Attending;
  assign dr_lee to Surgeon;
  assign dr_lee to ErStaff;
  assign res_kim to Resident;
  assign res_kim to ErStaff;
  assign ph_roy to Pharmacist;

  permission read on patient.record;
  permission dispense on pharmacy;
  permission operate on theatre;
  grant read on patient.record to Resident;
  grant read on patient.record to Attending;
  grant dispense on pharmacy to Pharmacist;
  grant operate on theatre to Surgeon;

  # residents work only under an attending (Rule 9)
  transaction Resident during Attending;

  # the ER desk is staffed on weekdays 08:00-18:00 only
  enable ErStaff daily 08:00 to 18:00 on mon, tue, wed, thu, fri;

  # surgeons book two-hour theatre slots
  duration Surgeon 7200;

  # a pharmacist cannot also be a resident in one session
  dsd dispensing roles Pharmacist, Resident;

  # ward coverage: Nurse/Doctor not both disabled during the day
  disabling_sod coverage roles Nurse, Doctor daily 08:00 to 20:00;

  # theatre access requires a sterile field
  context Surgeon requires sterile == "yes";

  # privacy: patient records only for treatment
  purpose healthcare;
  purpose treatment under healthcare;
  object_policy read on patient.record for treatment;

  # probing detector
  threshold probes event accessDenied group_by user count 3
            window 3600 lock_user lockout 7200;
}
"""


@pytest.fixture
def hospital():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestWeekendSaturday:
    def test_er_desk_closed_on_saturday(self, hospital):
        sid = hospital.create_session("res_kim")
        hospital.advance_time(10 * H)  # Saturday 10:00
        with pytest.raises(RoleNotEnabledError):
            hospital.add_active_role(sid, "ErStaff")

    def test_resident_needs_attending_even_on_weekend(self, hospital):
        sid = hospital.create_session("res_kim")
        with pytest.raises(PrerequisiteNotMetError):
            hospital.add_active_role(sid, "Resident")


class TestMondayShift:
    def advance_to_monday_nine(self, hospital):
        hospital.advance_time(2 * DAY + 9 * H)

    def test_full_morning_flow(self, hospital):
        self.advance_to_monday_nine(hospital)
        lee = hospital.create_session("dr_lee")
        hospital.add_active_role(lee, "Attending")
        hospital.add_active_role(lee, "ErStaff")  # weekday window open

        kim = hospital.create_session("res_kim")
        hospital.add_active_role(kim, "Resident")  # attending present
        # privacy: purpose required for the record
        assert not hospital.check_access(kim, "read", "patient.record")
        assert hospital.check_access(kim, "read", "patient.record",
                                     purpose="treatment")

        # attending leaves: resident cascades out (Rule 9)
        hospital.drop_active_role(lee, "Attending")
        assert "Resident" not in hospital.model.session_roles(kim)

    def test_surgeon_slot_requires_sterile_field_and_expires(
            self, hospital):
        self.advance_to_monday_nine(hospital)
        lee = hospital.create_session("dr_lee")
        with pytest.raises(ActivationDenied):
            hospital.add_active_role(lee, "Surgeon")  # context unset
        hospital.context.set("sterile", "yes")
        hospital.add_active_role(lee, "Surgeon")
        assert hospital.check_access(lee, "operate", "theatre")
        hospital.advance_time(2 * H)  # slot expires
        assert "Surgeon" not in hospital.model.session_roles(lee)
        assert not hospital.check_access(lee, "operate", "theatre")

    def test_dispensing_dsd(self, hospital):
        self.advance_to_monday_nine(hospital)
        hospital.assign_user("ph_roy", "Resident")
        lee = hospital.create_session("dr_lee")
        hospital.add_active_role(lee, "Attending")
        roy = hospital.create_session("ph_roy")
        hospital.add_active_role(roy, "Pharmacist")
        from repro.errors import DsdViolationError
        with pytest.raises(DsdViolationError):
            hospital.add_active_role(roy, "Resident")

    def test_ward_coverage_sod_daytime(self, hospital):
        self.advance_to_monday_nine(hospital)
        hospital.disable_role("Nurse")
        with pytest.raises(DeactivationDenied):
            hospital.disable_role("Doctor")
        hospital.advance_time(12 * H)  # 21:00: outside coverage hours
        hospital.disable_role("Doctor")

    def test_er_desk_closes_at_six(self, hospital):
        self.advance_to_monday_nine(hospital)
        kim = hospital.create_session("res_kim")
        hospital.add_active_role(kim, "ErStaff")
        hospital.advance_time(9 * H)  # 18:00
        assert "ErStaff" not in hospital.model.session_roles(kim)


class TestSecurityWatch:
    def test_mallory_probing_gets_locked_then_released(self, hospital):
        hospital.advance_time(2 * DAY + 9 * H)
        sid = hospital.create_session("mallory")
        for _ in range(3):
            assert not hospital.check_access(sid, "read",
                                             "patient.record",
                                             purpose="treatment")
        assert "mallory" in hospital.locked_users
        with pytest.raises(SecurityLockout):
            hospital.create_session("mallory")
        hospital.advance_time(2 * H + 1)
        assert "mallory" not in hospital.locked_users

    def test_legitimate_staff_unaffected_by_lockout(self, hospital):
        hospital.advance_time(2 * DAY + 9 * H)
        mallory = hospital.create_session("mallory")
        for _ in range(3):
            hospital.check_access(mallory, "read", "patient.record")
        lee = hospital.create_session("dr_lee")
        hospital.add_active_role(lee, "Attending")
        assert hospital.check_access(lee, "read", "patient.record",
                                     purpose="treatment")


class TestWholeWeekAccounting:
    def test_er_window_transitions_exactly(self, hospital):
        hospital.advance_time(9 * DAY)  # through Sunday next week
        enables = len(hospital.audit.by_kind("role.enable"))
        disables = len(hospital.audit.by_kind("role.disable"))
        # five weekdays in the first full week
        assert enables == 5
        assert disables == 5

    def test_verifier_clean_on_the_full_policy(self, hospital):
        from repro.synthesis.verify import errors_only, verify_rule_pool
        assert errors_only(verify_rule_pool(hospital)) == []

    def test_snapshot_restore_midweek(self, hospital):
        from repro.persistence import dumps, loads
        hospital.advance_time(2 * DAY + 9 * H)
        hospital.context.set("sterile", "yes")
        lee = hospital.create_session("dr_lee")
        hospital.add_active_role(lee, "Surgeon")
        hospital.advance_time(1 * H)
        revived = loads(dumps(hospital))
        revived.advance_time(1 * H)  # slot had one hour left
        assert "Surgeon" not in revived.model.session_roles(lee)
        # ER window machinery still alive after restore
        kim = revived.create_session("res_kim")
        revived.add_active_role(kim, "ErStaff")
        revived.advance_time(7 * H)  # 18:00
        assert "ErStaff" not in revived.model.session_roles(kim)
