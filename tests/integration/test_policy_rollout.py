"""End-to-end guard demo for the safe-rollout pipeline (ISSUE 9).

The acceptance scenario: a *divergent* policy config is staged while
live traffic flows; the shadow-compare canary detects the divergence
and promotion is refused; an operator forcing the promotion anyway is
auto-rolled-back by the hold window; at no point does a live decision
fail open; the WAL records the stage → refuse / promote → rollback
sequence with version ids; and the recorded decision stream replays
deterministically under any pinned config version.
"""

from __future__ import annotations

import json

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.config import (
    ConfigSet,
    PolicyLifecycle,
    RolloutBudget,
    load_config,
    replay_wal,
)
from repro.config.lifecycle import load_version
from repro.config.replay import diff_streams
from repro.errors import AdministrationError
from repro.serve.shard import LIFECYCLE_OPS, ShardRouter
from repro.wal import Durability, read_wal, recover

BASE = """
policy demo {
  role doctor;
  role nurse;
  user alice;
  user bob;
  hierarchy doctor > nurse;
  permission read on chart;
  permission write on chart;
  grant read on chart to nurse;
  grant write on chart to doctor;
  assign alice to doctor;
  assign bob to nurse;
}
"""


def spec_with(extra_grants=(), drop_grants=(), extra_roles=()):
    spec = parse_policy(BASE)
    for role in extra_roles:
        spec.add_role(role)
    for grant in drop_grants:
        spec.grants.remove(grant)
    for grant in extra_grants:
        spec.grants.append(grant)
    return spec


@pytest.fixture
def stack(tmp_path):
    engine = ActiveRBACEngine.from_policy(parse_policy(BASE))
    durability = Durability(engine, str(tmp_path))
    engine.decision_journal = True
    lifecycle = PolicyLifecycle(
        engine, budget=RolloutBudget(min_samples=20, hold_checks=30))
    lifecycle.adopt(1)
    sids = {"alice": engine.create_session("alice"),
            "bob": engine.create_session("bob")}
    engine.add_active_role(sids["alice"], "doctor")
    engine.add_active_role(sids["bob"], "nurse")
    yield engine, durability, lifecycle, sids
    durability.close()


def drive(engine, sids, rounds=30):
    """Live traffic; returns the decision vector (must never change
    while a canary is mirroring)."""
    decisions = []
    for _ in range(rounds):
        decisions.append(engine.check_access(sids["bob"], "read",
                                             "chart"))
        decisions.append(engine.check_access(sids["alice"], "write",
                                             "chart"))
        decisions.append(engine.check_access(sids["bob"], "write",
                                             "chart"))
    return decisions


EXPECTED = [True, True, False]  # bob-read, alice-write, bob-write


class TestGuardDemo:
    def test_divergent_config_is_refused_with_zero_fail_open(
            self, stack, tmp_path):
        engine, durability, lifecycle, sids = stack
        baseline = drive(engine, sids, rounds=5)
        assert baseline == EXPECTED * 5

        # candidate revokes nurse read — live traffic diverges
        bad = ConfigSet.from_spec(
            spec_with(drop_grants=[("nurse", "read", "chart")]), 2)
        lifecycle.stage(bad)
        during = drive(engine, sids, rounds=10)
        # zero fail-open: live decisions identical while shadowing
        assert during == EXPECTED * 10

        transition = lifecycle.poll()
        assert transition["refused"] == 2
        assert "divergence" in transition["reason"]
        assert engine.config_version == 1
        assert engine.config_candidate is None
        # the canary kept the evidence
        details = transition["canary"]["details"]
        assert any(row["operation"] == "read" and row["live"]
                   and not row["shadow"] for row in details)
        # explicit promote after refuse is impossible (nothing staged)
        from repro.config.loader import ConfigError
        with pytest.raises(ConfigError, match="no candidate"):
            lifecycle.promote()

    def test_forced_promotion_auto_rolls_back(self, stack, tmp_path):
        engine, durability, lifecycle, sids = stack
        bad = ConfigSet.from_spec(
            spec_with(drop_grants=[("nurse", "read", "chart")]), 2)
        lifecycle.stage(bad)
        drive(engine, sids, rounds=5)
        assert lifecycle.comparator.verdict() == "refuse"

        report = lifecycle.promote(force=True)
        assert report["promoted"] == 2 and report["forced"]
        # the promotion is live: nurse read now really denies
        assert not engine.check_access(sids["bob"], "read", "chart")

        drive(engine, sids, rounds=2)  # hold sees the flips
        transition = lifecycle.poll()
        assert transition["rolled_back"] == 2
        assert transition["restored"] == 1
        assert "divergence" in transition["reason"] \
            or "hold" in transition["reason"]
        # rollback restored the pre-promotion answers
        assert drive(engine, sids, rounds=3) == EXPECTED * 3
        assert engine.config_version == 1
        assert engine.config_last_rollback["from_version"] == 2
        assert engine.config_last_rollback["reason"] == \
            transition["reason"]
        health = engine.health()
        assert health["config_version"] == 1
        assert health["config_last_rollback"]["from_version"] == 2

    def test_wal_records_the_whole_story_with_version_ids(
            self, stack, tmp_path):
        engine, durability, lifecycle, sids = stack
        bad = ConfigSet.from_spec(
            spec_with(drop_grants=[("nurse", "read", "chart")]), 2)
        lifecycle.stage(bad)
        drive(engine, sids, rounds=3)
        lifecycle.poll()  # refuse
        good = ConfigSet.from_spec(
            spec_with(extra_grants=[("doctor", "read", "chart")]), 3)
        lifecycle.stage(good)
        drive(engine, sids, rounds=10)
        lifecycle.poll()  # promote
        drive(engine, sids, rounds=10)
        lifecycle.poll()  # settle
        durability.wal.sync()

        records, _report = read_wal(durability.wal.path)
        configs = [(r["op"], r["data"].get("version"))
                   for r in records if r["op"].startswith("config.")]
        assert configs == [
            ("config.promote", 1),   # adopt
            ("config.stage", 2),
            ("config.refuse", 2),
            ("config.stage", 3),
            ("config.promote", 3),
        ]
        promote = next(r for r in records
                       if r["op"] == "config.promote"
                       and r["data"]["version"] == 3)
        # the swap record carries the full post-swap policy and the
        # epoch it published
        assert "grant read on chart to doctor"in promote["data"]["policy"]
        assert promote["data"]["epoch"] == engine.policy_epoch
        # decision stream was journaled alongside
        assert sum(1 for r in records
                   if r["op"] == "decision.check") >= 60

    def test_recovery_restores_the_promoted_version(self, stack,
                                                    tmp_path):
        engine, durability, lifecycle, sids = stack
        good = ConfigSet.from_spec(
            spec_with(extra_grants=[("doctor", "read", "chart")]), 2)
        lifecycle.stage(good)
        drive(engine, sids, rounds=10)
        assert lifecycle.poll()["promoted"] == 2
        durability.wal.sync()

        recovered, _report = recover(str(tmp_path))
        assert recovered.config_version == 2
        assert recovered.policy_epoch == engine.policy_epoch
        assert ("doctor", "read", "chart") in recovered.policy.grants


class TestDeterministicReplay:
    def test_same_version_replays_byte_identically(self, stack,
                                                   tmp_path):
        engine, durability, lifecycle, sids = stack
        good = ConfigSet.from_spec(
            spec_with(extra_grants=[("doctor", "read", "chart")]), 2)
        lifecycle.stage(good)
        drive(engine, sids, rounds=10)
        lifecycle.poll()
        drive(engine, sids, rounds=10)
        lifecycle.poll()
        durability.wal.sync()

        config = load_version(str(tmp_path), 2)
        first = replay_wal(str(tmp_path), config)
        second = replay_wal(str(tmp_path), config)
        assert first.digest and first.digest == second.digest
        assert not first.gaps
        assert first.pinned_swaps >= 2  # adopt + promote
        assert len(first.decisions) >= 60

    def test_cross_version_diff_pinpoints_the_change(self, stack,
                                                     tmp_path):
        engine, durability, lifecycle, sids = stack
        bad = ConfigSet.from_spec(
            spec_with(drop_grants=[("nurse", "read", "chart")]), 2)
        lifecycle.stage(bad)
        drive(engine, sids, rounds=10)
        lifecycle.poll()  # refused — but the artifact persists
        durability.wal.sync()

        under_v1 = replay_wal(str(tmp_path),
                              load_version(str(tmp_path), 1))
        under_v2 = replay_wal(str(tmp_path),
                              load_version(str(tmp_path), 2))
        diff = diff_streams(under_v1, under_v2)
        assert not diff["identical"]
        assert diff["differing"]
        # every divergence is exactly the revoked nurse read
        assert all(row["operation"] == "read" and row["v1"]
                   and not row["v2"] for row in diff["differing"])
        # replaying the deployed version reproduces the live stream
        assert not under_v1.mismatches


class TestServeReloadPath:
    def test_admin_reload_stages_and_auto_promotes(self, tmp_path):
        config_file = tmp_path / "deploy.yaml"
        config_file.write_text(
            "version: 2\npolicy: |\n"
            + "".join(f"  {line}\n" for line in
                      BASE.strip().splitlines()))
        engine = ActiveRBACEngine.from_policy(parse_policy(BASE))
        durability = Durability(engine, str(tmp_path / "state"))
        router = ShardRouter()
        shard = router.add_shard("demo", engine, durability,
                                 config_path=str(config_file))
        shard.ensure_lifecycle(
            budget=RolloutBudget(min_samples=10, hold_checks=10))

        assert "reload" in LIFECYCLE_OPS
        report = shard.admin_op("reload", {})
        # identical policy content: diff is empty, canary needs samples
        assert report["staged"] == 2
        assert engine.config_version == 1  # auto-adopted baseline
        assert engine.config_candidate == 2
        for _ in range(15):
            shard.checked("bob", "read", "chart")
        assert engine.config_version == 2
        assert shard.lifecycle.status()["phase"] == "hold"
        for _ in range(15):  # hold window passes clean → settle
            shard.checked("bob", "read", "chart")
        assert shard.lifecycle.status()["phase"] == "idle"
        # health surfaces the lifecycle block
        health = shard.health()
        assert health["lifecycle"]["active_version"] == 2
        assert health["config_version"] == 2
        # an unchanged re-reload is a no-op
        again = shard.admin_op("reload", {})
        assert again["unchanged"] is True
        durability.close()

    def test_reload_without_any_config_is_an_admin_error(self):
        engine = ActiveRBACEngine.from_policy(parse_policy(BASE))
        router = ShardRouter()
        shard = router.add_shard("demo", engine)
        with pytest.raises(AdministrationError, match="no config path"):
            shard.admin_op("reload", {})

    def test_inline_source_stage_with_status(self, tmp_path):
        engine = ActiveRBACEngine.from_policy(parse_policy(BASE))
        durability = Durability(engine, str(tmp_path))
        router = ShardRouter()
        shard = router.add_shard("demo", engine, durability)
        shard.ensure_lifecycle(
            budget=RolloutBudget(min_samples=5, hold_checks=5))
        source = json.dumps({"version": 2, "policy": BASE})
        report = shard.admin_op("config_stage",
                                {"source": source, "format": "json"})
        assert report["staged"] == 2
        status = shard.admin_op("config_status", {})
        assert status["status"]["phase"] == "canary"
        # nothing promoted yet: rollback has no baseline to restore
        with pytest.raises(AdministrationError, match="no promotion"):
            shard.admin_op("config_rollback", {"reason": "x"})
        durability.close()

    def test_dsl_config_path_auto_versions(self, tmp_path):
        dsl_file = tmp_path / "deploy.rbac"
        dsl_file.write_text(BASE)
        engine = ActiveRBACEngine.from_policy(parse_policy(BASE))
        router = ShardRouter()
        shard = router.add_shard("demo", engine,
                                 config_path=str(dsl_file))
        report = shard.admin_op("reload", {})
        # raw DSL has no version key: the shard assigns the next id
        assert report["staged"] == 2
        assert engine.config_version == 1
