"""Integration: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[path.stem for path in EXAMPLES])
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "enterprise_xyz", "hospital_temporal",
            "active_security_demo", "event_algebra_demo",
            "federation_demo", "persistence_demo",
            "analysis_demo"} <= names
