"""Integration: the asyncio service plane end to end.

Boots a real :class:`~repro.serve.http.ServeApp` on an ephemeral port
inside each test and talks to it over actual sockets with the loadgen
client — routing across shards, batch checks, explain, metrics,
health, the RCU epoch-swap differential, concurrent clients with
interleaved control-plane mutations, and the graceful drain / WAL
flush / flight-dump shutdown sequence (in-process and via SIGTERM on
a real subprocess).
"""

import asyncio
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.federation import RoleMapping
from repro.kernel import KERNEL_DENY, KERNEL_GRANT
from repro.serve import HttpClient, ServeApp, ShardRouter
from repro.wal import Durability

ALPHA = """
policy alpha {
  role Writer; role Reader;
  hierarchy Writer > Reader;
  user ada; user bob;
  assign ada to Writer;
  assign bob to Reader;
  permission edit on doc;
  permission view on doc;
  grant edit on doc to Writer;
  grant view on doc to Reader;
}
"""

BETA = """
policy beta {
  role Guest;
  user eve;
  assign eve to Guest;
  permission ping on host;
  grant ping on host to Guest;
}
"""


def build_router(alpha_durability=None):
    router = ShardRouter()
    router.add_shard(
        "alpha", ActiveRBACEngine.from_policy(parse_policy(ALPHA)),
        alpha_durability)
    router.add_shard(
        "beta", ActiveRBACEngine.from_policy(parse_policy(BETA)))
    router.add_mapping(RoleMapping("alpha", "Writer", "beta", "Guest"))
    return router


def serve(router, scenario, **app_kwargs):
    """Boot the app, run ``scenario(app, client)``, shut down."""
    async def main():
        app = ServeApp(router, **app_kwargs)
        await app.start("127.0.0.1", 0)
        client = HttpClient("127.0.0.1", app.port)
        await client.connect()
        try:
            return await scenario(app, client)
        finally:
            await client.close()
            await app.shutdown()
    return asyncio.run(main())


class TestRoutes:
    def test_check_routes_to_both_shards(self):
        async def scenario(app, client):
            s1, p1 = await client.request("POST", "/v1/check", {
                "user": "ada@alpha", "operation": "edit",
                "object": "doc"})
            s2, p2 = await client.request("POST", "/v1/check", {
                "user": "eve@beta", "operation": "ping",
                "object": "host"})
            return (s1, p1), (s2, p2)

        (s1, p1), (s2, p2) = serve(build_router(), scenario)
        assert s1 == 200 and p1["allowed"] is True
        assert p1["shard"] == "alpha" and p1["path"] == "kernel"
        assert s2 == 200 and p2["allowed"] is True
        assert p2["shard"] == "beta"

    def test_check_batch_isolates_item_errors(self):
        async def scenario(app, client):
            return await client.request("POST", "/v1/check_batch", {
                "checks": [
                    {"user": "ada@alpha", "operation": "edit",
                     "object": "doc"},
                    {"user": "bob@alpha", "operation": "edit",
                     "object": "doc"},
                    {"user": "ghost@alpha", "operation": "edit",
                     "object": "doc"},
                ]})

        status, payload = serve(build_router(), scenario)
        assert status == 200
        assert payload["count"] == 3
        results = payload["results"]
        assert results[0]["allowed"] is True
        assert results[1]["allowed"] is False
        # the unknown user fails its item, not the batch
        assert results[2]["allowed"] is False
        assert results[2]["error"] == "UnknownUserError"

    def test_explain_over_query_string(self):
        async def scenario(app, client):
            return await client.request(
                "GET",
                "/v1/explain?user=ada@alpha&operation=edit&object=doc")

        status, payload = serve(build_router(), scenario)
        assert status == 200
        assert payload["allowed"] is True
        assert payload["shard"] == "alpha"

    def test_metrics_server_plane_and_per_shard(self):
        async def scenario(app, client):
            await client.request("POST", "/v1/check", {
                "user": "ada@alpha", "operation": "edit",
                "object": "doc"})
            _, server_text = await client.request("GET", "/metrics")
            _, shard_text = await client.request(
                "GET", "/metrics?shard=alpha")
            missing, _ = await client.request(
                "GET", "/metrics?shard=gamma")
            return server_text, shard_text, missing

        server_text, shard_text, missing = serve(build_router(),
                                                 scenario)
        assert "repro_serve_requests_total" in server_text
        assert 'repro_serve_shard_epoch{shard="alpha"}' in server_text
        # per-shard view is the engine's own registry, verbatim
        assert "# HELP" in shard_text
        assert "repro_serve_requests_total" not in shard_text
        assert missing == 404

    def test_healthz_reports_kernel_readiness(self):
        async def scenario(app, client):
            return await client.request("GET", "/healthz")

        status, payload = serve(build_router(), scenario)
        assert status == 200
        assert payload["status"] == "ok"
        alpha = payload["shards"]["alpha"]
        assert alpha["serve"]["published_epoch"] == alpha["kernel_epoch"]
        assert alpha["kernel_stale_reason"] is None
        assert alpha["kernel_staleness"]["epoch"]["kernel"] == \
            alpha["kernel_staleness"]["epoch"]["engine"]

    def test_healthz_degraded_is_503(self):
        router = build_router()
        engine = router.shard("beta").engine
        victim = next(iter(engine.rules)).name
        engine.rules.quarantine(victim, reason="serve-test")

        async def scenario(app, client):
            return await client.request("GET", "/healthz")

        status, payload = serve(router, scenario)
        assert status == 503
        assert payload["status"] == "degraded"

    def test_protocol_errors(self):
        async def scenario(app, client):
            missing_route = await client.request("GET", "/nope")
            wrong_method = await client.request("GET", "/v1/check")
            bad_body = await client.request("POST", "/v1/check",
                                            {"user": "ada@alpha"})
            return missing_route, wrong_method, bad_body

        (s1, _), (s2, _), (s3, p3) = serve(build_router(), scenario)
        assert (s1, s2, s3) == (404, 405, 400)
        assert "operation" in p3["message"]


class TestEpochSwap:
    def test_differential_old_reader_new_router(self):
        """The RCU differential over HTTP: a mutation posted mid-run
        swaps the epoch; a reader still holding the old reference
        keeps answering the old policy, while the server already
        serves the new verdict — and no request recompiles."""
        router = build_router()
        shard = router.shard("alpha")

        async def scenario(app, client):
            # warm bob's session, capture the pre-swap kernel
            _, before = await client.request("POST", "/v1/check", {
                "user": "bob@alpha", "operation": "edit",
                "object": "doc"})
            old_kernel = shard.kernel
            sid = before["session"]
            assert old_kernel.evaluate(sid, "edit", "doc") == KERNEL_DENY

            status, swap = await client.request("POST", "/v1/admin", {
                "domain": "alpha", "op": "grant",
                "args": {"role": "Reader", "operation": "edit",
                         "object": "doc"}})
            assert status == 200 and swap["swapped"] is True

            _, after = await client.request("POST", "/v1/check", {
                "user": "bob@alpha", "operation": "edit",
                "object": "doc"})
            return before, old_kernel, sid, swap, after

        before, old_kernel, sid, swap, after = serve(router, scenario)
        assert before["allowed"] is False
        assert after["allowed"] is True
        assert after["epoch"] == swap["epoch"] > before["epoch"]
        # the old reference is frozen at its epoch and verdict
        assert old_kernel.epoch == before["epoch"]
        assert old_kernel.evaluate(sid, "edit", "doc") == KERNEL_DENY
        assert shard.kernel.evaluate(sid, "edit", "doc") == KERNEL_GRANT
        # readers never compiled: the published reference is the
        # engine's own (control-plane) build
        assert shard.engine._kernel is shard.kernel

    def test_concurrent_clients_with_interleaved_mutations(self):
        """Many closed-loop clients keep checking while the control
        plane applies a stream of grants: every request answers, no
        5xx, and every mutation lands as an epoch swap."""
        router = build_router()
        shard = router.shard("alpha")
        swaps_before = shard.swaps
        mutations = 5
        clients = 8
        checks_per_client = 30

        async def reader(app):
            client = HttpClient("127.0.0.1", app.port)
            await client.connect()
            statuses = []
            try:
                for index in range(checks_per_client):
                    user = "ada@alpha" if index % 2 else "bob@alpha"
                    status, payload = await client.request(
                        "POST", "/v1/check",
                        {"user": user, "operation": "view",
                         "object": "doc"})
                    statuses.append((status, payload["allowed"]))
            finally:
                await client.close()
            return statuses

        async def mutator(app, client):
            results = []
            for index in range(mutations):
                status, payload = await client.request(
                    "POST", "/v1/admin", {
                        "domain": "alpha", "op": "grant",
                        "args": {"role": "Reader",
                                 "operation": "edit",
                                 "object": f"obj{index}"}})
                results.append((status, payload["swapped"]))
                await asyncio.sleep(0)  # interleave with readers
            return results

        async def scenario(app, client):
            # register the objects the mutator will grant
            for index in range(mutations):
                await client.request("POST", "/v1/admin", {
                    "domain": "alpha", "op": "add_permission",
                    "args": {"operation": "edit",
                             "object": f"obj{index}"}})
            return await asyncio.gather(
                mutator(app, client),
                *(reader(app) for _ in range(clients)))

        results = serve(router, scenario)
        mutation_results, reader_results = results[0], results[1:]
        assert all(status == 200 and swapped
                   for status, swapped in mutation_results)
        for statuses in reader_results:
            assert len(statuses) == checks_per_client
            assert all(status == 200 for status, _ in statuses)
        assert shard.swaps >= swaps_before + mutations


class TestShutdown:
    def test_drain_flush_dump_sequence(self, tmp_path):
        flight_dir = tmp_path / "flightrec"
        durability = None

        def attach(engine):
            nonlocal durability
            durability = Durability(engine, str(tmp_path / "wal"))
            return durability

        router = ShardRouter()
        alpha = ActiveRBACEngine.from_policy(parse_policy(ALPHA))
        router.add_shard("alpha", alpha, attach(alpha))
        router.add_shard(
            "beta", ActiveRBACEngine.from_policy(parse_policy(BETA)))

        async def scenario():
            app = ServeApp(router, drain_grace=2.0,
                           flightrec_dir=str(flight_dir))
            await app.start("127.0.0.1", 0)
            client = HttpClient("127.0.0.1", app.port)
            await client.connect()
            # traffic + one committed mutation (a WAL record in the
            # group-commit buffer, not yet fsynced)
            await client.request("POST", "/v1/check", {
                "user": "ada@alpha", "operation": "edit",
                "object": "doc"})
            await client.request("POST", "/v1/admin", {
                "domain": "alpha", "op": "grant",
                "args": {"role": "Reader", "operation": "edit",
                         "object": "doc"}})
            await client.close()
            summary = await app.shutdown()
            second = await app.shutdown()  # idempotent
            return summary, second

        summary, second = asyncio.run(scenario())
        assert summary["drained"] is True
        assert summary["inflight"] == 0
        assert summary["wal_flushed"] == 1  # alpha's buffer was dirty
        assert second is summary
        # one dump per shard, in the configured directory, no collision
        dumps = summary["flight_dumps"]
        assert set(dumps) == {"alpha", "beta"}
        assert len(set(dumps.values())) == 2
        for path in dumps.values():
            assert pathlib.Path(path).parent == flight_dir
            payload = json.loads(pathlib.Path(path).read_text())
            assert payload["cause"].startswith("serve.shutdown.")
        # the shutdown itself is audited on every shard
        for shard in router.shards():
            assert shard.engine.audit.by_kind("serve.shutdown")
        # the flushed WAL survives on disk with the policy-epoch
        # record the grant appended (still in the group-commit
        # buffer until shutdown synced it)
        wal_text = (tmp_path / "wal" / "wal.log").read_text()
        assert "policy.epoch" in wal_text

    def test_draining_connections_close(self):
        router = build_router()

        async def scenario(app, client):
            await client.request("POST", "/v1/check", {
                "user": "ada@alpha", "operation": "edit",
                "object": "doc"})
            await app.shutdown()
            # after the drain no new connection is served
            with pytest.raises((ConnectionError, OSError,
                                asyncio.IncompleteReadError)):
                fresh = HttpClient("127.0.0.1", app.port)
                await fresh.connect()
                await fresh.request("GET", "/healthz")
            return True

        assert serve(router, scenario) is True


class TestSigterm:
    def test_subprocess_sigterm_exits_cleanly(self, tmp_path):
        """The deployment contract end to end: boot the CLI server as
        a real process, SIGTERM it, and assert exit 0 plus the
        drain/flush/dump summary on stdout."""
        port_file = tmp_path / "port.txt"
        flight_dir = tmp_path / "flightrec"
        env = dict(os.environ)
        repo_src = str(pathlib.Path(__file__).resolve()
                       .parents[2] / "src")
        env["PYTHONPATH"] = repo_src
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--synthetic", "1", "--users", "40", "--roles", "10",
             "--port", "0", "--port-file", str(port_file),
             "--wal", str(tmp_path / "wal"),
             "--flightrec-dir", str(flight_dir)],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists():
                assert proc.poll() is None, proc.stdout.read()
                assert time.monotonic() < deadline, "server never bound"
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        # the readiness signal must not outlive the process
        assert not port_file.exists()
        lines = [line for line in out.splitlines()
                 if line.startswith("shutdown: ")]
        assert lines, out
        summary = json.loads(lines[-1].removeprefix("shutdown: "))
        assert summary["drained"] is True
        dump = summary["flight_dumps"]["shard00"]
        assert pathlib.Path(dump).is_file()
        assert pathlib.Path(dump).parent == flight_dir
