"""Crash-injection harness: kill-points, recovery, and equivalence.

The property under test: for any seeded kill-point in the WAL pipeline,
``repro.wal.recover`` rebuilds an engine that is *behaviourally
equivalent* to an uncrashed reference engine driven over the same
deterministic operation script — identical check_access answers on a
full probe matrix, identical session/activation state, no SoD
violation, monotone id counters, quarantines intact.

Crashes are :class:`~repro.testing.faults.SimulatedCrash` (a
``BaseException``, so it escapes the rule manager's containment exactly
as SIGKILL would) injected through the shared seeded
:class:`~repro.testing.faults.FaultInjector`.  After recovery the
script is *re-run from the interrupted operation*: operations are
convergent (denials for already-done work are typed errors the driver
swallows), so the recovered engine must land in the reference state.

The CI chaos job runs this module under several ``CHAOS_SEED`` values;
locally it defaults to seed 0.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro import persistence
from repro import wal as wal_mod
from repro.errors import ReproError
from repro.testing.faults import FaultInjector, SimulatedCrash
from repro.wal import Durability, recover

SEED = int(os.environ.get("CHAOS_SEED", "0"))

POLICY = """
policy crashy {
  role A; role B; role C; role D; role Timed;
  user u1; user u2; user u3;
  assign u1 to A; assign u1 to C; assign u1 to Timed;
  assign u2 to B; assign u2 to C; assign u2 to D;
  assign u3 to A; assign u3 to D;
  permission read on doc; permission write on doc;
  grant read on doc to A; grant read on doc to B;
  grant write on doc to C;
  dsd Conflict roles C, D;
  duration Timed 500;
}
"""

USERS = ("u1", "u2", "u3")
ROLES = ("A", "B", "C", "D", "Timed")
PROBES = (("read", "doc"), ("write", "doc"))


def build_ops(seed: int, steps: int = 60) -> list[tuple]:
    """A deterministic operation script.  Session ids are chosen by the
    script (not the engine) so the same script can re-reference them on
    a different engine; time moves via *absolute* targets so a re-run
    after recovery advances by exactly the remaining delta."""
    rng = random.Random(f"crash-ops:{seed}")
    ops: list[tuple] = []
    sids = ["s_0"]
    target = 0.0
    for i in range(steps):
        draw = rng.random()
        if draw < 0.18:
            sid = f"s_{i}"
            ops.append(("session", sid, rng.choice(USERS)))
            sids.append(sid)
        elif draw < 0.45:
            ops.append(("activate", rng.choice(sids), rng.choice(ROLES)))
        elif draw < 0.55:
            ops.append(("drop", rng.choice(sids), rng.choice(ROLES)))
        elif draw < 0.80:
            operation, obj = rng.choice(PROBES)
            ops.append(("check", rng.choice(sids), operation, obj))
        elif draw < 0.88:
            target += rng.choice([1.0, 100.0, 400.0])
            ops.append(("advance_to", target))
        elif draw < 0.94:
            ops.append(("lock", rng.choice(USERS)))
        else:
            ops.append(("unlock", rng.choice(USERS)))
    return ops


def apply_op(engine: ActiveRBACEngine, op: tuple) -> None:
    """Run one scripted operation, swallowing typed denials (on a
    re-run after recovery, already-done work denies — that is the
    convergence mechanism, not a failure)."""
    try:
        kind = op[0]
        if kind == "session":
            engine.create_session(op[2], session_id=op[1])
        elif kind == "activate":
            engine.add_active_role(op[1], op[2])
        elif kind == "drop":
            engine.drop_active_role(op[1], op[2])
        elif kind == "check":
            engine.check_access(op[1], op[2], op[3])
        elif kind == "advance_to":
            delta = op[1] - engine.clock.now
            if delta > 0:
                engine.advance_time(delta)
        elif kind == "lock":
            engine.lock_user(op[1])
        elif kind == "unlock":
            engine.unlock_user(op[1])
    except ReproError:
        pass


def run_reference(ops: list[tuple]) -> ActiveRBACEngine:
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    for op in ops:
        apply_op(engine, op)
    return engine


def probe_matrix(engine: ActiveRBACEngine,
                 ops: list[tuple]) -> dict[tuple, str]:
    """check_access answers over every scripted session x permission
    (the B3 kernel shape); exceptions are part of the answer."""
    sids = sorted({op[1] for op in ops if op[0] == "session"} | {"s_0"})
    matrix = {}
    for sid in sids:
        for operation, obj in PROBES:
            try:
                matrix[(sid, operation, obj)] = str(
                    engine.check_access(sid, operation, obj))
            except ReproError as exc:
                matrix[(sid, operation, obj)] = type(exc).__name__
    return matrix


def fingerprint(engine: ActiveRBACEngine) -> tuple:
    return (
        {sid: (s.user, tuple(sorted(s.active_roles)))
         for sid, s in engine.model.sessions.items()},
        {name: role.enabled
         for name, role in engine.model.roles.items()},
        sorted(engine.locked_users),
        engine.clock.now,
    )


def assert_invariants(engine: ActiveRBACEngine) -> None:
    """Safety properties that must hold in any recovered state."""
    for sid, session in engine.model.sessions.items():
        active = session.active_roles
        assert not ({"C", "D"} <= set(active)), \
            f"DSD violation in recovered session {sid}: {active}"
        for role in active:
            assert (sid, role) in engine.current_activation, \
                f"activation id lost for {sid}/{role}"


def crash_run(ops: list[tuple], directory: str, *,
              kill_at: int) -> tuple[ActiveRBACEngine, dict, int]:
    """Drive the script with a kill-point at the ``kill_at``-th WAL
    append; on crash, recover and re-run from the interrupted op.
    Returns (engine, recovery report, index of the interrupted op)."""
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    durability = Durability(engine, directory, batch_size=1)
    chaos = FaultInjector(seed=SEED, clock=engine.clock)
    chaos.arm("wal.append", error=SimulatedCrash, at=[kill_at])
    chaos.patch(wal_mod, "_write_line", "wal.append")
    crashed_at = None
    try:
        for index, op in enumerate(ops):
            try:
                apply_op(engine, op)
            except SimulatedCrash:
                crashed_at = index
                break
    finally:
        chaos.restore()
    assert crashed_at is not None, (
        f"kill-point never fired (only {chaos.calls('wal.append')} "
        f"appends); lower kill_at")
    # abandon the crashed process state: batch_size=1 keeps the file
    # buffer empty between appends, so closing loses nothing extra
    durability.wal._handle.close()

    revived, report = recover(directory)
    resumed = Durability(revived, directory, batch_size=1)
    try:
        for op in ops[crashed_at:]:
            apply_op(revived, op)
    finally:
        resumed.close()
    return revived, report, crashed_at


@pytest.mark.parametrize("kill_at", [2 + SEED % 9, 11 + SEED % 7, 23])
def test_recovery_matches_uncrashed_reference(tmp_path, kill_at):
    ops = build_ops(SEED)
    reference = run_reference(ops)
    revived, report, crashed_at = crash_run(
        ops, str(tmp_path), kill_at=kill_at)

    assert_invariants(revived)
    assert fingerprint(revived) == fingerprint(reference)
    assert probe_matrix(revived, ops) == probe_matrix(reference, ops)
    assert report["replayed"] + report["skipped"] == report["records"]
    # audit trail shows the recovery happened
    assert revived.audit.by_kind("wal.recover")


def test_counters_monotone_across_crash(tmp_path):
    ops = build_ops(SEED)
    revived, _, _ = crash_run(ops, str(tmp_path), kill_at=5)
    revived.unlock_user(USERS[0])  # the script may have locked them
    fresh = revived.create_session(USERS[0])
    assert fresh not in {op[1] for op in ops if op[0] == "session"}
    assert fresh not in revived.model.user_sessions(USERS[0]) or \
        revived.model.sessions[fresh].user == USERS[0]


def test_crash_mid_snapshot_replace_keeps_old_snapshot(tmp_path):
    """Kill between the durable tmp write and the rename: the previous
    snapshot + full WAL must still recover the complete state."""
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    durability = Durability(engine, str(tmp_path), batch_size=1)
    sid = engine.create_session("u1")
    engine.add_active_role(sid, "A")

    chaos = FaultInjector(seed=SEED, clock=engine.clock)
    chaos.arm("snapshot.replace", error=SimulatedCrash, at=[1])
    chaos.patch(persistence, "_replace", "snapshot.replace")
    try:
        with pytest.raises(SimulatedCrash):
            durability.checkpoint()
    finally:
        chaos.restore()
    durability.wal._handle.close()

    revived, report = recover(str(tmp_path))
    assert report["replayed"] > 0  # the WAL still covered everything
    assert revived.model.session_roles(sid) == {"A"}
    assert revived.check_access(sid, "read", "doc")


def test_crash_between_snapshot_and_rotation_skips_stale(tmp_path):
    """Kill after the new snapshot landed but before the WAL rotated:
    every surviving record is covered by the snapshot's LSN stamp and
    must be skipped, not replayed twice."""
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    durability = Durability(engine, str(tmp_path), batch_size=1)
    sid = engine.create_session("u1")
    engine.add_active_role(sid, "A")

    chaos = FaultInjector(seed=SEED, clock=engine.clock)
    chaos.arm("wal.rotate", error=SimulatedCrash, at=[1])
    chaos.patch(durability.wal, "rotate", "wal.rotate")
    try:
        with pytest.raises(SimulatedCrash):
            durability.checkpoint()
    finally:
        chaos.restore()
    durability.wal._handle.close()

    revived, report = recover(str(tmp_path))
    assert report["replayed"] == 0 and report["skipped"] > 0
    assert revived.model.session_roles(sid) == {"A"}


def test_quarantine_survives_crash(tmp_path):
    """A rule quarantined before the crash must still be quarantined
    (disabled, tagged) in the recovered engine — a crash must never
    silently re-arm a circuit breaker."""
    ops = build_ops(SEED, steps=20)
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    durability = Durability(engine, str(tmp_path), batch_size=1)
    victim = sorted(rule.name for rule in engine.rules)[SEED % 5]
    engine.rules.quarantine(victim, reason="chaos")

    chaos = FaultInjector(seed=SEED, clock=engine.clock)
    chaos.arm("wal.append", error=SimulatedCrash, at=[8])
    chaos.patch(wal_mod, "_write_line", "wal.append")
    try:
        for op in ops:
            try:
                apply_op(engine, op)
            except SimulatedCrash:
                break
    finally:
        chaos.restore()
    durability.wal._handle.close()

    revived, _ = recover(str(tmp_path))
    rule = revived.rules.get(victim)
    assert rule.quarantined and not rule.enabled
    assert revived.rules.summary()["quarantined"] >= 1


def test_torn_tail_across_crash_is_truncated(tmp_path):
    """A partial final record (the crash landed mid-write) is detected
    by CRC, truncated, and never replayed."""
    engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
    durability = Durability(engine, str(tmp_path), batch_size=1)
    sid = engine.create_session("u1")
    engine.add_active_role(sid, "A")
    durability.wal._handle.close()
    # the crash tore the last record in half
    with open(durability.wal_path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        handle.truncate(handle.tell() - 7)

    revived, report = recover(str(tmp_path))
    assert report["torn"] and report["dropped_bytes"] > 0
    # the torn activation record is gone; the session before it survived
    assert sid in revived.model.sessions
    assert "A" not in revived.model.session_roles(sid)
    assert_invariants(revived)
    # and a second recovery finds a clean (repaired) log
    _, report2 = recover(str(tmp_path))
    assert not report2["torn"]
