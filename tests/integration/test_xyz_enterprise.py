"""Integration: enterprise XYZ (paper §5, Figure 1) end to end."""

import pytest

from repro.errors import ActivationDenied, SsdViolationError
from repro.policy.graph import PolicyGraph


class TestXyzStructure:
    def test_policy_parses_to_figure_one_graph(self, xyz_spec):
        graph = PolicyGraph(xyz_spec)
        assert set(graph.nodes) == {"Clerk", "PC", "PM", "AC", "AM"}
        assert graph.node("PC").subscribers == ["PM"]
        assert graph.node("PC").ssd_partners == ["AC"]
        assert graph.node("PM").flags.get("static_sod_inherited")

    def test_rule_pool_generated_per_role_properties(self, xyz_engine):
        # every XYZ role takes part in a hierarchy -> AAR2 everywhere
        for role in ("Clerk", "PC", "PM", "AC", "AM"):
            assert f"AAR2.{role}" in xyz_engine.rules
        assert len(xyz_engine.rules) == 5 * 5 + 5  # role suites + global


class TestXyzSsdSemantics:
    def test_pm_user_cannot_gain_am_or_ac(self, xyz_engine):
        """'a user assigned to the role PM cannot be assigned to the
        roles AM or AC' (via inherited SSD from PC)."""
        with pytest.raises(SsdViolationError):
            xyz_engine.assign_user("bob", "AC")
        with pytest.raises(SsdViolationError):
            xyz_engine.assign_user("bob", "AM")

    def test_ac_user_cannot_gain_pm_or_pc(self, xyz_engine):
        with pytest.raises(SsdViolationError):
            xyz_engine.assign_user("carol", "PC")
        with pytest.raises(SsdViolationError):
            xyz_engine.assign_user("carol", "PM")

    def test_clerk_user_may_join_either_side(self, xyz_engine):
        xyz_engine.assign_user("dave", "PC")  # clerk + PC is fine
        assert xyz_engine.model.is_assigned("dave", "PC")


class TestXyzOperations:
    def test_purchase_flow(self, xyz_engine):
        sid = xyz_engine.create_session("bob")
        xyz_engine.add_active_role(sid, "PM")
        # PM inherits PC's create and Clerk's read
        assert xyz_engine.check_access(sid, "create", "purchase_order")
        assert xyz_engine.check_access(sid, "read", "ledger")
        # but never AC's approve
        assert not xyz_engine.check_access(sid, "approve",
                                           "purchase_order")

    def test_approval_flow(self, xyz_engine):
        sid = xyz_engine.create_session("carol")
        xyz_engine.add_active_role(sid, "AC")
        assert xyz_engine.check_access(sid, "approve", "purchase_order")
        assert not xyz_engine.check_access(sid, "create",
                                           "purchase_order")

    def test_clerk_scope(self, xyz_engine):
        sid = xyz_engine.create_session("dave")
        xyz_engine.add_active_role(sid, "Clerk")
        assert xyz_engine.check_access(sid, "read", "ledger")
        assert not xyz_engine.check_access(sid, "create",
                                           "purchase_order")

    def test_bob_can_activate_junior_roles(self, xyz_engine):
        sid = xyz_engine.create_session("bob")
        xyz_engine.add_active_role(sid, "PC")
        xyz_engine.add_active_role(sid, "Clerk")
        assert xyz_engine.model.session_roles(sid) == {"PC", "Clerk"}

    def test_carol_cannot_activate_purchase_roles(self, xyz_engine):
        sid = xyz_engine.create_session("carol")
        for role in ("PC", "PM"):
            with pytest.raises(ActivationDenied):
                xyz_engine.add_active_role(sid, role)

    def test_audit_trail_captures_decisions(self, xyz_engine):
        sid = xyz_engine.create_session("bob")
        xyz_engine.add_active_role(sid, "PM")
        xyz_engine.check_access(sid, "create", "purchase_order")
        xyz_engine.check_access(sid, "approve", "purchase_order")
        assert len(xyz_engine.audit.by_kind("decision.allow")) == 1
        assert len(xyz_engine.audit.by_kind("decision.deny")) == 1

    def test_differential_against_direct_baseline(self, xyz_engine,
                                                  xyz_direct):
        """Spot-check: both engines agree on a scripted scenario."""
        for engine in (xyz_engine, xyz_direct):
            sid = engine.create_session("bob", session_id="s-bob")
            engine.add_active_role(sid, "PM")
        for operation, obj in (("create", "purchase_order"),
                               ("approve", "purchase_order"),
                               ("read", "ledger")):
            assert (xyz_engine.check_access("s-bob", operation, obj)
                    == xyz_direct.check_access("s-bob", operation, obj))
