"""Integration: failure injection — misbehaving rules and actions.

Active systems must stay consistent when a rule's action throws, when
cascades collide, or when administrators inject broken rules next to
the generated pool.  These tests inject faults and assert the engine
*fails closed*: an unexpected exception in an enforcement-class rule
becomes a typed :class:`~repro.errors.RuleExecutionError` deny (never
a raw ``ZeroDivisionError`` escaping to the caller), repeated faults
quarantine the rule, and the engine keeps serving afterwards.
"""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.containment import FailurePolicy
from repro.errors import (
    AccessDenied,
    ReproError,
    RuleCascadeError,
    RuleExecutionError,
)
from repro.rules.rule import Action, Condition, OWTERule, RuleClass

POLICY = """
policy chaos {
  role A; role B;
  user bob;
  assign bob to A; assign bob to B;
  permission read on doc;
  grant read on doc to A;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestThrowingActions:
    def test_injected_fault_becomes_typed_deny(self, engine):
        """Fail-closed: the raw ZeroDivisionError is wrapped in a
        RuleExecutionError (an AccessDenied) instead of escaping."""
        engine.rules.add(OWTERule(
            name="Chaos", event="addActiveRole.A", priority=100,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        with pytest.raises(RuleExecutionError) as excinfo:
            engine.add_active_role(sid, "A")
        assert isinstance(excinfo.value, AccessDenied)
        assert excinfo.value.rule == "Chaos"
        assert excinfo.value.clause == "then"
        assert isinstance(excinfo.value.original, ZeroDivisionError)
        # the fault is audited with clause attribution
        faults = engine.audit.by_kind("rule.fault")
        assert faults and faults[-1].detail["rule"] == "Chaos"
        # the activation never committed (chaos fired before AAR)
        assert "A" not in engine.model.session_roles(sid)
        # the engine keeps working once the bad rule is removed
        engine.rules.remove("Chaos")
        engine.add_active_role(sid, "A")
        assert "A" in engine.model.session_roles(sid)

    def test_repeated_faults_quarantine_then_engine_recovers(self, engine):
        """After N consecutive faults the breaker quarantines the rule;
        cascade depth unwinds each time, and once quarantined the
        engine serves the operation again without manual cleanup."""
        threshold = engine.rules.failure_policy.quarantine_threshold
        engine.rules.add(OWTERule(
            name="Chaos", event="addActiveRole.B", priority=100,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        for _ in range(threshold):
            with pytest.raises(RuleExecutionError):
                engine.add_active_role(sid, "B")
        assert engine.rules.get("Chaos").quarantined
        assert engine.audit.by_kind("rule.quarantine")
        assert engine.health()["status"] == "degraded"
        # quarantined rule no longer fires: the operation succeeds
        engine.add_active_role(sid, "B")
        assert "B" in engine.model.session_roles(sid)
        # manual re-arm restores the chaos rule (and the denials)
        assert engine.rules.rearm("Chaos")
        engine.drop_active_role(sid, "B")
        with pytest.raises(RuleExecutionError):
            engine.add_active_role(sid, "B")

    def test_condition_exception_denies_and_counts_as_error(self, engine):
        log = []
        engine.rules.observe(
            lambda rule, occurrence, outcome, error:
            log.append((rule.name, outcome.value)))
        engine.rules.add(OWTERule(
            name="BadCond", event="checkAccess", priority=100,
            conditions=[Condition("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        log.clear()
        # fail closed: the faulting W clause denies the check
        assert engine.check_access(sid, "read", "doc") is False
        assert ("BadCond", "error") in log
        with pytest.raises(RuleExecutionError) as excinfo:
            engine.require_access(sid, "read", "doc")
        assert excinfo.value.clause == "when"

    def test_fail_open_class_contains_and_continues(self, engine):
        """An active-security rule fault is contained: later rules on
        the same event still fire and the request is not denied."""
        engine.rules.add(OWTERule(
            name="BrokenMonitor", event="checkAccess", priority=100,
            classification=RuleClass.ACTIVE_SECURITY,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        assert engine.check_access(sid, "read", "doc") is True
        assert engine.rules.get("BrokenMonitor").fault_count == 1

    def test_advisory_tag_forces_fail_open(self, engine):
        engine.rules.add(OWTERule(
            name="AdvisoryChaos", event="checkAccess", priority=100,
            tags={"advisory": "1"},
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")
        assert engine.check_access(sid, "read", "doc") is True

    def test_raw_mode_restores_seed_behaviour(self, engine):
        """containment=False is the benchmark escape hatch: faults
        escape unwrapped, exactly the seed semantics."""
        engine.rules.containment = False
        engine.rules.add(OWTERule(
            name="Chaos", event="addActiveRole.A", priority=100,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        with pytest.raises(ZeroDivisionError):
            engine.add_active_role(sid, "A")


class TestTimedRearm:
    def test_quarantine_rearms_on_the_virtual_clock(self):
        engine = ActiveRBACEngine.from_policy(
            parse_policy(POLICY),
            failure_policy=FailurePolicy(quarantine_threshold=2,
                                         rearm_after=60.0))
        engine.rules.add(OWTERule(
            name="Flaky", event="addActiveRole.A", priority=100,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        for _ in range(2):
            with pytest.raises(RuleExecutionError):
                engine.add_active_role(sid, "A")
        assert engine.rules.get("Flaky").quarantined
        engine.advance_time(61.0)
        rule = engine.rules.get("Flaky")
        assert not rule.quarantined and rule.enabled
        assert engine.audit.matching(mode="timed")

    def test_manual_rearm_cancels_stale_timer(self):
        """A timed re-arm armed for an old quarantine epoch must not
        re-enable a rule that was re-armed and re-quarantined since."""
        engine = ActiveRBACEngine.from_policy(
            parse_policy(POLICY),
            failure_policy=FailurePolicy(quarantine_threshold=1,
                                         rearm_after=60.0))
        engine.rules.add(OWTERule(
            name="Flaky", event="addActiveRole.A", priority=100,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        with pytest.raises(RuleExecutionError):
            engine.add_active_role(sid, "A")
        assert engine.rules.get("Flaky").quarantined
        engine.rules.rearm("Flaky")  # manual, at t=0
        with pytest.raises(RuleExecutionError):
            engine.add_active_role(sid, "A")  # re-quarantined (epoch 2)
        engine.advance_time(30.0)  # t=30: no timer due yet
        assert engine.rules.get("Flaky").quarantined
        engine.advance_time(31.0)  # t=61: epoch-2 timer re-arms it
        assert not engine.rules.get("Flaky").quarantined


class TestCascadeBombs:
    def test_self_cascading_rule_hits_depth_limit(self, engine):
        engine.detector.define_primitive("loop")
        engine.rules.add(OWTERule(
            name="Loop", event="loop",
            actions=[Action("again",
                            lambda ctx: ctx.raise_event("loop"))],
        ))
        with pytest.raises(RuleCascadeError):
            engine.detector.raise_event("loop")
        # normal operation unaffected afterwards
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")

    def test_mutual_cascade_detected_by_static_verifier(self, engine):
        from repro.synthesis.verify import verify_rule_pool
        engine.detector.define_primitive("ping")
        engine.detector.define_primitive("pong")
        engine.rules.add(OWTERule(
            name="Ping", event="ping", tags={"raises": "pong"},
            actions=[Action("pong", lambda ctx: ctx.raise_event("pong"))]))
        engine.rules.add(OWTERule(
            name="Pong", event="pong", tags={"raises": "ping"},
            actions=[Action("ping", lambda ctx: ctx.raise_event("ping"))]))
        findings = verify_rule_pool(engine)
        assert any(f.check == "cascade-cycle" for f in findings)


class TestSabotagedCommit:
    def test_commit_rule_replaced_with_noop_fails_closed(self, engine):
        """If an attacker replaces the commit rule with a no-op, the
        engine reports the activation as not committed instead of
        pretending success."""
        engine.rules.remove("CC.A")
        engine.rules.add(OWTERule(
            name="CC.A", event="addSessionRole.A",
            actions=[Action("do nothing", lambda ctx: None)],
            tags={"role:A": "1", "kind": "commit"},
        ))
        sid = engine.create_session("bob")
        from repro.errors import ActivationDenied
        with pytest.raises(ActivationDenied, match="not committed"):
            engine.add_active_role(sid, "A")

    def test_half_open_state_never_observable(self, engine):
        """A throwing THEN in the commit rule must not leave the model
        half-committed: the typed deny surfaces and the model record
        never landed."""
        engine.rules.remove("CC.A")

        def bad_commit(ctx):
            raise RuntimeError("disk full")

        engine.rules.add(OWTERule(
            name="CC.A", event="addSessionRole.A",
            actions=[Action("fail", bad_commit)],
            tags={"role:A": "1", "kind": "commit"},
        ))
        sid = engine.create_session("bob")
        with pytest.raises(RuleExecutionError) as excinfo:
            engine.add_active_role(sid, "A")
        assert isinstance(excinfo.value.original, RuntimeError)
        assert "A" not in engine.model.session_roles(sid)
        assert (sid, "A") not in engine.current_activation


class TestObserverFaults:
    def test_raising_observer_is_contained_and_rest_still_run(self, engine):
        seen = []

        def bad_observer(rule, occurrence, outcome, error):
            raise RuntimeError("observer exploded")

        engine.rules.observe(bad_observer)
        engine.rules.observe(
            lambda rule, occurrence, outcome, error:
            seen.append(rule.name))
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")  # must not raise
        assert "A" in engine.model.session_roles(sid)
        assert seen  # the later observer still ran
        assert engine.rules.observer_faults > 0
        assert engine.audit.by_kind("observer.fault")

    def test_observer_fault_does_not_corrupt_cascade_depth(self, engine):
        def bad_observer(rule, occurrence, outcome, error):
            raise RuntimeError("observer exploded")

        engine.rules.observe(bad_observer)
        sid = engine.create_session("bob")
        for _ in range(80):  # more than max_cascade_depth operations
            engine.check_access(sid, "read", "doc")
        engine.add_active_role(sid, "A")
        assert engine.check_access(sid, "read", "doc") is True


class TestTimerFaults:
    def test_denied_timer_action_is_audited_not_raised(self, engine):
        """A window-close disable vetoed by a rule is swallowed by
        safe_raise and audited."""
        engine.detector.define_primitive("nothing")

        def deny(ctx):
            raise ReproError("vetoed")

        engine.rules.add(OWTERule(
            name="Veto", event="disableRole.A", priority=100,
            actions=[Action("veto", deny)],
        ))
        engine.timers.schedule_after(
            10.0, lambda: engine.safe_raise("disableRole.A", role="A"))
        engine.advance_time(11.0)  # must not raise
        assert engine.audit.by_kind("timer.denied")
        assert engine.model.is_role_enabled("A")
