"""Integration: failure injection — misbehaving rules and actions.

Active systems must stay consistent when a rule's action throws, when
cascades collide, or when administrators inject broken rules next to
the generated pool.  These tests inject faults and assert the engine's
state stays coherent (no half-committed activations, counters intact).
"""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.errors import ReproError, RuleCascadeError
from repro.rules.rule import Action, Condition, OWTERule

POLICY = """
policy chaos {
  role A; role B;
  user bob;
  assign bob to A; assign bob to B;
  permission read on doc;
  grant read on doc to A;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestThrowingActions:
    def test_non_repro_exception_in_injected_rule_propagates(self, engine):
        engine.rules.add(OWTERule(
            name="Chaos", event="addActiveRole.A", priority=100,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        with pytest.raises(ZeroDivisionError):
            engine.add_active_role(sid, "A")
        # the activation never committed (chaos fired before AAR)
        assert "A" not in engine.model.session_roles(sid)
        # the engine keeps working once the bad rule is removed
        engine.rules.remove("Chaos")
        engine.add_active_role(sid, "A")
        assert "A" in engine.model.session_roles(sid)

    def test_observer_exception_does_not_corrupt_depth(self, engine):
        """Even when a rule errors, cascade depth unwinds, so later
        operations do not hit a phantom depth limit."""
        engine.rules.add(OWTERule(
            name="Chaos", event="addActiveRole.B", priority=100,
            actions=[Action("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        for _ in range(80):  # more than max_cascade_depth attempts
            with pytest.raises(ZeroDivisionError):
                engine.add_active_role(sid, "B")
        engine.rules.remove("Chaos")
        engine.add_active_role(sid, "B")

    def test_condition_exception_counts_as_error_not_else(self, engine):
        log = []
        engine.rules.observe(
            lambda rule, occurrence, outcome, error:
            log.append((rule.name, outcome.value)))
        engine.rules.add(OWTERule(
            name="BadCond", event="checkAccess", priority=100,
            conditions=[Condition("boom", lambda ctx: 1 / 0)],
        ))
        sid = engine.create_session("bob")
        log.clear()
        with pytest.raises(ZeroDivisionError):
            engine.check_access(sid, "read", "doc")
        assert ("BadCond", "error") in log


class TestCascadeBombs:
    def test_self_cascading_rule_hits_depth_limit(self, engine):
        engine.detector.define_primitive("loop")
        engine.rules.add(OWTERule(
            name="Loop", event="loop",
            actions=[Action("again",
                            lambda ctx: ctx.raise_event("loop"))],
        ))
        with pytest.raises(RuleCascadeError):
            engine.detector.raise_event("loop")
        # normal operation unaffected afterwards
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "A")

    def test_mutual_cascade_detected_by_static_verifier(self, engine):
        from repro.synthesis.verify import verify_rule_pool
        engine.detector.define_primitive("ping")
        engine.detector.define_primitive("pong")
        engine.rules.add(OWTERule(
            name="Ping", event="ping", tags={"raises": "pong"},
            actions=[Action("pong", lambda ctx: ctx.raise_event("pong"))]))
        engine.rules.add(OWTERule(
            name="Pong", event="pong", tags={"raises": "ping"},
            actions=[Action("ping", lambda ctx: ctx.raise_event("ping"))]))
        findings = verify_rule_pool(engine)
        assert any(f.check == "cascade-cycle" for f in findings)


class TestSabotagedCommit:
    def test_commit_rule_replaced_with_noop_fails_closed(self, engine):
        """If an attacker replaces the commit rule with a no-op, the
        engine reports the activation as not committed instead of
        pretending success."""
        engine.rules.remove("CC.A")
        engine.rules.add(OWTERule(
            name="CC.A", event="addSessionRole.A",
            actions=[Action("do nothing", lambda ctx: None)],
            tags={"role:A": "1", "kind": "commit"},
        ))
        sid = engine.create_session("bob")
        from repro.errors import ActivationDenied
        with pytest.raises(ActivationDenied, match="not committed"):
            engine.add_active_role(sid, "A")

    def test_half_open_state_never_observable(self, engine):
        """A throwing THEN in the commit rule must not leave the model
        half-committed: the model record is the last step."""
        engine.rules.remove("CC.A")

        def bad_commit(ctx):
            raise RuntimeError("disk full")

        engine.rules.add(OWTERule(
            name="CC.A", event="addSessionRole.A",
            actions=[Action("fail", bad_commit)],
            tags={"role:A": "1", "kind": "commit"},
        ))
        sid = engine.create_session("bob")
        with pytest.raises(RuntimeError):
            engine.add_active_role(sid, "A")
        assert "A" not in engine.model.session_roles(sid)
        assert (sid, "A") not in engine.current_activation


class TestTimerFaults:
    def test_denied_timer_action_is_audited_not_raised(self, engine):
        """A window-close disable vetoed by a rule is swallowed by
        safe_raise and audited."""
        engine.detector.define_primitive("nothing")

        def deny(ctx):
            raise ReproError("vetoed")

        engine.rules.add(OWTERule(
            name="Veto", event="disableRole.A", priority=100,
            actions=[Action("veto", deny)],
        ))
        engine.timers.schedule_after(
            10.0, lambda: engine.safe_raise("disableRole.A", role="A"))
        engine.advance_time(11.0)  # must not raise
        assert engine.audit.by_kind("timer.denied")
        assert engine.model.is_role_enabled("A")
