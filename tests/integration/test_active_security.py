"""Integration: the paper's active security loop end to end.

The §1 motivating example: repeated access requests for protected files
trip an internal security alert; critical authorization rules are
disabled and administrators alerted — all without human intervention.
"""

import pytest

from repro import ActiveRBACEngine, parse_policy

POLICY = """
policy fortress {
  role Analyst; role Admin;
  user alice; user mallory; user root;
  assign alice to Analyst;
  assign root to Admin;
  permission read on secret.dat;
  permission read on public.dat;
  grant read on secret.dat to Admin;
  grant read on public.dat to Analyst;
  threshold FileProbe event accessDenied group_by user count 3
            window 300 lock_user lockout 600;
  threshold GlobalFlood event accessDenied group_by global count 10
            window 60;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestPaperScenario:
    def test_probe_locks_the_prober_only(self, engine):
        alice_sid = engine.create_session("alice")
        engine.add_active_role(alice_sid, "Analyst")
        mallory_sid = engine.create_session("mallory")
        for _ in range(3):
            assert not engine.check_access(mallory_sid, "read",
                                           "secret.dat")
        assert "mallory" in engine.locked_users
        # legitimate traffic unaffected
        assert engine.check_access(alice_sid, "read", "public.dat")

    def test_lockout_expires_automatically(self, engine):
        sid = engine.create_session("mallory")
        for _ in range(3):
            engine.check_access(sid, "read", "secret.dat")
        assert "mallory" in engine.locked_users
        engine.advance_time(601)
        assert "mallory" not in engine.locked_users

    def test_alert_carries_reactions_and_notifies_admins(self, engine):
        alerts = []
        engine.monitor.notify_admins(alerts.append)
        sid = engine.create_session("mallory")
        for _ in range(3):
            engine.check_access(sid, "read", "secret.dat")
        assert len(alerts) == 1
        assert any("locked user 'mallory'" in reaction
                   for reaction in alerts[0].reactions)

    def test_report_generation_from_audit(self, engine):
        sid = engine.create_session("mallory")
        for _ in range(3):
            engine.check_access(sid, "read", "secret.dat")
        report = engine.audit.report()
        assert "security.alert: 1" in report
        assert "decision.deny" in report

    def test_alert_event_can_trigger_custom_rules(self, engine):
        """Administrators attach further OWTE rules to securityAlert."""
        from repro.rules.rule import Action, OWTERule
        escalations = []
        engine.rules.add(OWTERule(
            name="Escalate", event="securityAlert",
            actions=[Action("page the CISO",
                            lambda ctx: escalations.append(
                                ctx.get("policy")))],
        ))
        sid = engine.create_session("mallory")
        for _ in range(3):
            engine.check_access(sid, "read", "secret.dat")
        assert escalations == ["FileProbe"]

    def test_global_flood_threshold_independent(self, engine):
        # 10 denials across *different* users within 60s trips the
        # global policy (each user stays under their own threshold).
        for index in range(5):
            engine.add_user(f"probe{index}")
        sids = [engine.create_session(f"probe{index}")
                for index in range(5)]
        for wave in range(2):
            for sid in sids:
                engine.check_access(sid, "read", "secret.dat")
        flood_alerts = [a for a in engine.monitor.alerts
                        if a.policy == "GlobalFlood"]
        assert len(flood_alerts) == 1


class TestCountermeasureInteractions:
    def test_locked_user_sessions_fail_closed_midstream(self, engine):
        """A user locked while holding a session loses access at the
        next request — constraints 'hold TRUE until deactivation'."""
        sid = engine.create_session("alice")
        engine.add_active_role(sid, "Analyst")
        assert engine.check_access(sid, "read", "public.dat")
        # alice probes the secret file herself
        for _ in range(3):
            engine.check_access(sid, "read", "secret.dat")
        assert "alice" in engine.locked_users
        assert not engine.check_access(sid, "read", "public.dat")

    def test_denial_streams_are_per_policy_event(self, engine):
        """activationDenied events do not count toward accessDenied
        thresholds."""
        from repro.errors import ActivationDenied
        sid = engine.create_session("mallory")
        for _ in range(5):
            with pytest.raises(ActivationDenied):
                engine.add_active_role(sid, "Admin")
        assert engine.monitor.alerts == []
