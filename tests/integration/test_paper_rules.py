"""Integration tests: the paper's worked Rules 1-9, scenario for scenario.

Each test class reproduces one numbered rule from the paper with the
exact behaviour its prose describes (allow / deny / force-close /
cascade), running end-to-end through the active engine or, for Rules 1-2
which predate the RBAC mapping, through the raw event/rule substrate.
"""

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.clock import TimerService, VirtualClock
from repro.errors import (
    AccessDenied,
    ActivationDenied,
    CardinalityExceeded,
    DeactivationDenied,
    OperationDenied,
    PrerequisiteNotMetError,
)
from repro.events import EventDetector
from repro.rules import RuleManager
from repro.rules.rule import Action, Condition, OWTERule


class TestRule1SimpleEvent:
    """Rule 1: Bob opens patient.dat with vi; checkaccess gates it."""

    def setup_method(self):
        self.detector = EventDetector(TimerService(VirtualClock()))
        self.manager = RuleManager(self.detector)
        self.detector.define_primitive("vi")
        self.opened = []
        self.allowed_users = {"Bob"}

        def checkaccess(ctx):
            return (ctx.get("user") in self.allowed_users
                    and ctx.get("file") == "patient.dat")

        def open_file(ctx):
            self.opened.append((ctx.get("user"), ctx.get("file")))

        def deny(ctx):
            raise AccessDenied("insufficient privileges")

        self.manager.add(OWTERule(
            name="R_1", event="vi",
            conditions=[Condition(
                "checkaccess(Bob, patient.dat) IS TRUE", checkaccess)],
            actions=[Action("allow opening patient.dat", open_file)],
            alt_actions=[Action(
                'raise error "insufficient privileges"', deny)],
        ))

    def test_authorized_open_allowed(self):
        self.detector.raise_event("vi", user="Bob", file="patient.dat")
        assert self.opened == [("Bob", "patient.dat")]

    def test_unauthorized_open_denied(self):
        with pytest.raises(AccessDenied, match="insufficient privileges"):
            self.detector.raise_event("vi", user="Mallory",
                                      file="patient.dat")
        assert self.opened == []


class TestRule2PlusEvent:
    """Rule 2: force-close patient.dat 2 hours after Bob opened it."""

    def setup_method(self):
        self.detector = EventDetector(TimerService(VirtualClock()))
        self.manager = RuleManager(self.detector)
        self.detector.define_primitive("E1")  # Bob -> vi(patient.dat)
        self.detector.define_plus("E2", "E1", 2 * 3600)
        self.closed = []
        self.manager.add(OWTERule(
            name="C_1", event="E2",
            actions=[Action("Closefile",
                            lambda ctx: self.closed.append(
                                ctx.get("file")))],
        ))

    def test_file_closed_exactly_after_two_hours(self):
        self.detector.raise_event("E1", user="Bob", file="patient.dat")
        self.detector.advance_time(2 * 3600 - 1)
        assert self.closed == []
        self.detector.advance_time(1)
        assert self.closed == ["patient.dat"]


@pytest.fixture
def rule3_engine():
    return ActiveRBACEngine.from_policy(parse_policy("""
    policy rule3 {
      role R1; role Senior; role Partner;
      user alice; user mallory; user hier; user dyn;
      hierarchy Senior > R1;
      assign alice to R1;
      assign hier to Senior;
      assign dyn to R1;
      assign dyn to Partner;
      dsd pair roles R1, Partner;
    }
    """))


class TestRule3AddActiveRole:
    """Rule 3 / AAR1-AAR4: activate R1 with the property-matched rule."""

    def test_assigned_user_activates(self, rule3_engine):
        sid = rule3_engine.create_session("alice")
        rule3_engine.add_active_role(sid, "R1")
        assert "R1" in rule3_engine.model.session_roles(sid)

    def test_unassigned_user_denied(self, rule3_engine):
        sid = rule3_engine.create_session("mallory")
        with pytest.raises(ActivationDenied):
            rule3_engine.add_active_role(sid, "R1")

    def test_senior_assignment_authorizes_junior(self, rule3_engine):
        """AAR2: checkAuthorization allows activating R1 when assigned
        to its senior role."""
        sid = rule3_engine.create_session("hier")
        rule3_engine.add_active_role(sid, "R1")
        assert "R1" in rule3_engine.model.session_roles(sid)

    def test_double_activation_denied(self, rule3_engine):
        sid = rule3_engine.create_session("alice")
        rule3_engine.add_active_role(sid, "R1")
        with pytest.raises(ActivationDenied):
            rule3_engine.add_active_role(sid, "R1")

    def test_dynamic_sod_denies_second_exclusive_role(self, rule3_engine):
        """AAR3/AAR4: checkDynamicSoDSet."""
        sid = rule3_engine.create_session("dyn")
        rule3_engine.add_active_role(sid, "R1")
        from repro.errors import DsdViolationError
        with pytest.raises(DsdViolationError):
            rule3_engine.add_active_role(sid, "Partner")

    def test_wrong_session_owner_denied(self, rule3_engine):
        rule3_engine.create_session("alice", session_id="owned")
        # raising the activation event with a mismatched user parameter
        # (the paper's sessionId IN checkUserSessions(user) condition)
        with pytest.raises(ActivationDenied):
            rule3_engine.detector.raise_event(
                "addActiveRole.R1", user="mallory", sessionId="owned",
                role="R1", activationId=999)


class TestRule4Cardinality:
    """Rule 4 / CC1: at most five users active in R1 at a time."""

    @pytest.fixture
    def engine(self):
        return ActiveRBACEngine.from_policy(parse_policy("""
        policy rule4 {
          role R1 max_active_users 5;
          user u0; user u1; user u2; user u3; user u4; user u5;
          assign u0 to R1; assign u1 to R1; assign u2 to R1;
          assign u3 to R1; assign u4 to R1; assign u5 to R1;
        }
        """))

    def test_sixth_user_denied(self, engine):
        sessions = {}
        for i in range(5):
            sessions[i] = engine.create_session(f"u{i}")
            engine.add_active_role(sessions[i], "R1")
        sixth = engine.create_session("u5")
        with pytest.raises(CardinalityExceeded,
                           match="Maximum Number of Roles Reached"):
            engine.add_active_role(sixth, "R1")

    def test_deactivation_frees_a_slot(self, engine):
        """'CardinalityR1' with DECR: dropping one admits a new user."""
        sessions = {}
        for i in range(5):
            sessions[i] = engine.create_session(f"u{i}")
            engine.add_active_role(sessions[i], "R1")
        engine.drop_active_role(sessions[0], "R1")
        sixth = engine.create_session("u5")
        engine.add_active_role(sixth, "R1")  # admitted now
        assert engine.model.active_user_count("R1") == 5

    def test_same_user_two_sessions_counts_once(self, engine):
        first = engine.create_session("u0")
        second = engine.create_session("u0")
        engine.add_active_role(first, "R1")
        engine.add_active_role(second, "R1")
        assert engine.model.active_user_count("R1") == 1


class TestRule5CheckAccess:
    """Rule 5 / CA1: allow iff some active role holds the permission."""

    @pytest.fixture
    def engine(self):
        return ActiveRBACEngine.from_policy(parse_policy("""
        policy rule5 {
          role Reader; role Writer;
          user bob;
          assign bob to Reader;
          assign bob to Writer;
          permission read on file.dat;
          permission write on file.dat;
          grant read on file.dat to Reader;
          grant write on file.dat to Writer;
        }
        """))

    def test_active_role_grants(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Reader")
        assert engine.check_access(sid, "read", "file.dat")

    def test_assigned_but_inactive_role_does_not_grant(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Reader")
        assert not engine.check_access(sid, "write", "file.dat")

    def test_unknown_operation_or_object_denied(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Reader")
        assert not engine.check_access(sid, "execute", "file.dat")
        assert not engine.check_access(sid, "read", "ghost.dat")

    def test_unknown_session_denied(self, engine):
        assert not engine.check_access("ghost", "read", "file.dat")

    def test_require_access_raises_permission_denied(self, engine):
        sid = engine.create_session("bob")
        with pytest.raises(OperationDenied, match="Permission Denied"):
            engine.require_access(sid, "read", "file.dat")


class TestRule6DisablingTimeSoD:
    """Rule 6 / TSOD1: Nurse and Doctor cannot both be disabled within
    10:00-17:00."""

    @pytest.fixture
    def engine(self):
        return ActiveRBACEngine.from_policy(parse_policy("""
        policy rule6 {
          role Nurse; role Doctor;
          disabling_sod Coverage roles Nurse, Doctor daily 10:00 to 17:00;
        }
        """))

    def test_second_disable_denied_inside_interval(self, engine):
        engine.advance_time(12 * 3600)  # noon
        engine.disable_role("Doctor")
        with pytest.raises(
                DeactivationDenied,
                match="Denied as partner role Already Disabled"):
            engine.disable_role("Nurse")
        assert engine.model.is_role_enabled("Nurse")

    def test_both_disable_fine_outside_interval(self, engine):
        engine.advance_time(20 * 3600)  # 20:00, outside (I, P)
        engine.disable_role("Doctor")
        engine.disable_role("Nurse")
        assert not engine.model.is_role_enabled("Nurse")
        assert not engine.model.is_role_enabled("Doctor")

    def test_reenabling_partner_unblocks(self, engine):
        engine.advance_time(12 * 3600)
        engine.disable_role("Doctor")
        engine.enable_role("Doctor")
        engine.disable_role("Nurse")  # Doctor is back: allowed
        assert not engine.model.is_role_enabled("Nurse")


class TestRule7DurationDeactivation:
    """Rule 7 / AAR5+TSOD2: deactivate Bob's R3 after duration delta."""

    @pytest.fixture
    def engine(self):
        return ActiveRBACEngine.from_policy(parse_policy("""
        policy rule7 {
          role R3;
          user bob; user carol;
          assign bob to R3; assign carol to R3;
          duration R3 3600 for bob;
        }
        """))

    def test_bob_deactivated_after_delta(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "R3")
        engine.advance_time(3599)
        assert "R3" in engine.model.session_roles(sid)
        engine.advance_time(1)
        assert "R3" not in engine.model.session_roles(sid)

    def test_constraint_is_per_user(self, engine):
        """Rule 7 restricts duration 'on a per user-role basis'."""
        sid = engine.create_session("carol")
        engine.add_active_role(sid, "R3")
        engine.advance_time(10 * 3600)
        assert "R3" in engine.model.session_roles(sid)

    def test_early_deactivation_cancels_countdown(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "R3")
        engine.advance_time(1000)
        engine.drop_active_role(sid, "R3")
        engine.add_active_role(sid, "R3")  # re-activate: fresh countdown
        engine.advance_time(2600)  # old timer would fire at 3600 total
        assert "R3" in engine.model.session_roles(sid)
        engine.advance_time(1000)  # new countdown expires at 4600
        assert "R3" not in engine.model.session_roles(sid)

    def test_plus_event_only_starts_after_activation(self, engine):
        """Paper: 'event ET5 cannot be used to start the PLUS event ET7
        as ET7 should be started only after the role R3 is activated' —
        a *denied* activation must not arm the countdown."""
        sid = engine.create_session("bob")
        engine.model.set_role_enabled("R3", False)
        with pytest.raises(ActivationDenied):
            engine.add_active_role(sid, "R3")
        engine.model.set_role_enabled("R3", True)
        engine.add_active_role(sid, "R3")
        engine.advance_time(1800)
        assert "R3" in engine.model.session_roles(sid)  # only one timer
        engine.advance_time(1800)
        assert "R3" not in engine.model.session_roles(sid)


class TestRule8PostConditionCfd:
    """Rule 8 / CFD1+CFD2: enabling SysAdmin must also enable SysAudit,
    atomically."""

    @pytest.fixture
    def engine(self):
        engine = ActiveRBACEngine.from_policy(parse_policy("""
        policy rule8 {
          role SysAdmin; role SysAudit;
          require SysAudit when enabling SysAdmin;
        }
        """))
        engine.model.set_role_enabled("SysAdmin", False)
        engine.model.set_role_enabled("SysAudit", False)
        return engine

    def test_enabling_trigger_enables_partner(self, engine):
        engine.enable_role("SysAdmin")
        assert engine.model.is_role_enabled("SysAdmin")
        assert engine.model.is_role_enabled("SysAudit")

    def test_partner_failure_rolls_back_trigger(self, engine):
        # sabotage the partner's enable rule (active security would do
        # this): SysAudit can no longer be enabled
        engine.rules.disable("ER.SysAudit")
        with pytest.raises(ActivationDenied, match="Cannot Activate"):
            engine.enable_role("SysAdmin")
        assert not engine.model.is_role_enabled("SysAdmin")
        assert not engine.model.is_role_enabled("SysAudit")

    def test_partner_alone_can_be_enabled(self, engine):
        engine.enable_role("SysAudit")
        assert engine.model.is_role_enabled("SysAudit")
        assert not engine.model.is_role_enabled("SysAdmin")


class TestRule9TransactionActivation:
    """Rule 9 / ASEC1-3: JuniorEmp active only while Manager is."""

    @pytest.fixture
    def engine(self):
        return ActiveRBACEngine.from_policy(parse_policy("""
        policy rule9 {
          role Manager; role JuniorEmp;
          user boss; user kid; user kid2;
          assign boss to Manager;
          assign kid to JuniorEmp;
          assign kid2 to JuniorEmp;
          transaction JuniorEmp during Manager;
        }
        """))

    def test_junior_denied_before_manager_activates(self, engine):
        sid = engine.create_session("kid")
        with pytest.raises(PrerequisiteNotMetError,
                           match="anchor role not activated"):
            engine.add_active_role(sid, "JuniorEmp")

    def test_junior_allowed_inside_manager_window(self, engine):
        boss_sid = engine.create_session("boss")
        engine.add_active_role(boss_sid, "Manager")
        kid_sid = engine.create_session("kid")
        engine.add_active_role(kid_sid, "JuniorEmp")
        assert "JuniorEmp" in engine.model.session_roles(kid_sid)

    def test_manager_deactivation_cascades(self, engine):
        """'if the role Manager is deactivated, then role JuniorEmp
        should also be deactivated'."""
        boss_sid = engine.create_session("boss")
        engine.add_active_role(boss_sid, "Manager")
        kid_sid = engine.create_session("kid")
        kid2_sid = engine.create_session("kid2")
        engine.add_active_role(kid_sid, "JuniorEmp")
        engine.add_active_role(kid2_sid, "JuniorEmp")
        engine.drop_active_role(boss_sid, "Manager")
        assert "JuniorEmp" not in engine.model.session_roles(kid_sid)
        assert "JuniorEmp" not in engine.model.session_roles(kid2_sid)

    def test_window_reopens_on_reactivation(self, engine):
        boss_sid = engine.create_session("boss")
        engine.add_active_role(boss_sid, "Manager")
        engine.drop_active_role(boss_sid, "Manager")
        kid_sid = engine.create_session("kid")
        with pytest.raises(PrerequisiteNotMetError):
            engine.add_active_role(kid_sid, "JuniorEmp")
        engine.add_active_role(boss_sid, "Manager")
        engine.add_active_role(kid_sid, "JuniorEmp")
        assert "JuniorEmp" in engine.model.session_roles(kid_sid)

    def test_second_manager_keeps_window_open(self, engine):
        engine.add_user("boss2")
        engine.assign_user("boss2", "Manager")
        s1 = engine.create_session("boss")
        s2 = engine.create_session("boss2")
        engine.add_active_role(s1, "Manager")
        engine.add_active_role(s2, "Manager")
        kid_sid = engine.create_session("kid")
        engine.add_active_role(kid_sid, "JuniorEmp")
        engine.drop_active_role(s1, "Manager")
        # one manager still active: JuniorEmp survives
        assert "JuniorEmp" in engine.model.session_roles(kid_sid)
        engine.drop_active_role(s2, "Manager")
        assert "JuniorEmp" not in engine.model.session_roles(kid_sid)
