"""Integration: privacy-aware and context-aware enforcement flows."""

import pytest

from repro import ActiveRBACEngine, parse_policy

PRIVACY_POLICY = """
policy hospital {
  role Doctor; role Marketer;
  user alice; user spammer;
  assign alice to Doctor;
  assign spammer to Marketer;
  permission read on patient.dat;
  permission read on brochure.txt;
  grant read on patient.dat to Doctor;
  grant read on patient.dat to Marketer;
  grant read on brochure.txt to Marketer;
  purpose healthcare;
  purpose treatment under healthcare;
  purpose emergency under treatment;
  purpose marketing;
  object_policy read on patient.dat for treatment obliges notify-patient;
}
"""


@pytest.fixture
def hospital():
    return ActiveRBACEngine.from_policy(parse_policy(PRIVACY_POLICY))


class TestPrivacyAwareAccess:
    def test_access_with_covered_purpose(self, hospital):
        sid = hospital.create_session("alice")
        hospital.add_active_role(sid, "Doctor")
        assert hospital.check_access(sid, "read", "patient.dat",
                                     purpose="treatment")
        assert hospital.check_access(sid, "read", "patient.dat",
                                     purpose="emergency")

    def test_access_without_purpose_denied_on_regulated_object(
            self, hospital):
        sid = hospital.create_session("alice")
        hospital.add_active_role(sid, "Doctor")
        assert not hospital.check_access(sid, "read", "patient.dat")

    def test_wrong_purpose_denied_despite_rbac_grant(self, hospital):
        """RBAC alone would allow the marketer (granted read on
        patient.dat); the object policy's purpose binding denies it."""
        sid = hospital.create_session("spammer")
        hospital.add_active_role(sid, "Marketer")
        assert not hospital.check_access(sid, "read", "patient.dat",
                                         purpose="marketing")

    def test_unregulated_object_ignores_purpose(self, hospital):
        sid = hospital.create_session("spammer")
        hospital.add_active_role(sid, "Marketer")
        assert hospital.check_access(sid, "read", "brochure.txt")
        assert hospital.check_access(sid, "read", "brochure.txt",
                                     purpose="marketing")

    def test_obligations_recorded_on_allow(self, hospital):
        sid = hospital.create_session("alice")
        hospital.add_active_role(sid, "Doctor")
        hospital.check_access(sid, "read", "patient.dat",
                              purpose="treatment")
        owed = hospital.audit.by_kind("obligation.owed")
        assert len(owed) == 1
        assert owed[0].detail["obligation"] == "notify-patient"

    def test_denied_purpose_leaves_no_obligation(self, hospital):
        sid = hospital.create_session("alice")
        hospital.add_active_role(sid, "Doctor")
        hospital.check_access(sid, "read", "patient.dat",
                              purpose="marketing")
        assert hospital.audit.by_kind("obligation.owed") == []


CONTEXT_POLICY = """
policy pervasive {
  role FieldAgent;
  user bob;
  assign bob to FieldAgent;
  permission read on protected.dat;
  grant read on protected.dat to FieldAgent;
  context FieldAgent requires network == "secure" for access;
  context FieldAgent requires location == "hq";
}
"""


@pytest.fixture
def pervasive():
    engine = ActiveRBACEngine.from_policy(parse_policy(CONTEXT_POLICY))
    return engine


class TestContextAwareEnforcement:
    def test_activation_requires_location(self, pervasive):
        from repro.errors import ActivationDenied
        sid = pervasive.create_session("bob")
        with pytest.raises(ActivationDenied):
            pervasive.add_active_role(sid, "FieldAgent")
        pervasive.context.set("location", "hq")
        pervasive.add_active_role(sid, "FieldAgent")
        assert "FieldAgent" in pervasive.model.session_roles(sid)

    def test_access_denied_on_insecure_network(self, pervasive):
        """Paper §3: 'when the user is in the insecure network then the
        protected file access should be denied'."""
        pervasive.context.set("location", "hq")
        sid = pervasive.create_session("bob")
        pervasive.add_active_role(sid, "FieldAgent")
        pervasive.context.set("network", "insecure")
        assert not pervasive.check_access(sid, "read", "protected.dat")
        pervasive.context.set("network", "secure")
        assert pervasive.check_access(sid, "read", "protected.dat")

    def test_external_events_drive_context(self, pervasive):
        """Sentinel's external monitoring module: sensor events update
        the context, flipping decisions without any API call."""
        pervasive.context.set("location", "hq")
        pervasive.context.set("network", "secure")
        sid = pervasive.create_session("bob")
        pervasive.add_active_role(sid, "FieldAgent")
        assert pervasive.check_access(sid, "read", "protected.dat")
        pervasive.detector.raise_event(
            "context.update", name="network", value="insecure")
        assert not pervasive.check_access(sid, "read", "protected.dat")
