"""Integration: the deterministic fault-injection (chaos) suite.

Runs seeded fault schedules against a live engine and asserts the
containment invariants end to end:

* an injected fault in any enforcement-rule clause yields a *typed*
  deny (never a raw ``ZeroDivisionError``) plus an audit record;
* repeated faults quarantine the rule and the engine keeps serving;
* a stalled clause ("hang", modelled as virtual-clock advance) trips
  the deadline budget and denies;
* persistence writes and federation lookups survive transient faults
  through bounded retry, and exhaust loudly;
* the same seed replays the identical schedule (the property that
  makes chaos findings debuggable).

The CI chaos job runs this module under several ``CHAOS_SEED`` values;
locally it defaults to seed 0.
"""

import os

import pytest

from repro import ActiveRBACEngine, parse_policy, persistence
from repro.containment import FailurePolicy
from repro.errors import (
    AccessDenied,
    ReproError,
    RetryExhausted,
    RuleExecutionError,
    TransientError,
)
from repro.federation import Federation, RoleMapping
from repro.testing.faults import FaultInjector

SEED = int(os.environ.get("CHAOS_SEED", "0"))

POLICY = """
policy chaos {
  role Analyst; role Auditor;
  user ana; user abe;
  assign ana to Analyst; assign abe to Auditor;
  permission read on ledger;
  grant read on ledger to Analyst;
  grant read on ledger to Auditor;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestSeededRuleChaos:
    def test_clause_faults_never_escape_raw(self, engine):
        """Drive many checks with a probabilistic fault schedule on the
        grant rule's THEN clause: every fault surfaces as False (typed
        deny inside), never as a raw exception; every fault is audited."""
        chaos = FaultInjector(seed=SEED, clock=engine.clock)
        victim = engine.rules.rules_for_event("checkAccess")[0]
        point = chaos.instrument_rule(victim, clause="then")
        chaos.arm(point, error=ZeroDivisionError, rate=0.3)
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        try:
            outcomes = []
            for _ in range(50):
                if engine.rules.get(victim.name).quarantined:
                    engine.rules.rearm(victim.name)
                outcomes.append(engine.check_access(sid, "read", "ledger"))
        finally:
            chaos.restore()
        fires = chaos.fires(point)
        assert fires > 0, "schedule never fired — chaos test is vacuous"
        assert outcomes.count(False) >= fires
        faults = engine.audit.by_kind("rule.fault")
        assert len(faults) == fires
        assert all(f.detail["error"] == "ZeroDivisionError" for f in faults)
        assert engine.rules.get(victim.name).fault_count == fires
        # fault-free operation afterwards
        assert engine.check_access(sid, "read", "ledger") is True

    def test_same_seed_replays_identical_schedule(self):
        def run(seed):
            engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
            chaos = FaultInjector(seed=seed, clock=engine.clock)
            victim = engine.rules.rules_for_event("checkAccess")[0]
            point = chaos.instrument_rule(victim, clause="then")
            chaos.arm(point, error=ZeroDivisionError, rate=0.25)
            sid = engine.create_session("ana")
            engine.add_active_role(sid, "Analyst")
            outcomes = []
            for _ in range(40):
                if engine.rules.get(victim.name).quarantined:
                    engine.rules.rearm(victim.name)
                outcomes.append(engine.check_access(sid, "read", "ledger"))
            return outcomes, chaos.fires(point)

        first = run(SEED)
        second = run(SEED)
        assert first == second
        different = run(SEED + 1)
        # a different seed gives a different schedule (not a hard
        # guarantee per-point, but 40 Bernoulli(0.25) draws colliding
        # across seeds would indicate a broken per-point stream)
        assert first != different or first[1] == 0

    def test_quarantine_trips_and_engine_keeps_serving(self, engine):
        threshold = engine.rules.failure_policy.quarantine_threshold
        chaos = FaultInjector(seed=SEED, clock=engine.clock)
        victim = engine.rules.rules_for_event("checkAccess")[0]
        point = chaos.instrument_rule(victim, clause="then")
        chaos.arm(point, error=ZeroDivisionError)  # every call faults
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        try:
            for _ in range(threshold):
                assert engine.check_access(sid, "read", "ledger") is False
            assert engine.rules.get(victim.name).quarantined
            assert engine.health()["status"] == "degraded"
            assert victim.name in engine.health()["quarantined"]
            # the pool degrades to deny-by-default for this check (the
            # granting rule is out) but the engine itself still serves
            assert engine.check_access(sid, "read", "ledger") is False
        finally:
            chaos.restore()
        engine.rules.rearm(victim.name)
        assert engine.check_access(sid, "read", "ledger") is True
        assert engine.health()["status"] == "ok"

    def test_when_clause_fault_attributed_to_when(self, engine):
        chaos = FaultInjector(seed=SEED, clock=engine.clock)
        victim = engine.rules.rules_for_event("checkAccess")[0]
        point = chaos.instrument_rule(victim, clause="when")
        chaos.arm(point, error=ZeroDivisionError, at=[1])
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        try:
            with pytest.raises(RuleExecutionError) as excinfo:
                engine.require_access(sid, "read", "ledger")
        finally:
            chaos.restore()
        assert excinfo.value.clause == "when"
        assert isinstance(excinfo.value, AccessDenied)


class TestStallsAndDeadlines:
    def test_stalled_clause_trips_virtual_deadline(self):
        engine = ActiveRBACEngine.from_policy(
            parse_policy(POLICY), check_deadline=5.0)
        chaos = FaultInjector(seed=SEED, clock=engine.clock)
        victim = engine.rules.rules_for_event("checkAccess")[0]
        point = chaos.instrument_rule(victim, clause="then")
        # a deterministic "hang": 30 simulated seconds pass inside the
        # clause, with no error raised
        chaos.arm(point, error=None, stall=30.0)
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        try:
            assert engine.check_access(sid, "read", "ledger") is False
        finally:
            chaos.restore()
        assert engine.audit.by_kind("deadline.exceeded")
        assert engine.health()["deadline_exceeded"] >= 1
        # fault-free checks still inside budget afterwards
        assert engine.check_access(sid, "read", "ledger") is True


class TestInfrastructureChaos:
    def test_persistence_survives_transient_write_faults(self, engine, tmp_path):
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        path = str(tmp_path / "snap.json")
        with FaultInjector(seed=SEED) as chaos:
            chaos.arm("persistence.write", error=TransientError, at=[1, 2])
            chaos.patch(persistence, "_write_payload", "persistence.write")
            persistence.save(engine, path, attempts=3)
        assert engine.health()["transient_retries"] == 2
        restored = persistence.load(path)
        assert restored.model.session_roles(sid) == {"Analyst"}

    def test_persistence_exhaustion_is_loud(self, engine, tmp_path):
        path = str(tmp_path / "snap.json")
        with FaultInjector(seed=SEED) as chaos:
            chaos.arm("persistence.write", error=TransientError)
            chaos.patch(persistence, "_write_payload", "persistence.write")
            with pytest.raises(RetryExhausted) as excinfo:
                persistence.save(engine, path, attempts=3)
        assert excinfo.value.attempts == 3
        assert not os.path.exists(path)

    def test_federation_lookup_retries_then_succeeds(self):
        home = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        host = ActiveRBACEngine.from_policy(parse_policy("""
        policy host {
          role Guest;
          permission read on lobby;
          grant read on lobby to Guest;
        }
        """))
        fed = Federation()
        fed.add_domain("home", home)
        fed.add_domain("host", host)
        fed.add_mapping(RoleMapping("home", "Analyst", "host", "Guest"))
        with FaultInjector(seed=SEED) as chaos:
            chaos.arm("federation.lookup", error=TransientError, at=[1])
            chaos.patch(fed, "_home_is_authorized", "federation.lookup")
            sid = fed.visit("home", "ana", "host")
        assert host.model.sessions[sid].user == "ana@home"
        assert home.health()["transient_retries"] >= 1

    def test_federation_outage_fails_closed(self):
        home = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        host = ActiveRBACEngine.from_policy(parse_policy("""
        policy host {
          role Guest;
          permission read on lobby;
          grant read on lobby to Guest;
        }
        """))
        fed = Federation()
        fed.add_domain("home", home)
        fed.add_domain("host", host)
        fed.add_mapping(RoleMapping("home", "Analyst", "host", "Guest"))
        with FaultInjector(seed=SEED) as chaos:
            chaos.arm("federation.lookup", error=TransientError)
            chaos.patch(fed, "_home_is_authorized", "federation.lookup")
            with pytest.raises(RetryExhausted):
                fed.visit("home", "ana", "host")
        # no guest principal was created on the failed path
        assert "ana@home" not in host.model.users


class TestMixedChaosStream:
    def test_engine_survives_multi_point_chaos(self, engine):
        """Arm several points at once and drive a mixed operation
        stream: nothing raw escapes, and the engine still enforces
        correctly after the chaos window closes."""
        chaos = FaultInjector(seed=SEED, clock=engine.clock)
        check_rules = engine.rules.rules_for_event("checkAccess")
        points = []
        for i, rule in enumerate(check_rules[:2]):
            clause = "then" if i % 2 == 0 else "when"
            point = chaos.instrument_rule(rule, clause=clause)
            chaos.arm(point, error=ZeroDivisionError, rate=0.2)
            points.append(point)
        sid = engine.create_session("ana")
        engine.add_active_role(sid, "Analyst")
        raw_escapes = 0
        try:
            for i in range(120):
                for rule in check_rules:
                    if engine.rules.get(rule.name).quarantined:
                        engine.rules.rearm(rule.name)
                try:
                    engine.check_access(sid, "read", "ledger")
                except ReproError:
                    pass  # typed errors are the contract
                except Exception:  # noqa: BLE001 — the assertion target
                    raw_escapes += 1
        finally:
            chaos.restore()
        assert raw_escapes == 0
        assert sum(chaos.fires(p) for p in points) > 0
        # post-chaos: enforcement intact, both grant and deny sides
        assert engine.check_access(sid, "read", "ledger") is True
        assert engine.check_access(sid, "write", "ledger") is False
