"""Integration: the direct (inline-check) baseline engine behaves like
the active engine across every constraint family."""

import pytest

from repro import DirectRBACEngine, parse_policy
from repro.errors import (
    ActivationDenied,
    CardinalityExceeded,
    DeactivationDenied,
    DsdViolationError,
    DuplicateEntityError,
    PrerequisiteNotMetError,
    SecurityLockout,
    SsdViolationError,
    UnknownRoleError,
    UnknownUserError,
)

POLICY = """
policy baseline {
  role PM; role PC; role Clerk; role AC;
  role Limited max_active_users 1;
  role Timed; role Nurse; role Doctor;
  role Manager; role JuniorEmp;
  user bob; user carol; user amy;
  hierarchy PM > PC > Clerk;
  ssd conflict roles PC, AC;
  dsd exclusive roles Manager, Nurse;
  permission create on po;
  grant create on po to PC;
  assign bob to PM;
  assign carol to AC;
  assign bob to Limited;
  assign carol to Limited;
  assign bob to Timed;
  assign bob to Manager;
  assign carol to JuniorEmp;
  assign bob to Nurse; assign bob to Doctor;
  prerequisite Doctor requires Nurse;
  transaction JuniorEmp during Manager;
  duration Timed 1000;
  disabling_sod cov roles Nurse, Doctor daily 10:00 to 17:00;
}
"""


@pytest.fixture
def engine():
    return DirectRBACEngine(parse_policy(POLICY))


class TestCoreBehaviour:
    def test_session_lifecycle(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "PM")
        assert engine.check_access(sid, "create", "po")
        engine.delete_session(sid)
        assert sid not in engine.model.sessions

    def test_errors_match_active_engine_types(self, engine):
        with pytest.raises(UnknownUserError):
            engine.create_session("ghost")
        engine.create_session("bob", session_id="x")
        with pytest.raises(DuplicateEntityError):
            engine.create_session("carol", session_id="x")
        with pytest.raises(UnknownRoleError):
            engine.add_active_role("x", "ghost")
        with pytest.raises(ActivationDenied):
            engine.add_active_role("x", "AC")  # bob not assigned AC
        with pytest.raises(DeactivationDenied):
            engine.drop_active_role("x", "PM")  # not active

    def test_hierarchy_authorization(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "PC")  # authorized via PM
        assert engine.check_access(sid, "create", "po")

    def test_ssd_on_assignment(self, engine):
        with pytest.raises(SsdViolationError):
            engine.assign_user("bob", "AC")  # bob authorized for PC

    def test_dsd_on_activation(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Nurse")
        with pytest.raises(DsdViolationError):
            engine.add_active_role(sid, "Manager")

    def test_cardinality(self, engine):
        s_bob = engine.create_session("bob")
        engine.add_active_role(s_bob, "Limited")
        s_carol = engine.create_session("carol")
        with pytest.raises(CardinalityExceeded):
            engine.add_active_role(s_carol, "Limited")

    def test_locked_user(self, engine):
        engine.locked_users.add("bob")
        with pytest.raises(SecurityLockout):
            engine.create_session("bob")


class TestTemporalBehaviour:
    def test_duration_expiry(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Timed")
        engine.advance_time(999)
        assert "Timed" in engine.model.session_roles(sid)
        engine.advance_time(1)
        assert "Timed" not in engine.model.session_roles(sid)

    def test_duration_guard_against_stale_timer(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Timed")
        engine.advance_time(500)
        engine.drop_active_role(sid, "Timed")
        engine.add_active_role(sid, "Timed")
        engine.advance_time(600)  # stale timer would fire at t=1000
        assert "Timed" in engine.model.session_roles(sid)

    def test_disabling_sod(self, engine):
        engine.advance_time(12 * 3600)
        engine.disable_role("Doctor")
        with pytest.raises(DeactivationDenied):
            engine.disable_role("Nurse")

    def test_enabling_window(self):
        engine = DirectRBACEngine(parse_policy("""
        policy windows {
          role Day; user u; assign u to Day;
          enable Day daily 08:00 to 16:00;
        }"""))
        sid = engine.create_session("u")
        with pytest.raises(ActivationDenied):
            engine.add_active_role(sid, "Day")  # midnight
        engine.advance_time(9 * 3600)
        engine.add_active_role(sid, "Day")
        engine.advance_time(8 * 3600)  # 17:00
        assert "Day" not in engine.model.session_roles(sid)


class TestCfdBehaviour:
    def test_prerequisite(self, engine):
        sid = engine.create_session("bob")
        with pytest.raises(PrerequisiteNotMetError):
            engine.add_active_role(sid, "Doctor")
        engine.add_active_role(sid, "Nurse")
        engine.add_active_role(sid, "Doctor")

    def test_transaction_window(self, engine):
        kid = engine.create_session("carol")
        with pytest.raises(PrerequisiteNotMetError):
            engine.add_active_role(kid, "JuniorEmp")
        boss = engine.create_session("bob")
        engine.add_active_role(boss, "Manager")
        engine.add_active_role(kid, "JuniorEmp")
        engine.drop_active_role(boss, "Manager")
        assert "JuniorEmp" not in engine.model.session_roles(kid)

    def test_post_condition(self):
        engine = DirectRBACEngine(parse_policy("""
        policy cfd { role SysAdmin; role SysAudit;
                     require SysAudit when enabling SysAdmin; }"""))
        engine.model.set_role_enabled("SysAdmin", False)
        engine.model.set_role_enabled("SysAudit", False)
        engine.enable_role("SysAdmin")
        assert engine.model.is_role_enabled("SysAudit")


class TestDenialLog:
    def test_denials_recorded(self, engine):
        sid = engine.create_session("carol")
        assert not engine.check_access(sid, "create", "po")
        with pytest.raises(ActivationDenied):
            engine.add_active_role(sid, "PM")
        kinds = [kind for _time, kind, _reason in engine.denials]
        assert kinds == ["access", "activation"]
