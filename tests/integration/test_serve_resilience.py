"""Integration: the service plane under overload, abuse and faults.

Boots real :class:`~repro.serve.http.ServeApp` instances on ephemeral
ports and attacks them over actual sockets: malformed frames and
truncated bodies (fail-closed 4xx, never a hang), admission-control
sheds with ``Retry-After``, per-request deadlines, bulkhead sheds,
the circuit-breaker trip -> degraded-mode -> half-open-probe recovery
arc, the in-process overload and network-chaos harnesses, and the
shutdown ordering contract (port file gone before the drain ends).
"""

import asyncio

import pytest

from repro import ActiveRBACEngine, parse_policy
from repro.errors import TransientError
from repro.serve import HttpClient, ServeApp, ShardRouter
from repro.serve.loadgen import run_chaos, run_overload
from repro.testing.faults import NetFaultPlan
from repro.workloads import ServiceOp

ALPHA = """
policy alpha {
  role Writer; role Reader;
  hierarchy Writer > Reader;
  user ada; user bob;
  assign ada to Writer;
  assign bob to Reader;
  permission edit on doc;
  permission view on doc;
  grant edit on doc to Writer;
  grant view on doc to Reader;
}
"""


def build_router():
    router = ShardRouter()
    router.add_shard(
        "alpha", ActiveRBACEngine.from_policy(parse_policy(ALPHA)))
    return router


def serve(scenario, **app_kwargs):
    """Boot the app on an ephemeral port, run ``scenario(app)``."""
    async def main():
        app = ServeApp(build_router(), **app_kwargs)
        await app.start("127.0.0.1", 0)
        try:
            return await scenario(app)
        finally:
            await app.shutdown()
    return asyncio.run(main())


async def raw_exchange(port, payload, timeout=5.0):
    """Write raw bytes, drain responses until the server closes the
    connection (its idle reaper bounds the wait); returns bytes."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    chunks = []

    async def drain_all():
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                return
            chunks.append(chunk)

    try:
        writer.write(payload)
        await writer.drain()
        try:
            await asyncio.wait_for(drain_all(), timeout)
        except (ConnectionError, OSError):
            pass
        return b"".join(chunks)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def healthz_ok(app):
    probe = HttpClient("127.0.0.1", app.port)
    try:
        status, _ = await probe.request("GET", "/healthz")
        return status == 200
    finally:
        await probe.close()


CHECK_BODY = (b'{"user": "ada", "operation": "edit", '
              b'"object": "doc"}')


def check_head(extra=b"", body=CHECK_BODY):
    return (b"POST /v1/check HTTP/1.1\r\nHost: t\r\n"
            b"Content-Type: application/json\r\n" + extra +
            b"Content-Length: %d\r\n\r\n" % len(body))


class TestMalformedInput:
    """Every abusive frame gets a fail-closed 4xx (or a reaped
    connection) and the server keeps serving afterwards."""

    KW = dict(request_timeout=0.3, max_head_bytes=1024,
              max_body_bytes=256)

    def attack(self, payload, timeout=5.0):
        async def scenario(app):
            response = await raw_exchange(app.port, payload, timeout)
            return response, await healthz_ok(app)
        return serve(scenario, **self.KW)

    def test_garbage_content_length_is_400_and_closes(self):
        response, alive = self.attack(
            check_head(b"") .replace(b"Content-Length: %d"
                                     % len(CHECK_BODY),
                                     b"Content-Length: banana")
            + CHECK_BODY)
        assert b"HTTP/1.1 400" in response
        assert b"Connection: close" in response
        assert alive

    def test_negative_content_length_is_400(self):
        payload = (b"POST /v1/check HTTP/1.1\r\nHost: t\r\n"
                   b"Content-Length: -5\r\n\r\n")
        response, alive = self.attack(payload)
        assert b"HTTP/1.1 400" in response
        assert alive

    def test_oversized_content_length_is_413(self):
        payload = (b"POST /v1/check HTTP/1.1\r\nHost: t\r\n"
                   b"Content-Length: 100000\r\n\r\n")
        response, alive = self.attack(payload)
        assert b"HTTP/1.1 413" in response
        assert b"Connection: close" in response
        assert alive

    def test_truncated_body_times_out_408(self):
        # claims 200 body bytes, sends 10, then waits: the read
        # timeout must reap it fail-closed, never block the loop
        payload = (b"POST /v1/check HTTP/1.1\r\nHost: t\r\n"
                   b"Content-Length: 200\r\n\r\n" + b"x" * 10)
        response, alive = self.attack(payload)
        assert b"HTTP/1.1 408" in response
        assert b"Connection: close" in response
        assert alive

    def test_oversized_head_is_413(self):
        payload = (b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                   b"X-Padding: " + b"a" * 2048 + b"\r\n\r\n")
        response, alive = self.attack(payload)
        assert b"HTTP/1.1 413" in response
        assert alive

    def test_binary_garbage_frame_is_400(self):
        response, alive = self.attack(b"\x00\xfe\x01 GARBAGE\r\n\r\n")
        assert b"HTTP/1.1 400" in response
        assert alive

    def test_pipelined_garbage_after_valid_request(self):
        # one write: a valid check, then junk; the first answers 200,
        # the junk answers 400, the server survives both
        payload = (check_head() + CHECK_BODY
                   + b"NONSENSE FRAME HERE\r\n\r\n")
        response, alive = self.attack(payload)
        assert b"HTTP/1.1 200" in response
        assert b"HTTP/1.1 400" in response
        assert alive

    def test_slow_loris_head_is_reaped_408(self):
        async def scenario(app):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.port)
            try:
                writer.write(b"GET /healthz HT")  # never finishes
                await writer.drain()
                response = await asyncio.wait_for(
                    reader.read(65536), 5.0)
            finally:
                writer.close()
            return response, await healthz_ok(app)

        response, alive = serve(scenario, **self.KW)
        assert b"HTTP/1.1 408" in response
        assert alive

    def test_idle_connection_is_reaped_silently(self):
        async def scenario(app):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", app.port)
            try:
                # no bytes at all: reaped with no response spam
                response = await asyncio.wait_for(
                    reader.read(65536), 5.0)
            finally:
                writer.close()
            metrics = HttpClient("127.0.0.1", app.port)
            try:
                _, text = await metrics.request("GET", "/metrics")
            finally:
                await metrics.close()
            return response, text

        response, text = serve(scenario, **self.KW)
        assert response == b""
        assert 'repro_serve_timeouts_total{stage="idle"} 1' in text


class TestAdmissionControl:
    def test_over_capacity_is_shed_503_with_retry_after(self):
        async def scenario(app):
            # the first request occupies the only inflight slot by
            # withholding its body
            slow_r, slow_w = await asyncio.open_connection(
                "127.0.0.1", app.port)
            slow_w.write(check_head())  # head only, no body yet
            await slow_w.drain()
            await asyncio.sleep(0.05)  # let the server park on it
            shed = await raw_exchange(
                app.port, check_head() + CHECK_BODY)
            slow_w.close()
            metrics = HttpClient("127.0.0.1", app.port)
            try:
                _, text = await metrics.request("GET", "/metrics")
            finally:
                await metrics.close()
            return shed, text

        shed, text = serve(scenario, max_inflight=1,
                           request_timeout=2.0, retry_after=7.0)
        assert b"HTTP/1.1 503" in shed
        assert b"Retry-After: 7" in shed
        assert b"Connection: close" in shed
        assert b'"error": "shed"' in shed
        assert 'repro_serve_shed_total{reason="inflight"} 1' in text

    def test_exhausted_request_deadline_is_shed(self):
        async def scenario(app):
            shed = await raw_exchange(
                app.port,
                check_head(b"X-Deadline-Ms: 0.001\r\n") + CHECK_BODY)
            ok = await raw_exchange(
                app.port, check_head() + CHECK_BODY)
            return shed, ok

        shed, ok = serve(scenario)
        assert b"HTTP/1.1 503" in shed
        assert b'"error": "shed"' in shed
        assert b"Retry-After" in shed
        assert b"HTTP/1.1 200" in ok

    def test_malformed_deadline_header_is_400(self):
        async def scenario(app):
            return await raw_exchange(
                app.port,
                check_head(b"X-Deadline-Ms: banana\r\n") + CHECK_BODY)

        response = serve(scenario)
        assert b"HTTP/1.1 400" in response


class TestBulkhead:
    def test_full_shard_sheds_other_requests_503(self):
        async def scenario(app):
            guard = app._guard("alpha")
            assert guard.bulkhead.try_acquire()  # saturate the shard
            try:
                shed = await raw_exchange(
                    app.port, check_head() + CHECK_BODY)
            finally:
                guard.bulkhead.release()
            ok = await raw_exchange(
                app.port, check_head() + CHECK_BODY)
            return shed, ok, guard.bulkhead.shed

        shed, ok, shed_count = serve(scenario, shard_concurrency=1)
        assert b"HTTP/1.1 503" in shed
        assert b'"error": "shed"' in shed
        assert b"Retry-After" in shed
        assert b"HTTP/1.1 200" in ok
        assert shed_count == 1


class TestBreakerDegradedMode:
    def test_trip_degraded_serving_and_recovery(self):
        async def scenario(app):
            shard = app.router.shard("alpha")
            client = HttpClient("127.0.0.1", app.port)
            out = {}
            try:
                # warm ada's session on the healthy path
                status, warm = await client.request(
                    "POST", "/v1/check", {"user": "ada",
                                          "operation": "edit",
                                          "object": "doc"})
                assert status == 200 and warm["allowed"]
                epoch = warm["epoch"]

                def boom(*args, **kwargs):
                    raise TransientError("injected shard fault")

                shard.check = boom  # instance shadow over the method
                for _ in range(2):  # threshold consecutive failures
                    status, payload = await client.request(
                        "POST", "/v1/check", {"user": "ada",
                                              "operation": "edit",
                                              "object": "doc"})
                    assert status == 503
                    assert payload["error"] == "TransientError"
                    assert "retry-after" in client.last_headers

                # reads: warm sessions answer from the frozen epoch
                out["degraded"] = await client.request(
                    "POST", "/v1/check", {"user": "ada",
                                          "operation": "edit",
                                          "object": "doc"})
                out["cold"] = await client.request(
                    "POST", "/v1/check", {"user": "bob",
                                          "operation": "view",
                                          "object": "doc"})
                out["batch"] = await client.request(
                    "POST", "/v1/check_batch", {"checks": [
                        {"user": "ada", "operation": "edit",
                         "object": "doc"}]})
                out["explain"] = await client.request(
                    "GET", "/v1/explain?user=ada&operation=edit"
                           "&object=doc")
                out["admin"] = await client.request(
                    "POST", "/v1/admin",
                    {"domain": "alpha", "op": "grant",
                     "args": {"role": "Reader", "operation": "edit",
                              "object": "doc"}})
                out["admin_retry_after"] = \
                    "retry-after" in client.last_headers
                out["healthz_open"] = await client.request(
                    "GET", "/healthz")

                del shard.check  # the fault clears
                await asyncio.sleep(0.45)  # past the cooldown
                out["probe"] = await client.request(
                    "POST", "/v1/check", {"user": "ada",
                                          "operation": "edit",
                                          "object": "doc"})
                out["healthz_closed"] = await client.request(
                    "GET", "/healthz")
                out["epoch"] = epoch
                out["audited"] = bool(
                    shard.engine.audit.by_kind("serve.breaker.open"))
            finally:
                await client.close()
            return out

        out = serve(scenario, breaker_threshold=2,
                    breaker_cooldown=0.4)

        status, degraded = out["degraded"]
        assert status == 200
        assert degraded["path"] == "degraded"
        assert degraded["degraded"] is True
        assert degraded["allowed"] is True
        assert degraded["epoch"] == out["epoch"]

        status, cold = out["cold"]  # no live session: fail closed
        assert status == 200
        assert cold["allowed"] is False
        assert cold["path"] == "degraded"

        status, batch = out["batch"]
        assert status == 200
        assert batch["results"][0]["path"] == "degraded"

        status, explain = out["explain"]  # no frozen derivation
        assert status == 503
        assert explain["error"] == "breaker"

        status, admin = out["admin"]  # mutations rejected fail-closed
        assert status == 503
        assert admin["error"] == "breaker"
        assert out["admin_retry_after"] is True

        status, health = out["healthz_open"]
        assert status == 503
        assert health["status"] == "degraded"
        assert health["serve"]["breakers_open"] == ["alpha"]
        snapshot = health["shards"]["alpha"]["serve"]["overload"]
        assert snapshot["breaker"] == "open"
        assert snapshot["degraded_served"] >= 2

        status, probe = out["probe"]  # half-open probe recovers
        assert status == 200
        assert probe["allowed"] is True
        assert probe["path"] != "degraded"

        status, health = out["healthz_closed"]
        assert status == 200
        assert health["shards"]["alpha"]["serve"]["overload"][
            "breaker"] == "closed"
        assert out["audited"] is True


class TestHarnessInProcess:
    def test_open_loop_overload_sheds_cleanly(self):
        ops = [ServiceOp("check", {"user": "ada", "operation": "edit",
                                   "object": "doc"})] * 300

        async def scenario(app):
            return await run_overload("127.0.0.1", app.port, ops,
                                      3000.0, max_outstanding=64)

        report = serve(scenario, max_inflight=2, request_timeout=2.0)
        assert report.offered == 300
        assert report.hung == 0
        assert report.retry_after_missing == 0
        assert report.shed > 0
        assert report.admitted > 0
        assert report.errors == 0

    def test_network_chaos_replay_leaves_server_alive(self):
        plan = NetFaultPlan(
            seed=3, rates={"reset": 0.15, "stall": 0.15,
                           "partial": 0.15, "garbage": 0.15},
            stall_s=0.05)
        ops = [ServiceOp("check", {"user": "ada", "operation": "edit",
                                   "object": "doc"})] * 60

        async def scenario(app):
            return await run_chaos("127.0.0.1", app.port, ops, plan,
                                   response_timeout=5.0)

        report = serve(scenario, request_timeout=0.2)
        assert report.alive_after is True
        assert report.hung == 0
        assert report.server_5xx == 0
        assert report.clean_ok > 0
        assert sum(report.faults.values()) > 0
        assert report.failclosed_4xx > 0


class TestShutdownOrdering:
    def test_port_file_removed_before_the_drain_ends(self, tmp_path):
        """The readiness signal must disappear as soon as shutdown
        starts — while in-flight requests are still draining — so an
        orchestrator never routes new traffic at a draining server."""
        port_file = tmp_path / "port.txt"

        async def main():
            app = ServeApp(build_router(), drain_grace=5.0,
                           request_timeout=1.0)
            await app.start("127.0.0.1", 0)
            port_file.write_text(f"{app.port}\n")
            app._port_file = str(port_file)
            # park one request in flight (head sent, body withheld)
            _, writer = await asyncio.open_connection(
                "127.0.0.1", app.port)
            writer.write(check_head())
            await writer.drain()
            await asyncio.sleep(0.05)
            stopping = asyncio.ensure_future(app.shutdown())
            await asyncio.sleep(0.1)
            # mid-drain: the in-flight request is still pending, yet
            # the port file is already gone and the listener closed
            gone_mid_drain = not port_file.exists()
            still_draining = not stopping.done()
            with pytest.raises((ConnectionError, OSError,
                                asyncio.IncompleteReadError)):
                fresh = HttpClient("127.0.0.1", app.port)
                await fresh.connect()
                await fresh.request("GET", "/healthz")
            writer.close()
            summary = await stopping
            return gone_mid_drain, still_draining, summary

        gone_mid_drain, still_draining, summary = asyncio.run(main())
        assert gone_mid_drain is True
        assert still_draining is True
        assert summary["drained"] is True
