"""Integration: deleting a role scrubs cross-role constraints and
regenerates partner rules.

Regression suite for the cross-role deletion bug: DR.Nurse is tagged
with role:Doctor (disabling-SoD partners), so deleting Doctor used to
retire Nurse's disable rule without replacing it — leaving disableRole
requests on Nurse to fail closed forever.
"""

import pytest

from repro import ActiveRBACEngine, parse_policy

POLICY = """
policy surgical {
  role Nurse; role Doctor; role Anesthetist;
  role Manager; role JuniorEmp;
  role SysAdmin; role SysAudit;
  user bob;
  assign bob to Nurse;
  assign bob to JuniorEmp;
  disabling_sod cov roles Nurse, Doctor, Anesthetist daily 08:00 to 20:00;
  transaction JuniorEmp during Manager;
  require SysAudit when enabling SysAdmin;
  prerequisite Doctor requires Nurse;
  ssd split roles Doctor, Manager;
  dsd dyn roles Nurse, Doctor;
}
"""


@pytest.fixture
def engine():
    return ActiveRBACEngine.from_policy(parse_policy(POLICY))


class TestPartnerRegeneration:
    def test_partner_keeps_working_after_sod_member_deleted(self, engine):
        engine.delete_role("Doctor")
        # Nurse's rules were regenerated: activation and disabling work
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Nurse")
        engine.advance_time(12 * 3600)
        engine.disable_role("Anesthetist")
        # the SoD set shrank to {Nurse, Anesthetist}: still enforced
        from repro.errors import DeactivationDenied
        with pytest.raises(DeactivationDenied):
            engine.disable_role("Nurse")

    def test_two_member_sod_dissolves_when_one_deleted(self, engine):
        engine.delete_role("Anesthetist")
        engine.delete_role("Doctor")  # cov now below 2 members: gone
        engine.advance_time(12 * 3600)
        engine.disable_role("Nurse")  # no partner constraint remains
        assert not engine.model.is_role_enabled("Nurse")

    def test_anchor_deletion_frees_dependents(self, engine):
        engine.delete_role("Manager")
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "JuniorEmp")  # no anchor constraint
        assert "JuniorEmp" in engine.model.session_roles(sid)

    def test_cfd_partner_deletion(self, engine):
        engine.model.set_role_enabled("SysAdmin", False)
        engine.delete_role("SysAudit")
        engine.enable_role("SysAdmin")  # post-condition scrubbed
        assert engine.model.is_role_enabled("SysAdmin")

    def test_prerequisite_deletion(self, engine):
        engine.delete_role("Nurse")
        engine.assign_user("bob", "Doctor")
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Doctor")  # prerequisite scrubbed
        assert "Doctor" in engine.model.session_roles(sid)

    def test_policy_scrubbed_of_every_mention(self, engine):
        engine.delete_role("Doctor")
        policy = engine.policy
        assert "Doctor" not in policy.roles
        assert all("Doctor" not in c.roles for c in policy.disabling_sod)
        assert all("Doctor" not in s.roles for s in policy.ssd.values())
        assert all("Doctor" not in s.roles for s in policy.dsd.values())
        assert all(p.role != "Doctor" and p.prerequisite != "Doctor"
                   for p in policy.prerequisites)

    def test_verifier_clean_after_deletion(self, engine):
        from repro.synthesis.verify import verify_rule_pool
        engine.delete_role("Doctor")
        findings = verify_rule_pool(engine)
        assert not [f for f in findings if f.check == "stale-role-tag"]
        assert not [f for f in findings
                    if f.check == "orphan-request-event"]

    def test_dsd_set_dissolves(self, engine):
        engine.delete_role("Doctor")
        # dyn was {Nurse, Doctor} cardinality 2: below size, dropped
        assert "dyn" not in engine.policy.dsd
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Nurse")  # no DSD in the way
