"""Integration: activations are revalidated when their justification
disappears (paper §1: "all the constraints that are satisfied by an
user when activating a role should hold TRUE until the role is
deactivated. When any one of the constraints become FALSE before
deactivation, then that role should be deactivated.").

Regression suite for the authorization-leak class the differential
property tests originally caught: activating a junior role under a
senior assignment, then removing the senior assignment (or the
hierarchy edge), must deactivate the junior activation in *both*
engines.
"""

import pytest

from repro import ActiveRBACEngine, DirectRBACEngine, parse_policy

POLICY = """
policy reval {
  role Senior; role Junior; role Other;
  user bob;
  hierarchy Senior > Junior;
  assign bob to Senior;
  assign bob to Other;
  permission read on doc;
  grant read on doc to Junior;
}
"""


@pytest.fixture(params=["active", "direct"])
def engine(request):
    spec = parse_policy(POLICY)
    if request.param == "active":
        return ActiveRBACEngine.from_policy(spec)
    return DirectRBACEngine(spec)


class TestDeassignmentRevalidation:
    def test_deassigning_senior_deactivates_junior(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Junior")   # authorized via Senior
        engine.add_active_role(sid, "Other")
        engine.deassign_user("bob", "Senior")
        assert "Junior" not in engine.model.session_roles(sid)
        # the independently-assigned role survives
        assert "Other" in engine.model.session_roles(sid)

    def test_deassigned_role_itself_deactivated(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Senior")
        engine.deassign_user("bob", "Senior")
        assert "Senior" not in engine.model.session_roles(sid)

    def test_access_lost_with_the_activation(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Junior")
        assert engine.check_access(sid, "read", "doc")
        engine.deassign_user("bob", "Senior")
        assert not engine.check_access(sid, "read", "doc")


class TestHierarchyEditRevalidation:
    def test_deleting_edge_deactivates_dependent_activation(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Junior")
        engine.delete_inheritance("Senior", "Junior")
        assert "Junior" not in engine.model.session_roles(sid)

    def test_unrelated_activations_survive_edge_deletion(self, engine):
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Senior")
        engine.add_active_role(sid, "Other")
        engine.delete_inheritance("Senior", "Junior")
        assert engine.model.session_roles(sid) == {"Senior", "Other"}


class TestActiveEngineCascades:
    def test_revalidation_fires_deactivation_events(self):
        """The active engine's revalidation goes through
        commit_deactivation, so roleDeactivated cascades fire (anchor
        cleanup etc.) and the audit records the drop."""
        engine = ActiveRBACEngine.from_policy(parse_policy(POLICY))
        sid = engine.create_session("bob")
        engine.add_active_role(sid, "Junior")
        seen = []
        engine.detector.subscribe("roleDeactivated.Junior",
                                  lambda occurrence: seen.append(1))
        engine.deassign_user("bob", "Senior")
        assert seen == [1]
        assert engine.audit.matching(session=sid, role="Junior")
