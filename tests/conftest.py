"""Shared fixtures: the enterprise XYZ policy and engines over it."""

from __future__ import annotations

import pytest

from repro import ActiveRBACEngine, DirectRBACEngine, parse_policy
from repro.policy.spec import PolicySpec

#: Enterprise XYZ from paper §5 / Figure 1: two departments, five roles,
#: static SoD between purchase clerk and approval clerk, inherited
#: upward through the hierarchy.
XYZ_POLICY_TEXT = """
policy XYZ {
  role Clerk;
  role PC;
  role PM;
  role AC;
  role AM;
  user bob;
  user carol;
  user dave;
  hierarchy PM > PC > Clerk;
  hierarchy AM > AC > Clerk;
  ssd PurchaseApproval roles PC, AC;
  permission create on purchase_order;
  permission approve on purchase_order;
  permission read on ledger;
  grant create on purchase_order to PC;
  grant approve on purchase_order to AC;
  grant read on ledger to Clerk;
  assign bob to PM;
  assign carol to AC;
  assign dave to Clerk;
}
"""


@pytest.fixture
def xyz_spec() -> PolicySpec:
    return parse_policy(XYZ_POLICY_TEXT)


@pytest.fixture
def xyz_engine(xyz_spec) -> ActiveRBACEngine:
    return ActiveRBACEngine.from_policy(xyz_spec)


@pytest.fixture
def xyz_direct(xyz_spec) -> DirectRBACEngine:
    return DirectRBACEngine(xyz_spec)
